"""Optimization driver tests: planning and mechanical application."""

import pytest

from repro.lang.prelude import prelude_program
from repro.opt.driver import apply_plan, plan_optimizations
from repro.semantics.interp import run_program


class TestPlanning:
    def test_partition_sort_plan(self, partition_sort):
        plan = plan_optimizations(partition_sort)
        reuse = plan.by_kind("reuse")
        # append param 1, split param 2, ps param 1 are all reusable
        assert {(d.function, d.param_index) for d in reuse} >= {
            ("append", 1),
            ("split", 2),
            ("ps", 1),
        }
        # the literal argument of the result call is stack-allocatable
        assert [(d.function, d.param_index) for d in plan.by_kind("stack")] == [
            ("<body>", 1)
        ]

    def test_producer_consumer_plan(self):
        program = prelude_program(["ps", "create_list"], "ps (create_list 8)")
        plan = plan_optimizations(program)
        blocks = plan.by_kind("block")
        assert [(d.function, d.param_index) for d in blocks] == [("create_list", 1)]

    def test_escaping_args_produce_no_decisions(self):
        program = prelude_program(["drop"], "drop 1 [1, 2, 3]")
        plan = plan_optimizations(program)
        assert plan.by_kind("stack") == []
        assert plan.by_kind("reuse") == []

    def test_reuse_decisions_carry_obligations(self, partition_sort):
        plan = plan_optimizations(partition_sort)
        assert all("unshared" in d.obligation for d in plan.by_kind("reuse"))

    def test_summary_renders(self, partition_sort):
        text = plan_optimizations(partition_sort).summary()
        assert "[reuse]" in text and "[stack]" in text

    def test_empty_plan_summary(self):
        program = prelude_program(["length"], "length [1]")
        plan = plan_optimizations(program)
        assert plan.by_kind("reuse") == []
        assert "no storage optimization" in plan.summary() or plan.decisions


class TestApplication:
    def test_apply_preserves_results(self, partition_sort):
        plan = plan_optimizations(partition_sort)
        optimized, log = apply_plan(plan)
        assert run_program(optimized)[0] == run_program(partition_sort)[0]
        assert any("DCONS" in line for line in log)

    def test_apply_redirects_literal_call(self, partition_sort):
        plan = plan_optimizations(partition_sort)
        optimized, log = apply_plan(plan)
        _, metrics = run_program(optimized)
        # the body call goes to ps_reuse, so cells are recycled
        assert metrics.reused > 0
        assert any("redirected" in line for line in log)

    def test_apply_block_plan(self):
        program = prelude_program(["ps", "create_list"], "ps (create_list 10)")
        plan = plan_optimizations(program)
        optimized, log = apply_plan(plan)
        result, metrics = run_program(optimized)
        assert result == list(range(1, 11))
        assert metrics.block_reclaimed == 10

    def test_apply_improves_heap_traffic(self, partition_sort):
        _, baseline = run_program(partition_sort)
        optimized, _ = apply_plan(plan_optimizations(partition_sort))
        _, metrics = run_program(optimized)
        assert metrics.heap_allocs < baseline.heap_allocs
