"""``repro.ir`` — the flat instruction stream the worklist engine runs on.

Lowering (:mod:`repro.ir.lower`) turns resolved, type-annotated nml
(:mod:`repro.lang.ast` after :mod:`repro.lang.resolve` and
:mod:`repro.types.infer`) into :class:`~repro.ir.nodes.Block` objects: one
instruction per AST node, explicit def–use edges, spans preserved, and
per-instruction transitive environment-dependency sets precomputed for the
worklist solver's change propagation (:mod:`repro.escape.worklist`).
"""

from repro.ir.lower import lower_binding, lower_expr, lower_program
from repro.ir.nodes import OPS, Block, Instr
from repro.ir.pretty import pretty_block, pretty_blocks

__all__ = [
    "OPS",
    "Block",
    "Instr",
    "lower_binding",
    "lower_expr",
    "lower_program",
    "pretty_block",
    "pretty_blocks",
]
