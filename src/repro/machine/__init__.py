"""The abstract machine (§3.3's operational layer): instruction set,
compiler, static verifier, and the stack machine over the instrumented
heap."""

from repro.machine.compiler import compile_expr, compile_program
from repro.machine.instructions import Code, disassemble
from repro.machine.machine import Machine, MClosure, run_compiled
from repro.machine.verify import verify_code, verify_program_code

__all__ = [
    "compile_expr", "compile_program", "Code", "disassemble", "Machine",
    "MClosure", "run_compiled", "verify_code", "verify_program_code",
]
