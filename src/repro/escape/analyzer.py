"""The analysis front door: :class:`EscapeAnalysis`.

Ties the pieces together for one program:

1. type inference (with optional per-query monotype *pins*, §5),
2. the ``B_e`` chain sized by the program's spine bound ``d``,
3. the abstract evaluator and its letrec fixpoint,
4. the global (§4.1) and local (§4.2) escape tests.

Since the query-engine refactor, :class:`EscapeAnalysis` is a thin facade
over an :class:`~repro.query.AnalysisSession`: solves are keyed by stable
fingerprints ``(program, pins, d, max_iterations)`` and cached, the letrec
fixpoint is solved per strongly connected component in callees-first order
(:mod:`repro.escape.scc`) with per-SCC reuse across queries, and every
solve runs on a session-private clone of the program — queries never
mutate the caller's AST, and repeated questions cost cache lookups instead
of whole-program re-analysis.  Because the ``car^s`` annotations — and
therefore the abstract values of the functions — depend on the monotype
instance being analyzed, a pinned query still re-infers its private clone
with the instance pinned; only the components the pin's types reach are
re-solved.
"""

from __future__ import annotations

from repro.escape.global_test import run_global_test
from repro.escape.local_test import run_local_test
from repro.escape.results import EscapeTestResult
from repro.lang.ast import Expr, uncurry_app
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_expr
from repro.lang.ast import Program
from repro.obs import tracer as obs
from repro.query import AnalysisSession, SessionStats, SolvedProgram
from repro.types.types import Type, TypeScheme, arity, fun_args

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.robust.budget import BudgetMeter
    from repro.store import AnalysisStore

__all__ = ["EscapeAnalysis", "SolvedProgram"]


class EscapeAnalysis:
    """Escape analysis of one nml program.

    >>> from repro.lang import paper_partition_sort
    >>> analysis = EscapeAnalysis(paper_partition_sort())
    >>> str(analysis.global_test("append", 1).result)
    '<1,0>'
    """

    def __init__(
        self,
        program: Program,
        d: int | None = None,
        max_iterations: int | None = None,
        meter: "BudgetMeter | None" = None,
        session: AnalysisSession | None = None,
        store: "AnalysisStore | None" = None,
        engine: str | None = None,
    ):
        self.program = program
        #: Optional budget meter from the hardened engine
        #: (:mod:`repro.robust`): ticked on every abstract-evaluation step
        #: and fixpoint iteration of every solve this analysis performs.
        #: Store hits decode persisted values without abstract evaluation,
        #: so they are never charged.
        self.meter = meter
        if session is not None:
            if session.program is not program:
                raise AnalysisError(
                    "the analysis session was created for a different program"
                )
            if d is not None and d != session.d_override:
                raise AnalysisError(
                    f"d={d} conflicts with the session's d={session.d_override}"
                )
            if max_iterations is not None and max_iterations != session.max_iterations:
                raise AnalysisError(
                    f"max_iterations={max_iterations} conflicts with the "
                    f"session's max_iterations={session.max_iterations}"
                )
            if store is not None and store is not session.store:
                raise AnalysisError(
                    "store conflicts with the session's attached store"
                )
            if engine is not None and engine != session.engine:
                raise AnalysisError(
                    f"engine={engine!r} conflicts with the session's "
                    f"engine={session.engine!r}"
                )
            self.session = session
        else:
            self.session = AnalysisSession(
                program, d=d, max_iterations=max_iterations, store=store, engine=engine
            )
        self.d_override = self.session.d_override
        self.max_iterations = self.session.max_iterations
        #: The fixpoint engine the session solves on ("worklist"/"legacy").
        self.engine = self.session.engine
        #: The most recent solve — exposes fixpoint traces to callers.
        self.last_solved: SolvedProgram | None = None

    # -- session accounting ------------------------------------------------

    @property
    def stats(self) -> SessionStats:
        """Cache and work accounting of the underlying session."""
        return self.session.stats

    # -- schemes -----------------------------------------------------------

    @property
    def schemes(self) -> dict[str, TypeScheme]:
        return self.session.schemes

    def scheme(self, name: str) -> TypeScheme:
        return self.session.scheme(name)

    def function_names(self) -> tuple[str, ...]:
        return self.program.binding_names()

    # -- solving -------------------------------------------------------------

    def solve(self, pins: dict[str, Type] | None = None) -> SolvedProgram:
        """The solved program at ``pins`` — served from the session's solve
        cache when the same question was already answered."""
        with self.session.query(self.meter):
            solved = self.session.solve(pins)
        self.last_solved = solved
        return solved

    def _binding_type(self, solved: SolvedProgram, name: str) -> Type:
        try:
            binding = solved.program.binding(name)
        except KeyError:
            raise AnalysisError(f"no top-level binding named {name!r}") from None
        assert binding.expr.ty is not None
        return binding.expr.ty

    def binding_type(self, name: str, solved: SolvedProgram | None = None) -> Type:
        """The inferred monotype of a top-level binding on the solved
        clone (solves at the default instance if none is given)."""
        return self._binding_type(solved or self.solve(None), name)

    # -- global test (§4.1) ---------------------------------------------------

    def global_test(
        self,
        function: str,
        i: int,
        instance: Type | None = None,
        n_args: int | None = None,
    ) -> EscapeTestResult:
        """``G(function, i)`` — optionally at a pinned monotype instance."""
        pins = {function: instance} if instance is not None else None
        with obs.span("global_test", function=function, param=i):
            with self.session.query(self.meter):
                solved = self.session.solve(pins)
                self.last_solved = solved
                fn_type = self._binding_type(solved, function)
                return run_global_test(
                    solved.evaluator, solved.env, function, fn_type, i, n_args=n_args
                )

    def global_all(
        self,
        function: str,
        instance: Type | None = None,
        n_args: int | None = None,
    ) -> list[EscapeTestResult]:
        """``G(function, i)`` for every parameter position ``i``.

        ``n_args`` defaults to the full arity of the (instance) type; pass
        the syntactic arity to treat deeper arrows contributed by a
        function-typed instance as part of the *result*, not as parameters.
        """
        pins = {function: instance} if instance is not None else None
        with obs.span("global_all", function=function):
            with self.session.query(self.meter):
                solved = self.session.solve(pins)
                self.last_solved = solved
                fn_type = self._binding_type(solved, function)
                n = n_args if n_args is not None else arity(fn_type)
                if n == 0:
                    raise AnalysisError(
                        f"{function} takes no arguments (type {fn_type})"
                    )
                return [
                    run_global_test(
                        solved.evaluator, solved.env, function, fn_type, i, n_args=n
                    )
                    for i in range(1, n + 1)
                ]

    def syntactic_arity(self, function: str) -> int:
        """The number of top-level lambdas of a binding — the paper's ``n``
        for "a function of n arguments"."""
        from repro.lang.ast import uncurry_lambda

        try:
            binding = self.program.binding(function)
        except KeyError:
            raise AnalysisError(f"no top-level binding named {function!r}") from None
        return len(uncurry_lambda(binding.expr)[0])

    # -- local test (§4.2) -----------------------------------------------------

    def local_test(self, call: "Expr | str", i: int | None = None):
        """``L(f, i, e₁…eₙ)`` for a call expression over this program's
        top-level functions.

        ``call`` may be source text (e.g. ``"map pair [[1, 2]]"``) or an
        AST.  Returns the result for parameter ``i``, or a list over all
        parameters when ``i`` is None.  The variant program is solved on a
        private clone, so neither the session program nor the caller's
        expression is re-typed in place.
        """
        expr = parse_expr(call) if isinstance(call, str) else call
        head, args = uncurry_app(expr)
        if not args:
            raise AnalysisError("local test target must be an application")

        with obs.span("local_test"), self.session.query(self.meter):
            solved, fn_value, label = self.session.solve_call(expr)
            self.last_solved = solved

            _, solved_args = uncurry_app(solved.program.body)
            arg_values = [
                solved.evaluator.eval(arg, solved.env) for arg in solved_args
            ]
            arg_types: list[Type] = []
            for arg in solved_args:
                assert arg.ty is not None
                arg_types.append(arg.ty)

            if i is not None:
                return run_local_test(
                    solved.evaluator, fn_value, label, arg_values, arg_types, i
                )
            return [
                run_local_test(
                    solved.evaluator, fn_value, label, arg_values, arg_types, j
                )
                for j in range(1, len(solved_args) + 1)
            ]

    # -- convenience -------------------------------------------------------------

    def escaping_spines(self, function: str) -> list[int]:
        """``esc_i`` for every parameter — the input to the sharing analysis
        (Theorem 2)."""
        return [r.escaping_spines for r in self.global_all(function)]

    def arg_spine_counts(self, function: str) -> list[int]:
        """``d_i`` for every parameter."""
        solved = self.solve(None)
        fn_type = self._binding_type(solved, function)
        from repro.types.types import spines as spine_count

        return [spine_count(t) for t in fun_args(fn_type)[0]]

    def sharing_classes(self) -> dict[str, frozenset[str]]:
        """May-share name classes from the worklist engine's union-find
        partition (empty under the legacy engine): per binding, the names
        its value may share structure with — the coarse companion to the
        Theorem-2 top-spine bound."""
        self.solve(None)
        return self.session.sharing_classes()

    def heap_liveness(self):
        """Interprocedural heap-liveness facts
        (:class:`repro.analysis.heap_liveness.HeapLivenessFacts`) from the
        session's SCC-memoized summaries — warm solves decode the same
        facts the cold solve computed.  Degraded (all-⊤) when any
        binding's summary is unavailable."""
        from repro.analysis.heap_liveness import facts_from_summaries

        solved = self.solve(None)
        decoded = {}
        from repro.analysis.heap_liveness import decode_summary

        for name, payload in solved.liveness.items():
            try:
                decoded[name] = decode_summary(payload)
            except Exception:
                continue
        return facts_from_summaries(solved.program, decoded, cap=solved.d + 1)
