"""The abstract machine: operand stack, frame stack, the shared heap.

This is the operational layer §3.3 alludes to ("we can give such a
definition"): a stack machine over the *same* instrumented heap, regions,
and primitive semantics as the tree-walking interpreter, so the two can be
checked against each other — results, allocation counts, reuse counts, and
region reclamation all agree instruction-for-step (validated in
``tests/test_machine.py``).

GC is naturally precise here: the roots are exactly the operand stack plus
the environments of the live frames.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.lang.ast import Expr, Letrec, Program
from repro.lang.errors import EvalError
from repro.lang.parser import parse_expr
from repro.machine.compiler import compile_expr, compile_program
from repro.machine.instructions import (
    Apply,
    Branch,
    Code,
    EnvRestore,
    LetrecEnter,
    Load,
    MakeClosure,
    PushBool,
    PushInt,
    PushNil,
    PushPrim,
    RegionClose,
    RegionOpen,
    Store,
)
from repro.robust import faults
from repro.semantics.gc import make_collector
from repro.semantics.heap import AllocKind, Heap, Region, StorageSanitizer
from repro.semantics.metrics import StorageMetrics
from repro.semantics.prims import exec_prim
from repro.semantics.values import FALSE, NIL, TRUE, Env, Value, VBool, VInt, VPrim


@dataclass(frozen=True, slots=True)
class MClosure(Value):
    """A machine closure: compiled body + captured environment."""

    param: str
    body: Code
    env: Env
    name: str = ""

    def __str__(self) -> str:
        label = self.name or "lambda"
        return f"#<mclosure {label}({self.param})>"


@dataclass(eq=False)
class Frame:
    code: Code
    pc: int = 0
    env: Env = field(default_factory=Env)


class Machine:
    """Executes compiled nml code over the instrumented heap."""

    def __init__(
        self,
        gc_threshold: int = 10_000,
        auto_gc: bool = False,
        sanitize: bool = False,
        collector: str = "mark-sweep",
        liveness: "dict[str, int | None] | None" = None,
    ):
        self.metrics = StorageMetrics()
        self.sanitizer = StorageSanitizer() if sanitize else None
        self.heap = Heap(self.metrics, sanitizer=self.sanitizer)
        self.gc = make_collector(
            collector, self.heap, threshold=gc_threshold, budgets=liveness
        )
        self.auto_gc = auto_gc
        self.stack: list[Value] = []
        self.frames: list[Frame] = []
        #: regions opened by RegionOpen, matched by RegionClose
        self._open_regions: list[Region] = []

    # -- entry points ------------------------------------------------------

    def run(self, program: Program) -> Value:
        return self.execute(compile_program(program))

    def eval_in(self, program: Program, expr: "Expr | str") -> Value:
        body = parse_expr(expr) if isinstance(expr, str) else expr
        letrec = Letrec(bindings=program.bindings, body=body)
        return self.execute(compile_expr(letrec))

    # -- the instruction loop ------------------------------------------------

    def execute(self, code: Code, env: Env | None = None) -> Value:
        self.stack = []
        self.frames = [Frame(code=code, env=env or Env())]

        while self.frames:
            frame = self.frames[-1]
            if frame.pc >= len(frame.code):
                self.frames.pop()
                continue
            instr = frame.code[frame.pc]
            frame.pc += 1
            self.metrics.eval_steps += 1
            self._step(instr, frame)

        if len(self.stack) != 1:
            raise EvalError(f"machine halted with {len(self.stack)} values on the stack")
        return self.stack.pop()

    def _roots(self):
        yield from self.stack
        for frame in self.frames:
            yield frame.env

    def _step(self, instr, frame: Frame) -> None:
        if isinstance(instr, PushInt):
            self.stack.append(VInt(instr.value))
            return
        if isinstance(instr, PushBool):
            self.stack.append(TRUE if instr.value else FALSE)
            return
        if isinstance(instr, PushNil):
            self.stack.append(NIL)
            return
        if isinstance(instr, PushPrim):
            self.stack.append(VPrim(instr.prim))
            return
        if isinstance(instr, Load):
            self.stack.append(frame.env.lookup(instr.name))
            return
        if isinstance(instr, MakeClosure):
            self.stack.append(
                MClosure(param=instr.param, body=instr.body, env=frame.env, name=instr.name)
            )
            return
        if isinstance(instr, Apply):
            if faults.take_forced_gc():
                self.gc.collect(self._roots())
            if self.auto_gc:
                self.gc.maybe_collect(self._roots())
            arg = self.stack.pop()
            fn = self.stack.pop()
            self._apply(fn, arg)
            return
        if isinstance(instr, Branch):
            cond = self.stack.pop()
            if not isinstance(cond, VBool):
                raise EvalError(f"branch on a non-bool: {cond}")
            chosen = instr.then_code if cond.value else instr.else_code
            self.frames.append(Frame(code=chosen, env=frame.env))
            return
        if isinstance(instr, LetrecEnter):
            frame.env = Env(frame.env, {})
            return
        if isinstance(instr, Store):
            frame.env.frame[instr.name] = self.stack.pop()
            return
        if isinstance(instr, EnvRestore):
            assert frame.env.parent is not None
            frame.env = frame.env.parent
            return
        if isinstance(instr, RegionOpen):
            kind = AllocKind.STACK if instr.kind == "stack" else AllocKind.BLOCK
            self._open_regions.append(self.heap.open_region(kind, label=instr.label))
            return
        if isinstance(instr, RegionClose):
            region = self._open_regions.pop()
            live_roots = list(self._roots()) if self.sanitizer is not None else None
            self.heap.close_region(
                region, escaping=self.stack[-1], live_roots=live_roots
            )
            return
        raise EvalError(f"unknown instruction {instr!r}")

    def _apply(self, fn: Value, arg: Value) -> None:
        self.metrics.applications += 1
        if isinstance(fn, MClosure):
            call_env = fn.env.bind(fn.param, arg)
            self.frames.append(Frame(code=fn.body, env=call_env))
            return
        if isinstance(fn, VPrim):
            args = fn.args + (arg,)
            if len(args) < fn.prim.arity:
                self.stack.append(VPrim(fn.prim, args))
                return
            self.stack.append(exec_prim(self.heap, fn.prim, args))
            return
        raise EvalError(f"cannot apply non-function {fn}")

    # -- interop ------------------------------------------------------------

    def to_python(self, value: Value):
        from repro.semantics.interp import Interpreter

        adapter = Interpreter.__new__(Interpreter)
        adapter.heap = self.heap
        return adapter.to_python(value)

    def from_python(self, obj) -> Value:
        from repro.semantics.interp import Interpreter

        adapter = Interpreter.__new__(Interpreter)
        adapter.heap = self.heap
        return adapter.from_python(obj)


def run_compiled(program: Program, **kwargs) -> tuple[object, StorageMetrics]:
    """Convenience mirroring :func:`repro.semantics.interp.run_program`."""
    machine = Machine(**kwargs)
    value = machine.run(program)
    return machine.to_python(value), machine.metrics
