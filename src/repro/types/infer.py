"""Hindley–Milner type inference for nml.

Implements Algorithm W with let-polymorphism at ``letrec`` (recursive
occurrences are monomorphic, as usual).  After constraint solving, every AST
node's ``ty`` field is set to its fully-substituted monotype; any type
variable that remains unconstrained is *defaulted to* ``int`` — the paper's
"simplest monotyped instance", which Theorem 1 (polymorphic invariance)
licenses as the representative for the escape analysis.

The inference also performs the paper's ``car^s`` annotation (§3.4): every
``car``/``cdr``/``cons``/``nil``/``null``/``dcons`` occurrence is given its
instantiated type, from which the spine count ``s`` is read off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
    walk,
)
from repro.lang.errors import TypeInferenceError
from repro.types.types import (
    BOOL,
    INT,
    TFun,
    TList,
    TProd,
    TVar,
    Type,
    TypeScheme,
    fresh_tvar,
    free_type_vars,
    scheme_free_type_vars,
)
from repro.types.unify import Substitution, unify


def prim_scheme(name: str) -> TypeScheme:
    """The type scheme of a primitive constant."""
    a = fresh_tvar()
    if name in ("+", "-", "*", "/"):
        return TypeScheme.mono(TFun(INT, TFun(INT, INT)))
    if name in ("==", "<>", "<", "<=", ">", ">="):
        return TypeScheme.mono(TFun(INT, TFun(INT, BOOL)))
    if name == "cons":
        return TypeScheme((a,), TFun(a, TFun(TList(a), TList(a))))
    if name == "car":
        return TypeScheme((a,), TFun(TList(a), a))
    if name == "cdr":
        return TypeScheme((a,), TFun(TList(a), TList(a)))
    if name == "null":
        return TypeScheme((a,), TFun(TList(a), BOOL))
    if name == "mkpair":
        b = fresh_tvar()
        return TypeScheme((a, b), TFun(a, TFun(b, TProd(a, b))))
    if name == "fst":
        b = fresh_tvar()
        return TypeScheme((a, b), TFun(TProd(a, b), a))
    if name == "snd":
        b = fresh_tvar()
        return TypeScheme((a, b), TFun(TProd(a, b), b))
    if name == "dcons":
        # dcons reuse_cell head tail — same result type as cons, plus the
        # cell donor list in front.
        return TypeScheme((a,), TFun(TList(a), TFun(a, TFun(TList(a), TList(a)))))
    raise TypeInferenceError(f"unknown primitive {name!r}")


@dataclass
class InferenceResult:
    """Everything inference learned about a program.

    * ``schemes`` — top-level binding name → generalized type scheme
    * ``result_type`` — the (defaulted) type of the program body
    * ``subst`` — the final substitution (exposed for tooling)
    """

    schemes: dict[str, TypeScheme]
    result_type: Type
    subst: Substitution

    def scheme(self, name: str) -> TypeScheme:
        if name not in self.schemes:
            raise TypeInferenceError(f"no top-level binding named {name!r}")
        return self.schemes[name]


class _Inferencer:
    def __init__(self, pins: dict[str, Type] | None = None) -> None:
        self.subst = Substitution()
        self.node_types: dict[int, Type] = {}
        # Monotype pins for top-level bindings (consumed by the outermost
        # letrec): used to analyze a binding at a chosen instance (§5).
        self.pins: dict[str, Type] | None = pins

    # -- scheme handling --------------------------------------------------

    def instantiate(self, scheme: TypeScheme) -> Type:
        if not scheme.vars:
            return scheme.body
        mapping: dict[TVar, Type] = {v: fresh_tvar() for v in scheme.vars}
        return _replace(scheme.body, mapping)

    def generalize(self, ty: Type, env: dict[str, TypeScheme]) -> TypeScheme:
        ty = self.subst.apply(ty)
        env_vars: set[TVar] = set()
        for scheme in env.values():
            for var in scheme_free_type_vars(scheme):
                env_vars |= free_type_vars(self.subst.apply(var))
        qvars = tuple(sorted(free_type_vars(ty) - env_vars, key=lambda v: v.id))
        return TypeScheme(qvars, ty)

    # -- the algorithm -----------------------------------------------------

    def infer(self, expr: Expr, env: dict[str, TypeScheme]) -> Type:
        ty = self._infer(expr, env)
        self.node_types[expr.uid] = ty
        return ty

    def _infer(self, expr: Expr, env: dict[str, TypeScheme]) -> Type:
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, BoolLit):
            return BOOL
        if isinstance(expr, NilLit):
            return TList(fresh_tvar())
        if isinstance(expr, Prim):
            return self.instantiate(prim_scheme(expr.name))
        if isinstance(expr, Var):
            scheme = env.get(expr.name)
            if scheme is None:
                raise TypeInferenceError(f"unbound identifier {expr.name!r}", expr.span)
            return self.instantiate(scheme)
        if isinstance(expr, App):
            fn_ty = self.infer(expr.fn, env)
            arg_ty = self.infer(expr.arg, env)
            result = fresh_tvar()
            unify(fn_ty, TFun(arg_ty, result), self.subst, expr.span)
            return result
        if isinstance(expr, Lambda):
            param_ty = fresh_tvar()
            inner = dict(env)
            inner[expr.param] = TypeScheme.mono(param_ty)
            body_ty = self.infer(expr.body, inner)
            return TFun(param_ty, body_ty)
        if isinstance(expr, If):
            cond_ty = self.infer(expr.cond, env)
            unify(cond_ty, BOOL, self.subst, expr.cond.span)
            then_ty = self.infer(expr.then, env)
            else_ty = self.infer(expr.otherwise, env)
            unify(then_ty, else_ty, self.subst, expr.span)
            return then_ty
        if isinstance(expr, Letrec):
            return self._infer_letrec(expr, env)
        raise TypeInferenceError(f"cannot infer type of {type(expr).__name__}", expr.span)

    def _infer_letrec(self, expr: Letrec, env: dict[str, TypeScheme]) -> Type:
        # Monomorphic assumptions for the recursive knot.
        assumed: dict[str, Type] = {b.name: fresh_tvar() for b in expr.bindings}
        if self.pins is not None:
            pins, self.pins = self.pins, None  # outermost letrec only
            for name, pinned in pins.items():
                if name not in assumed:
                    raise TypeInferenceError(f"cannot pin unknown binding {name!r}")
                unify(assumed[name], pinned, self.subst, expr.span)
        rec_env = dict(env)
        for name, ty in assumed.items():
            rec_env[name] = TypeScheme.mono(ty)
        for binding in expr.bindings:
            bound_ty = self.infer(binding.expr, rec_env)
            unify(assumed[binding.name], bound_ty, self.subst, binding.span)
        # Generalize for the body (classic let-polymorphism).
        body_env = dict(env)
        for binding in expr.bindings:
            body_env[binding.name] = self.generalize(assumed[binding.name], env)
        return self.infer(expr.body, body_env)


def _replace(ty: Type, mapping: dict[TVar, Type]) -> Type:
    if isinstance(ty, TVar):
        return mapping.get(ty, ty)
    if isinstance(ty, TList):
        return TList(_replace(ty.element, mapping))
    if isinstance(ty, TFun):
        return TFun(_replace(ty.arg, mapping), _replace(ty.result, mapping))
    if isinstance(ty, TProd):
        return TProd(_replace(ty.fst, mapping), _replace(ty.snd, mapping))
    return ty


def default_instance(ty: Type) -> Type:
    """Replace every remaining type variable by ``int`` — the simplest
    monomorphic instance (Theorem 1 makes this choice canonical)."""
    if isinstance(ty, TVar):
        return INT
    if isinstance(ty, TList):
        return TList(default_instance(ty.element))
    if isinstance(ty, TFun):
        return TFun(default_instance(ty.arg), default_instance(ty.result))
    if isinstance(ty, TProd):
        return TProd(default_instance(ty.fst), default_instance(ty.snd))
    return ty


def infer_program(
    program: Program,
    extra_env: dict[str, TypeScheme] | None = None,
    pins: dict[str, Type] | None = None,
) -> InferenceResult:
    """Type-check ``program`` and annotate every node's ``ty`` in place.

    ``pins`` forces chosen top-level bindings to given monotypes before
    generalization — the mechanism for analyzing a polymorphic function at a
    particular instance (Theorem 1 makes all instances agree on the
    non-escaping spine prefix, but each instance has its own ``car^s``
    annotations and therefore its own ``k``).
    """
    inferencer = _Inferencer(pins=dict(pins) if pins else None)
    env: dict[str, TypeScheme] = dict(extra_env or {})
    result_ty = inferencer.infer(program.letrec, env)

    # Annotate all nodes with their resolved, defaulted monotypes.
    for node in walk(program.letrec):
        raw = inferencer.node_types.get(node.uid)
        if raw is not None:
            node.ty = default_instance(inferencer.subst.apply(raw))

    # Re-generalize the top-level bindings against the outer environment so
    # callers can instantiate them at other monotypes.
    schemes: dict[str, TypeScheme] = {}
    for binding in program.bindings:
        raw = inferencer.node_types[binding.expr.uid]
        schemes[binding.name] = inferencer.generalize(raw, env)

    return InferenceResult(
        schemes=schemes,
        result_type=default_instance(inferencer.subst.apply(result_ty)),
        subst=inferencer.subst,
    )


def infer_expr(expr: Expr, env: dict[str, TypeScheme] | None = None) -> Type:
    """Type-check a bare expression; annotates nodes, returns its type."""
    inferencer = _Inferencer()
    ty = inferencer.infer(expr, dict(env or {}))
    for node in walk(expr):
        raw = inferencer.node_types.get(node.uid)
        if raw is not None:
            node.ty = default_instance(inferencer.subst.apply(raw))
    return default_instance(inferencer.subst.apply(ty))
