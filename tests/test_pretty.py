"""Pretty-printer tests: round-tripping through the parser and notation
recovery (lists, infix, letrec)."""

import pytest

from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import PRELUDE_DEFS, paper_partition_sort, prelude_program
from repro.lang.pretty import pretty, pretty_program

ROUND_TRIP_CASES = [
    "42",
    "true",
    "nil",
    "x",
    "f x y",
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "10 - 3 - 2",
    "10 - (3 - 2)",
    "a == b",
    "1 :: 2 :: nil",
    "(1 :: nil) :: nil",
    "[1, 2, 3]",
    "[[1], [2, 3]]",
    "if a then 1 else 2",
    "lambda x. x + 1",
    "lambda f. lambda x. f (f x)",
    "letrec f x = f x in f 1",
    "letrec f x = x; g y = f y in g 2",
    "car (cdr [1, 2])",
    "null nil",
    "dcons x 1 nil",
    "f (if a then 1 else 2)",
    "(lambda x. x) 3",
    "0 - 5",
]


@pytest.mark.parametrize("source", ROUND_TRIP_CASES)
def test_round_trip(source):
    expr = parse_expr(source)
    assert parse_expr(pretty(expr)) == expr


@pytest.mark.parametrize("source", ROUND_TRIP_CASES)
def test_pretty_is_idempotent(source):
    expr = parse_expr(source)
    once = pretty(expr)
    assert pretty(parse_expr(once)) == once


@pytest.mark.parametrize("name", sorted(PRELUDE_DEFS))
def test_prelude_definitions_round_trip(name):
    program = prelude_program([name])
    reparsed = parse_program(pretty_program(program))
    assert reparsed == program


def test_paper_program_round_trips():
    program = paper_partition_sort()
    assert parse_program(pretty_program(program)) == program


def test_list_literal_notation_recovered():
    assert pretty(parse_expr("cons 1 (cons 2 nil)")) == "[1, 2]"


def test_partial_cons_chain_uses_infix():
    assert "::" in pretty(parse_expr("cons 1 xs"))


def test_infix_recovered():
    assert pretty(parse_expr("1 + 2")) == "1 + 2"


def test_bare_operator_section_parenthesized():
    text = pretty(parse_expr("f (+)"))
    assert parse_expr(text) == parse_expr("f (+)")


def test_program_script_rendering():
    program = prelude_program(["length"], "length [1, 2]")
    text = pretty_program(program)
    assert text.startswith("length l = ")
    assert text.rstrip().endswith("length [1, 2]")
