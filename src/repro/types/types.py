"""Type representations for nml.

Monotypes are ``int``, ``bool``, ``τ list``, ``τ1 → τ2``, and inference
variables.  Polymorphic bindings get a :class:`TypeScheme` (∀-quantified
monotype), per §5 of the paper; the escape analysis itself always runs on a
monomorphic instance (Theorem 1 makes the choice of instance irrelevant).

The *spine count* of a type (Definition 1) is central to the analysis::

    spines(int) = spines(bool) = spines(τ1 → τ2) = 0
    spines(τ list) = 1 + spines(τ)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


class Type:
    """Base class of all monotypes.  Types are immutable and hashable."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


@dataclass(frozen=True)
class TInt(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class TBool(Type):
    def __str__(self) -> str:
        return "bool"


_tvar_counter = itertools.count(1)


@dataclass(frozen=True)
class TVar(Type):
    """An inference variable.  ``fresh_tvar`` allocates unique ids."""

    id: int

    def __str__(self) -> str:
        return f"t{self.id}"


def fresh_tvar() -> TVar:
    return TVar(next(_tvar_counter))


@dataclass(frozen=True)
class TList(Type):
    element: Type

    def __str__(self) -> str:
        inner = str(self.element)
        if isinstance(self.element, (TFun, TProd)):
            inner = f"({inner})"
        return f"{inner} list"


@dataclass(frozen=True)
class TFun(Type):
    arg: Type
    result: Type

    def __str__(self) -> str:
        left = str(self.arg)
        if isinstance(self.arg, TFun):
            left = f"({left})"
        return f"{left} -> {self.result}"


@dataclass(frozen=True)
class TProd(Type):
    """A pair type ``τ1 * τ2`` (the paper's "tuples, records" — §7 notes
    the approach extends to them; n-tuples are right-nested pairs)."""

    fst: Type
    snd: Type

    def __str__(self) -> str:
        def side(ty: Type) -> str:
            if isinstance(ty, (TFun, TProd)):
                return f"({ty})"
            return str(ty)

        return f"{side(self.fst)} * {side(self.snd)}"


INT = TInt()
BOOL = TBool()


@dataclass(frozen=True)
class TypeScheme:
    """``∀ vars. body`` — the generalization of a monotype."""

    vars: tuple[TVar, ...]
    body: Type

    def __str__(self) -> str:
        if not self.vars:
            return str(self.body)
        quantified = " ".join(str(v) for v in self.vars)
        return f"forall {quantified}. {self.body}"

    @staticmethod
    def mono(ty: Type) -> "TypeScheme":
        return TypeScheme((), ty)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def spines(ty: Type) -> int:
    """Definition 1's spine count of a type.

    Type variables count as zero spines: by polymorphic invariance the
    analysis may treat an unconstrained element type as the simplest
    instance (``int``).
    """
    count = 0
    while isinstance(ty, TList):
        count += 1
        ty = ty.element
    return count


def free_type_vars(ty: Type) -> frozenset[TVar]:
    if isinstance(ty, TVar):
        return frozenset({ty})
    if isinstance(ty, TList):
        return free_type_vars(ty.element)
    if isinstance(ty, TFun):
        return free_type_vars(ty.arg) | free_type_vars(ty.result)
    if isinstance(ty, TProd):
        return free_type_vars(ty.fst) | free_type_vars(ty.snd)
    return frozenset()


def scheme_free_type_vars(scheme: TypeScheme) -> frozenset[TVar]:
    return free_type_vars(scheme.body) - frozenset(scheme.vars)


def apply_subst(ty: Type, subst: dict[TVar, Type]) -> Type:
    """Apply a substitution, following chains (``t1 ↦ t2 ↦ int``)."""
    if isinstance(ty, TVar):
        replacement = subst.get(ty)
        if replacement is None:
            return ty
        return apply_subst(replacement, subst)
    if isinstance(ty, TList):
        element = apply_subst(ty.element, subst)
        return ty if element is ty.element else TList(element)
    if isinstance(ty, TFun):
        arg = apply_subst(ty.arg, subst)
        result = apply_subst(ty.result, subst)
        if arg is ty.arg and result is ty.result:
            return ty
        return TFun(arg, result)
    if isinstance(ty, TProd):
        fst = apply_subst(ty.fst, subst)
        snd = apply_subst(ty.snd, subst)
        if fst is ty.fst and snd is ty.snd:
            return ty
        return TProd(fst, snd)
    return ty


def fun_args(ty: Type) -> tuple[list[Type], Type]:
    """Decompose ``τ1 → ... → τn → ρ`` into ``([τ1..τn], ρ)`` where ρ is not
    a function type."""
    args: list[Type] = []
    while isinstance(ty, TFun):
        args.append(ty.arg)
        ty = ty.result
    return args, ty


def arity(ty: Type) -> int:
    """Number of arguments a value of this type can take before returning a
    non-function value (the paper's ``m`` in Definition 2)."""
    return len(fun_args(ty)[0])


def contains_function(ty: Type) -> bool:
    """True if a function type occurs anywhere inside ``ty``."""
    if isinstance(ty, TFun):
        return True
    if isinstance(ty, TList):
        return contains_function(ty.element)
    if isinstance(ty, TProd):
        return contains_function(ty.fst) or contains_function(ty.snd)
    return False


def is_list_type(ty: Type) -> bool:
    return isinstance(ty, TList)


def list_of(ty: Type, depth: int = 1) -> Type:
    """``ty list list ...`` with ``depth`` list constructors."""
    for _ in range(depth):
        ty = TList(ty)
    return ty


def type_fingerprint(ty: Type) -> str:
    """A stable, canonical token string for ``ty``.

    Type variables are renumbered by first occurrence, so two types that
    differ only in the identity of their inference variables fingerprint
    identically — the property the query-engine cache keys need (a pin of
    ``t17 list`` and of ``t99 list`` is the same pin).
    """
    names: dict[TVar, int] = {}

    def go(t: Type) -> str:
        if isinstance(t, TInt):
            return "int"
        if isinstance(t, TBool):
            return "bool"
        if isinstance(t, TVar):
            if t not in names:
                names[t] = len(names) + 1
            return f"a{names[t]}"
        if isinstance(t, TList):
            return f"(list {go(t.element)})"
        if isinstance(t, TFun):
            return f"(fun {go(t.arg)} {go(t.result)})"
        if isinstance(t, TProd):
            return f"(prod {go(t.fst)} {go(t.snd)})"
        raise TypeError(f"cannot fingerprint {type(t).__name__}")

    return go(ty)


def pins_fingerprint(pins: "dict[str, Type] | None") -> str:
    """A stable key for a set of monotype pins (empty string for none)."""
    if not pins:
        return ""
    return ";".join(
        f"{name}:{type_fingerprint(pins[name])}" for name in sorted(pins)
    )


def max_spines_in(ty: Type) -> int:
    """The deepest spine count of any list type occurring inside ``ty``.

    Used to compute the program constant ``d`` that bounds the `B_e` chain.
    """
    if isinstance(ty, TList):
        return max(spines(ty), max_spines_in(ty.element))
    if isinstance(ty, TFun):
        return max(max_spines_in(ty.arg), max_spines_in(ty.result))
    if isinstance(ty, TProd):
        return max(max_spines_in(ty.fst), max_spines_in(ty.snd))
    return 0
