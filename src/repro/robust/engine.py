"""The hardened analysis engine: budgeted queries with sound degradation.

:class:`HardenedAnalysis` wraps :class:`~repro.escape.analyzer.EscapeAnalysis`
so that an escape query *always* returns a sound answer:

* within budget, the exact analysis result;
* on a budget breach (deadline, fixpoint iterations, evaluation steps) or a
  degradable failure, the ``W^τ``-derived worst case ⟨1, sᵢ⟩ for each
  queried parameter — valid for every application by Definition 2 — tagged
  with a structured :class:`~repro.robust.errors.Degradation`;
* retryable faults (allocation failure) are retried a bounded number of
  times first;
* fatal conditions (untypeable program, tripped soundness tripwires)
  propagate: there is nothing sound to degrade to, or degrading would mask
  a real defect.

The soundness invariant — degraded answers are always ⊒ the exact answer in
``B_e`` — is what the fault-injection suite asserts program by program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeTestResult
from repro.query import AnalysisSession
from repro.escape.worst import worst_test_result
from repro.lang.ast import Program, Var, uncurry_app
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_expr
from repro.obs import tracer as obs
from repro.robust import faults
from repro.robust.budget import AnalysisBudget, BudgetMeter
from repro.robust.errors import (
    BudgetSpent,
    DeadlineExceeded,
    Degradation,
    IterationBudgetExceeded,
    Severity,
    WorkBudgetExceeded,
    classify,
    reason_for,
)
from repro.types.infer import infer_program
from repro.types.types import Type, fun_args


@dataclass(frozen=True)
class RobustResult:
    """One escape-test answer from the hardened engine.

    ``exact`` results carry the analysis conclusion unchanged; degraded
    results carry the worst-case escapement and the reason the exact path
    was cut short.  Either way ``result`` is sound (⊒ the true escapement).
    """

    result: EscapeTestResult
    degradation: Degradation | None = None
    spent: BudgetSpent | None = None

    @property
    def exact(self) -> bool:
        return self.degradation is None

    @property
    def degraded(self) -> bool:
        return self.degradation is not None

    def __str__(self) -> str:
        text = str(self.result)
        if self.degradation is not None:
            text += f"  [{self.degradation.reason}]"
        return text


def _stage_of(error: BaseException) -> str:
    stage = getattr(error, "stage", "")
    if stage:
        return stage
    if isinstance(error, IterationBudgetExceeded):
        return "fixpoint"
    if isinstance(error, (WorkBudgetExceeded, DeadlineExceeded)):
        return "abstract-eval"
    return "analysis"


class HardenedAnalysis:
    """Budgeted, fault-tolerant front door to the escape analysis.

    >>> from repro.lang.prelude import paper_partition_sort
    >>> engine = HardenedAnalysis(paper_partition_sort())
    >>> engine.global_test("append", 1).exact
    True

    Construction runs type inference once (fatal if the program is
    untypeable — without types there is no ``W^τ``) and records every
    binding's parameter types, so degraded answers can be produced even
    when a later, budgeted solve never finishes.
    """

    def __init__(
        self,
        program: Program,
        budget: AnalysisBudget | None = None,
        d: int | None = None,
        max_iterations: int | None = None,
        max_retries: int = 1,
        store=None,
        engine: str | None = None,
    ):
        self.program = program
        self.budget = budget or AnalysisBudget()
        self.d = d
        self.max_iterations = max_iterations
        self.max_retries = max_retries
        # Fatal on failure, by design: an untypeable program has no W^τ.
        infer_program(program)
        self._param_types: dict[str, tuple[Type, ...]] = {}
        for name in program.binding_names():
            ty = program.binding(name).expr.ty
            self._param_types[name] = tuple(fun_args(ty)[0]) if ty is not None else ()
        #: One query session shared by every query (and retry attempt) of
        #: this engine: repeated questions hit the solve/SCC caches, so a
        #: per-query budget is charged only for the cache *misses* the
        #: query actually solves (deadlines are still enforced per query).
        #: An attached :class:`repro.store.AnalysisStore` adds an on-disk
        #: tier with the same charging rule — a store hit decodes persisted
        #: values without running the abstract evaluator, so budget meters
        #: see no eval steps and no fixpoint iterations for it (a corrupt
        #: entry degrades to a charged re-solve, never to a wrong answer).
        self.session = AnalysisSession(
            program, d=d, max_iterations=max_iterations, store=store, engine=engine
        )
        #: The fixpoint engine the session runs on; the worklist engine
        #: charges meters one ``tick_eval`` per transfer eval, so budget
        #: breaches degrade to W^τ exactly like legacy eval steps.
        self.engine = self.session.engine

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _charge(meter: BudgetMeter) -> None:
        """Emit what the finished (or cut-off) query actually spent."""
        spent = meter.spent()
        obs.emit(
            "budget_charge",
            wall_s=round(spent.wall_seconds, 9),
            eval_steps=spent.eval_steps,
            iterations=spent.iterations,
        )

    def _arg_types_for(
        self, function: str, instance: Type | None
    ) -> tuple[Type, ...]:
        """Parameter types at the queried instance (the degraded worst case
        must use the *instance* spine counts to stay ⊒ the exact answer)."""
        if instance is not None:
            return tuple(fun_args(instance)[0])
        if function not in self._param_types:
            raise AnalysisError(f"no top-level binding named {function!r}")
        return self._param_types[function]

    def _run(self, meter: BudgetMeter, query):
        """Run ``query`` (a callable taking a fresh EscapeAnalysis) with the
        retry policy; returns its value or raises the terminal exception."""
        attempts = 0
        while True:
            try:
                faults.check_stage("query")
                analysis = EscapeAnalysis(
                    self.program,
                    d=self.d,
                    max_iterations=self.max_iterations,
                    meter=meter,
                    session=self.session,
                )
                return query(analysis)
            except Exception as error:
                if (
                    classify(error) is Severity.RETRYABLE
                    and attempts < self.max_retries
                ):
                    attempts += 1
                    continue
                raise

    def _degrade(
        self,
        error: BaseException,
        meter: BudgetMeter,
        function: str,
        indices: list[int],
        arg_types: tuple[Type, ...],
        kind: str,
    ) -> list[RobustResult]:
        if classify(error) is Severity.FATAL:
            raise error
        degradation = Degradation(
            reason=reason_for(error),
            stage=_stage_of(error),
            message=str(error),
            spent=meter.spent(),
            error=error,
        )
        # Name the degraded query so `repro explain` can tie the fallback
        # to its binding even when the solver never got far enough to
        # emit any solve events of its own.
        obs.emit(
            "degradation",
            reason=degradation.reason,
            stage=degradation.stage,
            function=function,
        )
        self._charge(meter)
        return [
            RobustResult(
                result=worst_test_result(function, i, arg_types[i - 1], kind=kind),
                degradation=degradation,
                spent=meter.spent(),
            )
            for i in indices
        ]

    # -- global test (§4.1), hardened --------------------------------------

    def global_all(
        self,
        function: str,
        instance: Type | None = None,
        n_args: int | None = None,
    ) -> list[RobustResult]:
        """``G(function, i)`` for every parameter — exact or degraded."""
        arg_types = self._arg_types_for(function, instance)
        meter = self.budget.start()
        n = n_args if n_args is not None else len(arg_types)
        n = min(n, len(arg_types))
        if n == 0:
            raise AnalysisError(f"{function} takes no arguments")
        try:
            results = self._run(
                meter,
                lambda a: a.global_all(function, instance=instance, n_args=n_args),
            )
            self._charge(meter)
            return [RobustResult(result=r, spent=meter.spent()) for r in results]
        except Exception as error:
            return self._degrade(
                error, meter, function, list(range(1, n + 1)), arg_types, "global"
            )

    def global_test(
        self,
        function: str,
        i: int,
        instance: Type | None = None,
        n_args: int | None = None,
    ) -> RobustResult:
        """``G(function, i)`` — exact or degraded, never an exception for
        budget breaches or degradable faults."""
        arg_types = self._arg_types_for(function, instance)
        if not 1 <= i <= len(arg_types):
            raise AnalysisError(f"parameter index {i} out of range 1..{len(arg_types)}")
        meter = self.budget.start()
        try:
            result = self._run(
                meter,
                lambda a: a.global_test(function, i, instance=instance, n_args=n_args),
            )
            self._charge(meter)
            return RobustResult(result=result, spent=meter.spent())
        except Exception as error:
            return self._degrade(error, meter, function, [i], arg_types, "global")[0]

    # -- local test (§4.2), hardened ----------------------------------------

    def local_test(self, call, i: int | None = None):
        """``L(f, i, e₁…eₙ)`` — exact or degraded.

        Degradation needs the head function's parameter types, so calls
        whose head is not a top-level binding propagate their failure.
        """
        expr = parse_expr(call) if isinstance(call, str) else call
        head, args = uncurry_app(expr)
        meter = self.budget.start()
        try:
            results = self._run(meter, lambda a: a.local_test(expr, i))
            self._charge(meter)
            if i is not None:
                return RobustResult(result=results, spent=meter.spent())
            return [RobustResult(result=r, spent=meter.spent()) for r in results]
        except Exception as error:
            if not (isinstance(head, Var) and head.name in self._param_types):
                raise
            arg_types = self._param_types[head.name]
            if len(args) > len(arg_types):
                raise
            indices = [i] if i is not None else list(range(1, len(args) + 1))
            degraded = self._degrade(
                error, meter, head.name, indices, arg_types, "local"
            )
            return degraded[0] if i is not None else degraded
