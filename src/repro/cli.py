"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

* ``run``      — evaluate a program, print its result and storage metrics
* ``report``   — the full paper-style analysis report (A.1 + A.2)
* ``analyze``  — global escape tests for one function (or a local test)
* ``observe``  — ground-truth escapement of one call on the instrumented heap
* ``spines``   — the Figure 1 spine decomposition of a list literal
* ``optimize`` — apply an optimization and show the transformed program
* ``trace``    — run the analysis under the tracer and emit the JSONL trace;
  also ``trace merge`` (combine per-process shards into one causally
  ordered trace) and ``trace validate`` (schema-check trace files,
  nonzero exit on an invalid one)
* ``explain``  — reconstruct the causal chain behind one binding's result
  from a trace alone: store hit/miss, worklist activity, fixpoint ascent,
  final fingerprint, optimization decisions, audit rules fired
* ``batch``    — analyze a corpus of ``.nml`` files in parallel under the
  resilience supervisor (per-file timeouts, crash restarts, quarantine),
  sharing solved SCC fixpoints through a persistent on-disk store
* ``check``    — the static checker (:mod:`repro.check`): lint, the
  optimization auditor, and the machine-code verifier
* ``diff``     — the corpus-scale differential regression harness
  (:mod:`repro.diff`): ``diff snapshot`` writes one canonical JSON
  artifact per corpus file, ``diff compare`` reports a categorized,
  lattice-ordered diff of two snapshot trees with per-category gating,
  ``diff gen-corpus`` materializes the committed generated corpus from
  its seed manifest
* ``serve``    — the always-answer analysis daemon (:mod:`repro.serve`):
  analyze/check/optimize over HTTP/JSON with degraded-answer responses,
  in-flight coalescing, and a ``/metrics`` scrape

Programs are read from a file path or, with ``-e``, from the argument
itself.  Observer arguments are Python literals (``'[1, 2, 3]'``) or nml
source prefixed with ``@`` for function arguments (``@pair``).

Observability: ``run``/``report``/``analyze``/``optimize``/``batch``
accept ``--trace FILE`` (write a JSONL event trace; for ``batch`` the
per-worker shards are merged into one causally ordered trace) and
``--profile`` (print a profile report to stderr when the command
finishes); ``report``, ``analyze`` and ``observe`` accept ``--json`` for
machine-readable output.

Every command runs with the **flight recorder** on: a bounded in-memory
ring of recent events that auto-dumps a validated black-box trace on
degradation, quarantine, worker crash, or checker error whenever a dump
directory is configured (``--flight-dir`` or ``REPRO_FLIGHT_DIR``).
"""

from __future__ import annotations

import argparse
import ast as python_ast
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.analysis.sharing import sharing_global
from repro.canonical import canonical_dumps, canonical_json
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import Source, observe_escape
from repro.escape.report import analysis_report
from repro.lang.ast import Program
from repro.lang.errors import NmlError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.semantics.interp import Interpreter

#: The exit-code taxonomy, shared by every subcommand:
#:
#: * 0 — ok: the command did what was asked;
#: * 1 — error: bad input, analysis failure, or crash;
#: * 2 — usage: the arguments themselves are wrong (a nonexistent input
#:   path, a non-``.nml`` file, an unknown diff category) — rejected
#:   before any work starts, matching the shells' usage-error convention;
#: * 3 — degraded: answered, but via a sound W^tau fallback (so scripts can
#:   tell a degraded answer from a hard failure);
#: * 4 — findings: the static checker completed and found error-severity
#:   diagnostics (the checked artifact is unsound; the checker itself is
#:   fine — distinct from 1 so CI can gate on findings specifically).
#:   ``diff compare`` reuses 3/4: benign churn only → 3, gated
#:   regressions → 4.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3
EXIT_FINDINGS = 4

_EXIT_CODE_HELP = (
    "exit codes: 0 ok; 1 error (bad input or crash); 2 usage "
    "(invalid arguments or input paths); 3 degraded "
    "(answered via the sound W^tau fallback); 4 findings "
    "(the static checker found error-severity diagnostics)"
)


def _load_program(args: argparse.Namespace) -> Program:
    if args.expr:
        return parse_program(args.program)
    return parse_program(Path(args.program).read_text())


def _add_program_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="path to an nml file (or source with -e)")
    parser.add_argument(
        "-e", "--expr", action="store_true", help="treat PROGRAM as source text"
    )


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--robust",
        action="store_true",
        help="run through the hardened engine (degrade to W^tau, never crash)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, help="wall-clock budget (implies --robust)"
    )
    parser.add_argument(
        "--max-iterations", type=int, help="fixpoint iteration budget (implies --robust)"
    )
    parser.add_argument(
        "--max-steps", type=int, help="abstract-evaluation step budget (implies --robust)"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat a degraded (non-exact) answer as a hard error (exit 1)",
    )


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    from repro.escape.engine import DEFAULT_ENGINE, ENGINES

    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        help=f"fixpoint engine (default: {DEFAULT_ENGINE}); 'legacy' keeps "
        "the AST-walking Kleene iteration as a differential-testing oracle",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL event trace of everything the command does",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a profile report (spans, caches, fixpoints) to stderr",
    )


def _add_gc_arg(parser: argparse.ArgumentParser, help_prefix: str = "") -> None:
    """The ``--gc [COLLECTOR]`` flag: bare ``--gc`` keeps the historical
    mark-sweep default, ``--gc liveness|copying`` picks a zoo member."""
    from repro.semantics.gc import COLLECTORS

    parser.add_argument(
        "--gc",
        nargs="?",
        const="mark-sweep",
        default=None,
        choices=COLLECTORS,
        metavar="COLLECTOR",
        help=f"{help_prefix}enable GC; optionally pick the collector "
        f"({', '.join(COLLECTORS)}; bare --gc means mark-sweep)",
    )


def _liveness_budgets(program) -> "dict[str, int | None] | None":
    """Per-binder live-depth budgets for the liveness collector; ``None``
    (full marking) when the static analysis cannot promise anything."""
    from repro.analysis.heap_liveness import analyze_program

    facts = analyze_program(program)
    if facts.degraded:
        print(
            "warning: heap-liveness analysis degraded; the liveness "
            "collector falls back to full-reachability marking",
            file=sys.stderr,
        )
        return None
    return facts.budget_map()


def _runtime_gc_kwargs(args: argparse.Namespace, program) -> dict:
    """Collector construction kwargs shared by ``run`` and ``trace``."""
    collector = args.gc or "mark-sweep"
    return dict(
        auto_gc=args.gc is not None,
        collector=collector,
        liveness=(
            _liveness_budgets(program) if collector == "liveness" else None
        ),
    )


@contextmanager
def _obs_scope(args: argparse.Namespace):
    """Activate a tracer around a command when ``--trace``/``--profile``
    asked for one.  Commands without those flags pass through untouched
    (`getattr` defaults), as do ``trace`` and ``batch``, which own their
    tracers (``batch`` must merge per-worker shards after the run)."""
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    owns_tracer = getattr(args, "handler", None) in (_cmd_trace, _cmd_batch)
    if (not trace_path and not profile) or owns_tracer:
        yield
        return

    from repro.obs import JsonlSink, RingBufferSink, Tracer, activate
    from repro.obs.flight import recorder
    from repro.obs.profile import profile_report

    sinks: list = []
    jsonl = JsonlSink.open(trace_path) if trace_path else None
    if jsonl is not None:
        sinks.append(jsonl)
    ring = RingBufferSink() if profile else None
    if ring is not None:
        sinks.append(ring)
    flight = recorder()
    if flight is not None:
        sinks.append(flight)
    try:
        with activate(Tracer(sinks=sinks)):
            yield
    finally:
        if jsonl is not None:
            jsonl.close()
        if ring is not None:
            print(
                profile_report(ring.events, total=ring.total),
                end="",
                file=sys.stderr,
            )


@contextmanager
def _flight_scope(args: argparse.Namespace):
    """The always-on flight recorder: installed process-wide and kept
    recording for the whole command via a tracer of its own.  Inner
    scopes (``_obs_scope``, ``trace``, ``batch``) activate richer tracers
    that *include* the recorder, so the black box never goes dark."""
    from repro.obs import Tracer, activate
    from repro.obs.flight import FlightRecorder, dump_dir_from_env, install

    dump_dir = getattr(args, "flight_dir", None) or dump_dir_from_env()
    flight = install(FlightRecorder(dump_dir=dump_dir))
    with activate(Tracer(sinks=[flight])):
        yield flight


def _budget_from(args: argparse.Namespace):
    from repro.robust.budget import AnalysisBudget

    return AnalysisBudget(
        deadline_s=args.deadline_ms / 1000.0 if args.deadline_ms is not None else None,
        max_fixpoint_iterations=args.max_iterations,
        max_eval_steps=args.max_steps,
    )


def _wants_robust(args: argparse.Namespace) -> bool:
    return bool(
        args.robust
        or args.deadline_ms is not None
        or args.max_iterations is not None
        or args.max_steps is not None
    )


def _finish_degraded(args: argparse.Namespace, messages: list[str]) -> int:
    if not messages:
        return EXIT_OK
    if args.strict:
        for message in messages:
            print(f"error: degraded: {message}", file=sys.stderr)
        return EXIT_ERROR
    for message in messages:
        print(f"warning: degraded: {message}", file=sys.stderr)
    return EXIT_DEGRADED


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args)
    gc_kwargs = _runtime_gc_kwargs(args, program)
    if args.machine:
        from repro.machine.machine import Machine

        runtime = Machine(
            gc_threshold=args.gc_threshold, sanitize=args.sanitize, **gc_kwargs
        )
    else:
        runtime = Interpreter(
            gc_threshold=args.gc_threshold, sanitize=args.sanitize, **gc_kwargs
        )
    value = runtime.run(program)
    print(runtime.to_python(value))
    if args.metrics:
        for key, count in runtime.metrics.snapshot().items():
            if count:
                print(f"  {key}: {count}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    program = _load_program(args)
    if args.json:
        from repro.escape.report import report_json

        print(canonical_json(report_json(program, include_stats=args.stats)))
        return 0
    print(analysis_report(program, include_stats=args.stats), end="")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    program = _load_program(args)
    if _wants_robust(args):
        return _cmd_analyze_robust(args, program)
    from repro.escape.report import result_dict

    analysis = EscapeAnalysis(program, store=_store_from(args))
    doc: dict = {"mode": "exact", "results": [], "errors": []}
    if args.local:
        results = analysis.local_test(args.local)
        for result in results:
            if args.json:
                doc["results"].append(result_dict(result))
            else:
                print(f"{result}  —  {result.describe()}")
        return _finish_analyze(args, analysis, doc)
    names = [args.function] if args.function else list(program.binding_names())
    for name in names:
        try:
            results = analysis.global_all(name)
        except NmlError as error:
            if args.json:
                doc["errors"].append({"function": name, "error": error.message})
            else:
                print(f"{name}: {error.message}")
            continue
        for result in results:
            if args.json:
                doc["results"].append(result_dict(result))
            else:
                print(f"{result}  —  {result.describe()}")
        if args.sharing and not args.json:
            try:
                print(f"  {sharing_global(analysis, name).describe()}")
            except NmlError:
                pass
    return _finish_analyze(args, analysis, doc)


def _finish_analyze(args: argparse.Namespace, analysis, doc: dict) -> int:
    from repro.escape.report import stats_dict

    if args.json:
        if args.stats:
            doc["stats"] = stats_dict(analysis.stats)
        print(canonical_json(doc))
    elif args.stats:
        print(f"-- stats: {analysis.stats.summary()}")
    return 0


def _cmd_analyze_robust(args: argparse.Namespace, program: Program) -> int:
    from repro.escape.report import result_dict, stats_dict
    from repro.robust.engine import HardenedAnalysis

    engine = HardenedAnalysis(program, budget=_budget_from(args), store=_store_from(args))
    degraded: list[str] = []
    doc: dict = {"mode": "robust", "results": []}

    def show(robust) -> None:
        result = robust.result
        if args.json:
            entry = result_dict(result)
            entry["degraded"] = robust.degraded
            if robust.degraded:
                entry["degradation"] = {
                    "reason": robust.degradation.reason,
                    "stage": robust.degradation.stage,
                }
            doc["results"].append(entry)
        if robust.degraded:
            d = robust.degradation
            if not args.json:
                print(f"{result}  —  {result.describe()}  [degraded: {d.reason}]")
            degraded.append(f"{result.function}/{result.param_index}: {d}")
        elif not args.json:
            print(f"{result}  —  {result.describe()}")

    if args.local:
        for robust in engine.local_test(args.local):
            show(robust)
    else:
        names = [args.function] if args.function else list(program.binding_names())
        for name in names:
            for robust in engine.global_all(name):
                show(robust)
    if args.json:
        doc["degraded"] = bool(degraded)
        if args.stats:
            doc["stats"] = stats_dict(engine.session.stats)
        print(canonical_json(doc))
    elif args.stats:
        print(f"-- stats: {engine.session.stats.summary()}")
    return _finish_degraded(args, degraded)


def _parse_observer_arg(text: str):
    if text.startswith("@"):
        return Source(text[1:])
    return python_ast.literal_eval(text)


def _cmd_observe(args: argparse.Namespace) -> int:
    program = _load_program(args)
    call_args = [_parse_observer_arg(a) for a in args.args]
    observed = observe_escape(program, args.function, call_args, args.index)
    if args.json:
        print(
            canonical_json(
                {
                    "function": args.function,
                    "param_index": args.index,
                    "escapement": str(observed.as_escapement()),
                    "escaped": observed.escaped,
                    "escaped_levels": sorted(observed.escaped_levels),
                }
            )
        )
        return 0
    print(f"observed escapement: {observed.as_escapement()}")
    if observed.escaped:
        levels = ", ".join(str(l) for l in sorted(observed.escaped_levels))
        print(f"  spine level(s) {levels} reached the result")
    else:
        print("  no cell of the argument is reachable from the result")
    return 0


def _cmd_spines(args: argparse.Namespace) -> int:
    from repro.bench.figures import spine_figure

    print(spine_figure(python_ast.literal_eval(args.list)))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program(args)
    if _wants_robust(args):
        from repro.robust.pipeline import harden_optimize

        outcome = harden_optimize(
            program, budget=_budget_from(args), validate=args.validate
        )
        for line in outcome.summary().splitlines():
            print(f"-- {line}")
        print(pretty_program(outcome.program), end="")
        return _finish_degraded(args, [str(d) for d in outcome.degradations])
    if args.reuse:
        from repro.opt.reuse import make_reuse_specialization

        function, _, index = args.reuse.partition(":")
        result = make_reuse_specialization(program, function, int(index or "1"))
        print(
            f"-- reuse: {result.new_name} recycles parameter "
            f"{result.param_index} ({result.rewritten_sites} DCONS site(s))"
        )
        program = result.program
    if args.stack:
        from repro.opt.stack_alloc import stack_allocate_body

        result = stack_allocate_body(program)
        print(f"-- stack: {result.annotated_sites} cons site(s) moved to the activation")
        program = result.program
    if args.block:
        from repro.opt.block_alloc import block_allocate_producer

        result = block_allocate_producer(program, args.block)
        print(
            f"-- block: {result.new_name} allocates {result.annotated_sites} "
            "site(s) into a block freed when the consumer returns"
        )
        program = result.program
    print(pretty_program(program), end="")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.machine.compiler import compile_program
    from repro.machine.instructions import disassemble

    program = _load_program(args)
    print(disassemble(compile_program(program)))
    return 0


def _trace_merge(args: argparse.Namespace) -> int:
    """``repro trace merge SHARD... --out FILE``: combine per-process
    JSONL shards into one schema-valid, causally ordered trace."""
    from repro.obs.context import merge_trace_files
    from repro.obs.events import TraceSchemaError, validate_trace_file

    shards = [Path(p) for p in args.extra]
    if not shards:
        print("error: trace merge needs at least one shard file", file=sys.stderr)
        return EXIT_ERROR
    if not args.out:
        print("error: trace merge requires --out FILE", file=sys.stderr)
        return EXIT_ERROR
    count = merge_trace_files(shards, args.out)
    try:
        validate_trace_file(args.out)
    except TraceSchemaError as error:  # pragma: no cover - merge bug guard
        print(f"error: merged trace is invalid: {error}", file=sys.stderr)
        return EXIT_ERROR
    print(
        f"merged {len(shards)} shard(s) into {args.out} ({count} event(s))",
        file=sys.stderr,
    )
    return EXIT_OK


def _trace_validate(args: argparse.Namespace) -> int:
    """``repro trace validate FILE...``: schema-check trace files; exit 1
    naming the offending event index and source line on the first bad
    one."""
    from repro.obs.events import TraceSchemaError, validate_trace_file

    if not args.extra:
        print("error: trace validate needs at least one file", file=sys.stderr)
        return EXIT_ERROR
    for path in args.extra:
        try:
            count = validate_trace_file(path)
        except TraceSchemaError as error:
            print(f"{path}: invalid trace: {error}", file=sys.stderr)
            return EXIT_ERROR
        except OSError as error:
            print(f"{path}: {error}", file=sys.stderr)
            return EXIT_ERROR
        print(f"{path}: {count} event(s) valid")
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run the full analysis (and optionally the program) under the tracer
    and emit the JSONL event trace — to ``--out`` or stdout.  The
    ``merge`` and ``validate`` subactions operate on existing trace files
    instead (``repro trace merge SHARD... --out FILE``, ``repro trace
    validate FILE...``)."""
    from repro.escape.report import global_table
    from repro.obs import JsonlSink, RingBufferSink, Tracer, activate
    from repro.obs.profile import profile_report

    if not args.expr:
        if args.program == "merge":
            return _trace_merge(args)
        if args.program == "validate":
            return _trace_validate(args)
    if args.extra:
        print(
            f"error: unexpected arguments: {' '.join(args.extra)}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    program = _load_program(args)
    ring = RingBufferSink()
    sinks: list = [ring]
    jsonl = JsonlSink.open(args.out) if args.out else None
    if jsonl is not None:
        sinks.append(jsonl)
    from repro.obs.flight import recorder

    flight = recorder()
    if flight is not None:
        sinks.append(flight)
    try:
        with activate(Tracer(sinks=sinks)):
            global_table(program)
            if args.run:
                runtime = Interpreter(**_runtime_gc_kwargs(args, program))
                runtime.run(program)
    finally:
        if jsonl is not None:
            jsonl.close()
    if jsonl is None:
        for event in ring.events:
            print(canonical_dumps(event, default=str))
    else:
        print(f"wrote {ring.total} event(s) to {args.out}", file=sys.stderr)
    if args.profile:
        print(profile_report(ring.events, total=ring.total), end="", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct the causal chain behind one binding's result from a
    trace file alone (no re-analysis)."""
    from repro.obs.events import TraceSchemaError, validate_trace_file
    from repro.obs.explain import explain_binding, format_explanation, known_bindings
    from repro.obs.sinks import read_trace

    try:
        validate_trace_file(args.trace_file)
    except TraceSchemaError as error:
        print(f"{args.trace_file}: invalid trace: {error}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    events = list(read_trace(args.trace_file))
    explanation = explain_binding(events, args.binding)
    if args.json:
        print(canonical_json(explanation.to_json()))
    else:
        print(format_explanation(explanation), end="")
    if not explanation.found:
        names = known_bindings(events)
        if names:
            preview = ", ".join(names[:8])
            print(f"hint: this trace can explain: {preview}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def _store_from(args: argparse.Namespace):
    path = getattr(args, "store", None)
    if not path:
        return None
    from repro.store import AnalysisStore

    return AnalysisStore(path)


def _cmd_batch(args: argparse.Namespace) -> int:
    """Analyze a corpus of .nml files in parallel through a shared store."""
    from repro.batch import BatchInputError, collect_inputs, run_batch

    try:
        inputs = collect_inputs(args.paths)
    except BatchInputError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if not inputs:
        print("error: no .nml files found", file=sys.stderr)
        return EXIT_ERROR

    store_root: str | None
    if args.no_store:
        store_root = None
    elif args.store:
        store_root = args.store
    else:
        first = Path(args.paths[0])
        base = first if first.is_dir() else first.parent
        store_root = str(base / ".repro-store")

    from repro.robust.resilience import RetryPolicy

    retry = None
    if args.retries is not None or args.seed:
        retry = RetryPolicy(
            max_attempts=(args.retries if args.retries is not None else 3),
            base_delay_s=args.backoff_ms / 1000.0,
            seed=args.seed,
        )
    run_kwargs = dict(
        store_root=store_root,
        jobs=args.jobs,
        d=args.d,
        max_iterations=args.max_iterations,
        check=args.check,
        deadline_ms=args.deadline_ms,
        timeout_s=args.timeout_ms / 1000.0 if args.timeout_ms is not None else None,
        retry=retry,
        engine=args.engine,
        collector=args.gc,
        gc_threshold=args.gc_threshold,
    )
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    if not trace_path and not profile:
        report = run_batch(args.paths, **run_kwargs)
    else:
        report = _batch_traced(args, run_kwargs, trace_path, profile)
    if args.json:
        print(canonical_json(report.to_json()))
    else:
        for file_report in report.reports:
            print(file_report.line())
        for line in report.summary().splitlines():
            print(f"-- {line}")
        if args.stats:
            for file_report in report.reports:
                if file_report.ok:
                    print(f"-- {file_report.path}: {canonical_dumps(file_report.stats)}")
    # The documented taxonomy, derived in one place (BatchReport.exit_code):
    # hard failure 1 > checker findings 4 > degraded/quarantined 3 > clean 0.
    return report.exit_code()


def _batch_traced(
    args: argparse.Namespace, run_kwargs: dict, trace_path, profile: bool
):
    """Run the batch under a driver tracer with a per-worker shard
    directory, then merge driver + worker shards into one causally
    ordered trace (written to ``--trace``; profiled with ``--profile``).
    Per-file profile summaries land on each report via its trace_id."""
    import tempfile

    from repro.batch import run_batch
    from repro.obs import JsonlSink, Tracer, activate
    from repro.obs.context import merge_traces
    from repro.obs.flight import recorder
    from repro.obs.profile import cache_stats, profile_report
    from repro.obs.sinks import read_trace

    with tempfile.TemporaryDirectory(prefix="repro-batch-trace-") as tmp:
        driver_shard = Path(tmp) / "driver-0000.jsonl"
        jsonl = JsonlSink.open(driver_shard)
        sinks: list = [jsonl]
        flight = recorder()
        if flight is not None:
            sinks.append(flight)
        try:
            with activate(Tracer(sinks=sinks)):
                report = run_batch(args.paths, trace=True, trace_dir=tmp, **run_kwargs)
        finally:
            jsonl.close()
        shard_paths = [driver_shard] + sorted(Path(tmp).glob("worker-*.jsonl"))
        shards = [list(read_trace(p)) for p in shard_paths]
        merged = merge_traces(shards, [p.stem for p in shard_paths])

    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as handle:
            for event in merged:
                handle.write(canonical_dumps(event, default=str) + "\n")
        print(f"wrote {len(merged)} event(s) to {trace_path}", file=sys.stderr)
    if profile:
        by_trace: dict[str, list] = {}
        for event in merged:
            trace_id = event.get("trace_id")
            if trace_id:
                by_trace.setdefault(trace_id, []).append(event)
        for file_report in report.reports:
            if file_report.trace_id:
                file_report.profile = cache_stats(
                    by_trace.get(file_report.trace_id, [])
                )
        print(profile_report(merged, total=len(merged)), end="", file=sys.stderr)
    return report


def _cmd_diff_snapshot(args: argparse.Namespace) -> int:
    """``repro diff snapshot CORPUS... --out DIR``: one canonical artifact
    per corpus file, through the supervised batch workers."""
    from repro.batch import BatchInputError
    from repro.diff.snapshot import snapshot_corpus

    store_root: str | None
    if args.no_store:
        store_root = None
    elif args.store:
        store_root = args.store
    else:
        first = Path(args.paths[0])
        base = first if first.is_dir() else first.parent
        store_root = str(base / ".repro-store")

    try:
        report = snapshot_corpus(
            args.paths,
            args.out,
            jobs=args.jobs,
            store_root=store_root,
            engine=args.engine,
            d=args.d,
            max_iterations=args.max_iterations,
            timeout_s=args.timeout_ms / 1000.0
            if args.timeout_ms is not None
            else None,
        )
    except BatchInputError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    failed = [r for r in report.reports if not r.ok]
    print(
        f"snapshotted {len(report.reports)} file(s) into {args.out}"
        + (f" ({len(failed)} failed; error artifacts written)" if failed else ""),
        file=sys.stderr,
    )
    # Failures are *recorded* (error artifacts the differ will surface),
    # so only infrastructure-level trouble is worth a nonzero exit here.
    return report.exit_code()


def _cmd_diff_compare(args: argparse.Namespace) -> int:
    """``repro diff compare BASE HEAD``: categorized artifact-tree diff.
    Exit 0 identical, 3 benign churn only, 4 gated regressions."""
    from repro.diff.compare import (
        CATEGORIES,
        DEFAULT_GATE,
        CompareError,
        compare_trees,
    )

    gate = DEFAULT_GATE
    if args.fail_on:
        unknown = sorted(set(args.fail_on) - set(CATEGORIES))
        if unknown:
            print(
                f"error: unknown categories: {', '.join(unknown)}; "
                f"known: {', '.join(CATEGORIES)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        gate = frozenset(args.fail_on)
    try:
        comparison = compare_trees(args.base, args.head, gate=gate)
    except CompareError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        print(canonical_json(comparison.to_json()))
    else:
        print(comparison.render(), end="")
    return comparison.exit_code()


def _cmd_diff_gen_corpus(args: argparse.Namespace) -> int:
    """``repro diff gen-corpus``: materialize (or verify) the generated
    corpus from the committed seed manifest."""
    from repro.diff.corpus import CorpusError, generate_corpus

    try:
        manifest = generate_corpus(args.out, count=args.count, force=args.force)
    except CorpusError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    print(f"{manifest['count']} generated program(s) in {args.out}")
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-answer analysis daemon until SIGTERM/SIGINT."""
    from repro.serve import serve

    return serve(
        host=args.host,
        port=args.port,
        store_root=args.store,
        default_deadline_ms=args.deadline_ms,
        quiet=not args.verbose,
        collector=args.gc,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the static checker over one or more programs."""
    from repro.check import REGISTRY, check_program

    if args.rules:
        print(REGISTRY.table(), end="")
        return EXIT_OK
    if not args.paths:
        print("error: no program given (paths, or source with -e)", file=sys.stderr)
        return EXIT_ERROR

    passes = args.passes or None
    reports = []
    parse_failures = 0
    for raw in args.paths:
        label = "<expr>" if args.expr else str(raw)
        try:
            source = raw if args.expr else Path(raw).read_text()
            program = parse_program(source)
        except (NmlError, OSError) as error:
            parse_failures += 1
            detail = error.format() if isinstance(error, NmlError) else str(error)
            if not args.json:
                print(f"{label}: error: {detail}", file=sys.stderr)
            reports.append({"path": label, "ok": False, "error": detail})
            continue
        report = check_program(program, passes=passes, path=label)
        reports.append(report)

    findings = 0
    if args.json:
        files = [r if isinstance(r, dict) else r.to_json() for r in reports]
        findings = sum(
            r["counts"]["error"] + len(r["pass_errors"])
            for r in files
            if "counts" in r
        )
        doc = {
            "ok": parse_failures == 0 and findings == 0,
            "files": files,
            "totals": {
                severity: sum(
                    r["counts"][severity] for r in files if "counts" in r
                )
                for severity in ("error", "warning", "hint")
            },
        }
        print(canonical_json(doc))
    else:
        for report in reports:
            if isinstance(report, dict):
                continue  # parse failure, already printed
            print(report.render(), end="")
            findings += len(report.errors) + len(report.pass_errors)
    if parse_failures:
        return EXIT_ERROR
    return EXIT_OK if findings == 0 else EXIT_FINDINGS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Escape Analysis on Lists (Park & Goldberg, PLDI 1992)",
        epilog=_EXIT_CODE_HELP,
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        help="where the always-on flight recorder auto-dumps its black box "
        "on degradation, quarantine, worker crash, or checker error "
        "(default: $REPRO_FLIGHT_DIR; no dumps when neither is set)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="evaluate a program")
    _add_program_arg(run_parser)
    run_parser.add_argument("--metrics", action="store_true", help="print storage counters")
    _add_gc_arg(run_parser)
    run_parser.add_argument("--gc-threshold", type=int, default=10_000)
    run_parser.add_argument(
        "--machine", action="store_true", help="run on the compiled abstract machine"
    )
    run_parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the storage-safety sanitizer (halts on unsound reuse/reclaim)",
    )
    _add_obs_args(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    report_parser = commands.add_parser("report", help="full analysis report")
    _add_program_arg(report_parser)
    report_parser.add_argument(
        "--stats",
        action="store_true",
        help="append query-session accounting (cache hits, iterations, steps)",
    )
    report_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    _add_engine_arg(report_parser)
    _add_obs_args(report_parser)
    report_parser.set_defaults(handler=_cmd_report)

    analyze_parser = commands.add_parser("analyze", help="escape tests")
    _add_program_arg(analyze_parser)
    analyze_parser.add_argument("--function", help="only this top-level function")
    analyze_parser.add_argument("--local", help="a call expression for the local test")
    analyze_parser.add_argument("--sharing", action="store_true", help="add Theorem 2 facts")
    analyze_parser.add_argument(
        "--stats",
        action="store_true",
        help="print query-session accounting (cache hits, iterations, steps)",
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="emit the results as JSON"
    )
    analyze_parser.add_argument(
        "--store",
        metavar="DIR",
        help="attach a persistent analysis store (SCC fixpoints shared across runs)",
    )
    _add_engine_arg(analyze_parser)
    _add_budget_args(analyze_parser)
    _add_obs_args(analyze_parser)
    analyze_parser.set_defaults(handler=_cmd_analyze)

    observe_parser = commands.add_parser("observe", help="ground-truth escapement")
    _add_program_arg(observe_parser)
    observe_parser.add_argument("function")
    observe_parser.add_argument("args", nargs="+", help="Python literals; @src for nml")
    observe_parser.add_argument("--index", "-i", type=int, default=1)
    observe_parser.add_argument(
        "--json", action="store_true", help="emit the observation as JSON"
    )
    observe_parser.set_defaults(handler=_cmd_observe)

    spines_parser = commands.add_parser("spines", help="Figure 1 for a list literal")
    spines_parser.add_argument("list", help="a Python list literal, e.g. '[[1,2],[3]]'")
    spines_parser.set_defaults(handler=_cmd_spines)

    disasm_parser = commands.add_parser("disasm", help="compiled machine code listing")
    _add_program_arg(disasm_parser)
    disasm_parser.set_defaults(handler=_cmd_disasm)

    optimize_parser = commands.add_parser("optimize", help="apply optimizations")
    _add_program_arg(optimize_parser)
    optimize_parser.add_argument("--reuse", metavar="F:I", help="reuse-specialize F's param I")
    optimize_parser.add_argument("--stack", action="store_true", help="stack-allocate the body call")
    optimize_parser.add_argument("--block", metavar="PRODUCER", help="block-allocate PRODUCER")
    optimize_parser.add_argument(
        "--validate",
        action="store_true",
        help="with --robust: re-run the optimized program under the sanitizer "
        "and discard the transforms if it misbehaves",
    )
    _add_engine_arg(optimize_parser)
    _add_budget_args(optimize_parser)
    _add_obs_args(optimize_parser)
    optimize_parser.set_defaults(handler=_cmd_optimize)

    trace_parser = commands.add_parser(
        "trace",
        help="emit a JSONL event trace of the analysis; also "
        "'trace merge SHARD... --out FILE' and 'trace validate FILE...'",
    )
    _add_program_arg(trace_parser)
    trace_parser.add_argument(
        "extra",
        nargs="*",
        help="for 'merge': shard files; for 'validate': trace files",
    )
    trace_parser.add_argument("--out", metavar="FILE", help="write here instead of stdout")
    trace_parser.add_argument(
        "--run", action="store_true", help="also execute the program under the tracer"
    )
    _add_gc_arg(trace_parser, help_prefix="with --run: ")
    trace_parser.add_argument(
        "--profile", action="store_true", help="print a profile report to stderr"
    )
    _add_engine_arg(trace_parser)
    trace_parser.set_defaults(handler=_cmd_trace)

    batch_parser = commands.add_parser(
        "batch", help="analyze a corpus of .nml files through a shared store"
    )
    batch_parser.add_argument(
        "paths", nargs="+", help="directories (searched for *.nml) and/or files"
    )
    batch_parser.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes (default: 1)"
    )
    batch_parser.add_argument(
        "--store",
        metavar="DIR",
        help="analysis store directory (default: <first path>/.repro-store)",
    )
    batch_parser.add_argument(
        "--no-store", action="store_true", help="run without a persistent store"
    )
    batch_parser.add_argument("--d", type=int, help="override the B_e chain bound d")
    batch_parser.add_argument(
        "--max-iterations", type=int, help="fixpoint iteration cap per solve"
    )
    batch_parser.add_argument(
        "--stats", action="store_true", help="print per-file session accounting"
    )
    batch_parser.add_argument(
        "--check",
        action="store_true",
        help="also run the static checker per file; diagnostic counts fold "
        "into the report (error findings exit 4)",
    )
    batch_parser.add_argument(
        "--json", action="store_true", help="emit the batch report as JSON"
    )
    batch_parser.add_argument(
        "--timeout-ms",
        type=float,
        help="per-file wall-clock timeout; a hung worker is killed and "
        "restarted (forces worker processes even with --jobs 1)",
    )
    batch_parser.add_argument(
        "--deadline-ms",
        type=float,
        help="per-file analysis deadline; a breach degrades that file to "
        "the sound W^tau answer (exit 3) instead of erroring",
    )
    batch_parser.add_argument(
        "--retries",
        type=int,
        help="attempts per file before quarantine (default: 3)",
    )
    batch_parser.add_argument(
        "--backoff-ms",
        type=float,
        default=20.0,
        help="base retry backoff (exponential, deterministic jitter; default: 20)",
    )
    batch_parser.add_argument(
        "--seed", type=int, default=0, help="jitter seed (default: 0)"
    )
    _add_gc_arg(
        batch_parser, help_prefix="also execute each file under this collector: "
    )
    batch_parser.add_argument(
        "--gc-threshold",
        type=int,
        default=256,
        help="with --gc: allocation-budget trigger per execution (default: 256)",
    )
    _add_engine_arg(batch_parser)
    _add_obs_args(batch_parser)
    batch_parser.set_defaults(handler=_cmd_batch)

    diff_parser = commands.add_parser(
        "diff",
        help="corpus-scale differential regression harness: snapshot a "
        "corpus to canonical artifacts, compare two snapshot trees, "
        "generate the seed-manifested corpus",
        epilog=_EXIT_CODE_HELP,
    )
    diff_commands = diff_parser.add_subparsers(dest="diff_command", required=True)

    snap_parser = diff_commands.add_parser(
        "snapshot", help="one canonical JSON artifact per corpus file"
    )
    snap_parser.add_argument(
        "paths", nargs="+", help="directories (searched for *.nml) and/or files"
    )
    snap_parser.add_argument(
        "--out", required=True, metavar="DIR", help="artifact tree destination"
    )
    snap_parser.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes (default: 1)"
    )
    snap_parser.add_argument(
        "--store",
        metavar="DIR",
        help="analysis store directory (default: <first path>/.repro-store)",
    )
    snap_parser.add_argument(
        "--no-store", action="store_true", help="run without a persistent store"
    )
    snap_parser.add_argument("--d", type=int, help="override the B_e chain bound d")
    snap_parser.add_argument(
        "--max-iterations", type=int, help="fixpoint iteration cap per solve"
    )
    snap_parser.add_argument(
        "--timeout-ms",
        type=float,
        help="per-file wall-clock timeout (forces worker processes)",
    )
    _add_engine_arg(snap_parser)
    snap_parser.set_defaults(handler=_cmd_diff_snapshot)

    compare_parser = diff_commands.add_parser(
        "compare",
        help="categorized diff of two snapshot trees "
        "(exit 0 identical, 3 benign churn, 4 gated regressions)",
    )
    compare_parser.add_argument("base", help="baseline snapshot directory")
    compare_parser.add_argument("head", help="head snapshot directory")
    compare_parser.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )
    compare_parser.add_argument(
        "--fail-on",
        action="append",
        metavar="CATEGORY",
        help="gate on this category instead of the default regression set "
        "(repeatable; e.g. --fail-on decision_lost --fail-on code_changed)",
    )
    compare_parser.set_defaults(handler=_cmd_diff_compare)

    gen_parser = diff_commands.add_parser(
        "gen-corpus",
        help="materialize the generated corpus from its seed manifest "
        "(or draw a fresh one with --force)",
    )
    gen_parser.add_argument(
        "--out",
        default="examples/generated",
        metavar="DIR",
        help="corpus directory (default: examples/generated)",
    )
    gen_parser.add_argument(
        "--count", type=int, default=200, help="distinct programs (default: 200)"
    )
    gen_parser.add_argument(
        "--force",
        action="store_true",
        help="draw a fresh corpus and rewrite the manifest instead of "
        "re-materializing the committed one",
    )
    gen_parser.set_defaults(handler=_cmd_diff_gen_corpus)

    explain_parser = commands.add_parser(
        "explain",
        help="reconstruct the causal chain behind one binding's result "
        "from a trace file",
    )
    # dest must not be "trace": _obs_scope would read the positional as
    # the --trace output flag and truncate the input file.
    explain_parser.add_argument(
        "trace_file",
        metavar="TRACE",
        help="a JSONL trace: an export, a merged batch trace, or "
        "a flight-recorder dump",
    )
    explain_parser.add_argument(
        "--binding", "-b", required=True, metavar="NAME",
        help="the binding (function) to explain",
    )
    explain_parser.add_argument(
        "--json", action="store_true", help="emit the schema-stable JSON form"
    )
    explain_parser.set_defaults(handler=_cmd_explain)

    serve_parser = commands.add_parser(
        "serve",
        help="the always-answer analysis daemon (HTTP/JSON; /metrics scrape)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8100, help="0 lets the OS pick (printed on start)"
    )
    serve_parser.add_argument(
        "--store",
        metavar="DIR",
        help="attach a persistent analysis store shared across requests",
    )
    serve_parser.add_argument(
        "--deadline-ms",
        type=float,
        help="default per-request analysis deadline (requests may override); "
        "a breach degrades to the sound W^tau answer, HTTP 200 with "
        '"degraded": true',
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    _add_gc_arg(
        serve_parser, help_prefix="default collector for validated optimize requests: "
    )
    _add_engine_arg(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    check_parser = commands.add_parser(
        "check",
        help="static checker: lint, optimization audit, machine verifier",
        epilog=_EXIT_CODE_HELP,
    )
    check_parser.add_argument(
        "paths",
        nargs="*",
        help="nml files to check (or source text with -e)",
    )
    check_parser.add_argument(
        "-e", "--expr", action="store_true", help="treat each PATH as source text"
    )
    check_parser.add_argument(
        "--pass",
        dest="passes",
        action="append",
        choices=["lint", "audit", "machine"],
        help="run only this pass (repeatable; default: all three)",
    )
    check_parser.add_argument(
        "--rules", action="store_true", help="print the rule table and exit"
    )
    check_parser.add_argument(
        "--json", action="store_true", help="emit the reports as JSON"
    )
    _add_engine_arg(check_parser)
    _add_obs_args(check_parser)
    check_parser.set_defaults(handler=_cmd_check)

    return parser


@contextmanager
def _engine_scope(args: argparse.Namespace):
    """Install ``--engine`` as the process default for one command.
    Commands without the flag (or without a value) run on the built-in
    default.  ``legacy`` warns: it survives as the differential-testing
    oracle, not as a supported production configuration."""
    engine = getattr(args, "engine", None)
    if engine is None:
        yield
        return
    if engine == "legacy":
        # Once per process, whoever gets there first — batch workers and
        # the driver share the same guard, so `--jobs 8` still warns once.
        from repro.escape.engine import warn_legacy_engine

        warn_legacy_engine()
    from repro.escape.engine import use_engine

    with use_engine(engine):
        yield


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _flight_scope(args) as flight, _engine_scope(args), _obs_scope(args):
            code = args.handler(args)
            if (
                code in (EXIT_DEGRADED, EXIT_FINDINGS)
                and flight.dump_dir is not None
                and not flight.dumps
            ):
                # Belt and braces: some degraded/finding exits surface
                # only in the code (no trigger event reached this
                # process) — dump the black box anyway.
                flight.dump(
                    flight.dump_dir / f"flight-exit-{code}.jsonl",
                    reason=f"exit-{code}",
                )
            return code
    except NmlError as error:
        print(f"error: {error.format()}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): exit quietly
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
