"""The in-place reuse optimization (§6, §A.3.2).

Given ``f`` whose ``i``-th parameter is a list with ``dᵢ`` spines of which
``escᵢ`` escape, a *reuse specialization* ``f'`` recycles the top-spine
cells of that parameter for the cons cells ``f`` builds: eligible
``cons e1 e2`` in the body become ``DCONS xᵢ e1 e2`` (destructive cons,
reusing ``xᵢ``'s first cell).  Safety requires

* the reused spines not to escape (escape analysis, §4), and
* the actual argument to be unshared there (sharing analysis, Theorem 2),

which is the *caller's* obligation: :func:`redirect_calls` switches a call
site from ``f`` to ``f'`` once those facts are established (that is how the
paper builds ``PS'`` from ``PS`` by calling ``APPEND'``).

A cons site is eligible when the donor parameter has no further use after
the cons finishes (:mod:`repro.opt.liveness`), and at most one site may be
rewritten per execution path — two DCONS on one path would recycle the same
donor cell twice.  Sites in opposite branches of an ``if`` are compatible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeResults
from repro.lang.ast import (
    App,
    Binding,
    Expr,
    If,
    Letrec,
    Prim,
    Program,
    Var,
    apply_n,
    clone,
    lambda_n,
    rename_var,
    transform,
    uncurry_app,
    uncurry_lambda,
    walk,
)
from repro.lang.errors import OptimizationError
from repro.opt.liveness import var_used_after


@dataclass
class ReuseResult:
    """Outcome of one reuse specialization."""

    program: Program
    function: str
    new_name: str
    param_index: int
    param_name: str
    rewritten_sites: int
    reusable_spines: int


def _is_saturated_cons(node: Expr) -> bool:
    if not isinstance(node, App):
        return False
    head, args = uncurry_app(node)
    return isinstance(head, Prim) and head.name == "cons" and len(args) == 2


def _parent_map(root: Expr) -> dict[int, Expr]:
    parents: dict[int, Expr] = {}
    for node in walk(root):
        for child in node.children():
            parents[child.uid] = node
    return parents


def _in_opposite_branches(a: Expr, b: Expr, parents: dict[int, Expr]) -> bool:
    """True iff some ``if`` has ``a`` in one branch and ``b`` in the other
    (so at most one of them evaluates per execution)."""

    def branch_chain(node: Expr) -> dict[int, str]:
        chain: dict[int, str] = {}
        current = node
        while current.uid in parents:
            parent = parents[current.uid]
            if isinstance(parent, If):
                if current is parent.then:
                    chain[parent.uid] = "then"
                elif current is parent.otherwise:
                    chain[parent.uid] = "else"
            current = parent
        return chain

    chain_a = branch_chain(a)
    chain_b = branch_chain(b)
    for if_uid, side in chain_a.items():
        other = chain_b.get(if_uid)
        if other is not None and other != side:
            return True
    return False


def _is_descendant(node: Expr, ancestor: Expr) -> bool:
    return any(child.uid == node.uid for child in walk(ancestor))


def select_reuse_sites(
    body: Expr, param: str, donor_type=None, unsafe: bool = False
) -> list[App]:
    """Eligible, pairwise path-disjoint cons sites for donor ``param``.

    Pre-order greedy: keep a site if the donor is dead after it, the list it
    builds has the donor's own type (a donor cell can only stand in for a
    cons cell of the same list type — ``dcons`` is typed), and it is neither
    nested in, nor on the same execution path as, a kept site.

    ``unsafe`` drops the liveness and path-disjointness gates (the typing
    gate stays — an ill-typed ``dcons`` would not even compile) and keeps
    *every* same-typed saturated cons site.  Only the injected-compiler-bug
    path (:class:`~repro.robust.faults.FaultPlan` ``unsound_reuse_at``)
    passes it: the point is to bake a genuinely unsound site selection into
    the program for the static auditor and the snapshot differ to catch.
    """
    parents = _parent_map(body)
    kept: list[App] = []
    for node in walk(body):
        if not _is_saturated_cons(node):
            continue
        if donor_type is not None and node.ty is not None and node.ty != donor_type:
            continue
        if unsafe:
            kept.append(node)
            continue
        if var_used_after(body, node.uid, param) is not False:
            continue
        compatible = True
        for existing in kept:
            if _is_descendant(node, existing) or _is_descendant(existing, node):
                compatible = False
                break
            if not _in_opposite_branches(node, existing, parents):
                compatible = False
                break
        if compatible:
            kept.append(node)
    return kept


def make_reuse_specialization(
    program: Program,
    function: str,
    param_index: int,
    new_name: str | None = None,
    analysis: EscapeResults | None = None,
    force: bool = False,
) -> ReuseResult:
    """Build ``f'`` — the §6 transformation — and return a new program with
    it appended as an extra top-level binding.

    Verifies (unless ``force``) that the donor parameter is a list with at
    least one non-escaping top spine, per the global escape test.
    """
    from repro.robust import faults

    new_name = new_name or f"{function}_reuse"
    if new_name in program.binding_names():
        raise OptimizationError(f"{new_name!r} already exists in the program")

    unsound = faults.take_unsound_reuse()
    if unsound:
        # Injected compiler bug: skip the escape gate below *and* the
        # liveness/path-disjointness site gates, producing a genuinely
        # unsound specialization for the static auditor to catch — even
        # when the escape facts alone would have licensed the decision.
        force = True

    analysis = analysis or EscapeAnalysis(program)
    test = analysis.global_test(function, param_index)
    if not force:
        if test.param_spines < 1:
            raise OptimizationError(
                f"parameter {param_index} of {function} is not a list "
                f"({test.param_type}); nothing to reuse"
            )
        if test.non_escaping_spines < 1:
            raise OptimizationError(
                f"every spine of parameter {param_index} of {function} may "
                f"escape ({test.result}); in-place reuse would be unsound"
            )

    binding = program.binding(function)
    cloned = clone(binding.expr)
    params, body = uncurry_lambda(cloned)
    if param_index > len(params):
        raise OptimizationError(
            f"{function} has {len(params)} parameters, no index {param_index}"
        )
    param = params[param_index - 1]

    # The specialization recurses into itself (APPEND' calls APPEND').
    body = rename_var(body, function, new_name)

    sites = select_reuse_sites(body, param, donor_type=test.param_type, unsafe=unsound)
    if not sites and not force:
        raise OptimizationError(
            f"no eligible cons site in {function} for donor {param!r} "
            "(the parameter is still live after every cons)"
        )
    site_uids = {site.uid for site in sites}

    def rewrite(node: Expr) -> Expr | None:
        if node.uid in site_uids and isinstance(node, App):
            head, args = uncurry_app(node)
            assert isinstance(head, Prim) and head.name == "cons"
            return apply_n(
                Prim(span=head.span, name="dcons"),
                Var(span=head.span, name=param),
                args[0],
                args[1],
                span=node.span,
            )
        return None

    new_body = transform(body, rewrite)
    new_binding = Binding(new_name, lambda_n(params, new_body, span=cloned.span))
    new_letrec = Letrec(
        span=program.letrec.span,
        bindings=program.bindings + (new_binding,),
        body=program.body,
    )
    return ReuseResult(
        program=Program(letrec=new_letrec, source=program.source),
        function=function,
        new_name=new_name,
        param_index=param_index,
        param_name=param,
        rewritten_sites=len(sites),
        reusable_spines=test.non_escaping_spines,
    )


def redirect_calls(
    program: Program,
    caller: str,
    callee: str,
    new_callee: str,
) -> Program:
    """Rewrite every application head ``callee`` inside ``caller``'s body to
    ``new_callee`` (the caller-side step of §6: switching a call to the
    reuse specialization once escape + sharing facts justify it)."""
    if new_callee not in program.binding_names():
        raise OptimizationError(f"{new_callee!r} is not defined in the program")
    binding = program.binding(caller)
    new_expr = rename_var(clone(binding.expr), callee, new_callee)
    new_bindings = tuple(
        Binding(b.name, new_expr if b.name == caller else b.expr, b.span)
        for b in program.bindings
    )
    return Program(
        letrec=Letrec(
            span=program.letrec.span, bindings=new_bindings, body=program.body
        ),
        source=program.source,
    )


def redirect_body_calls(program: Program, callee: str, new_callee: str) -> Program:
    """Rewrite applications of ``callee`` in the *program body* (the result
    expression) to ``new_callee``."""
    if new_callee not in program.binding_names():
        raise OptimizationError(f"{new_callee!r} is not defined in the program")
    new_body = rename_var(clone(program.body), callee, new_callee)
    return Program(
        letrec=Letrec(
            span=program.letrec.span, bindings=program.bindings, body=new_body
        ),
        source=program.source,
    )
