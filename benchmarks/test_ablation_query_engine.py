"""AB4 — ablation: the query engine (cached, SCC-scheduled solves).

§7 names fixpoint cost as the practicality risk.  The pre-refactor
analyzer re-inferred the program and re-solved the whole letrec fixpoint on
every query, so building one Appendix A global escape table repeated the
same work once per question.  The query engine (:mod:`repro.query`) keys
solves by stable fingerprints and solves the binding graph per strongly
connected component, so the table costs one fixpoint and six cache hits.

The acceptance gate asserted here: the full Appendix A table (``append``,
``split``, ``ps``, every parameter position) built through one
``AnalysisSession`` performs **at least 3× fewer** total fixpoint
iterations than the per-query baseline, and every lattice value is
bit-identical (checked row by row and, for the converged environments,
via the extensional ``fingerprint``).
"""

from repro.bench.tables import print_table
from repro.escape.abstract import fingerprint
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.types.types import INT, TFun, TList

#: Every (function, parameter) question of the Appendix A.1 table.
APPENDIX_A_QUERIES = [
    ("append", 1),
    ("append", 2),
    ("split", 1),
    ("split", 2),
    ("split", 3),
    ("split", 4),
    ("ps", 1),
]


def build_table_per_query(program):
    """The pre-refactor protocol: one fresh, single-use analysis per
    question — every query pays for a whole-program solve."""
    rows = []
    iterations = 0
    for name, i in APPENDIX_A_QUERIES:
        analysis = EscapeAnalysis(program)
        rows.append(analysis.global_test(name, i))
        iterations += analysis.stats.iterations
    return rows, iterations


def build_table_session(program):
    """The query-engine protocol: one session answers every question."""
    analysis = EscapeAnalysis(program)
    rows = [analysis.global_test(name, i) for name, i in APPENDIX_A_QUERIES]
    return rows, analysis.stats


def test_ab4_query_engine_builds_table_with_fewer_iterations(benchmark):
    program = paper_partition_sort()
    baseline_rows, baseline_iterations = build_table_per_query(program)
    session_rows, stats = build_table_session(program)

    # Row-by-row: identical lattice values out of both protocols.
    for base, cached in zip(baseline_rows, session_rows, strict=True):
        assert base.function == cached.function
        assert base.param_index == cached.param_index
        assert base.result == cached.result
        assert base.escaping_spines == cached.escaping_spines
        assert base.non_escaping_spines == cached.non_escaping_spines

    # Environment-by-environment: the session's converged abstract values
    # are extensionally bit-identical to a fresh single-use solve.
    fresh_solved = EscapeAnalysis(program).solve(None)
    session_solved = EscapeAnalysis(program).solve(None)
    for name in program.binding_names():
        ty = fresh_solved.program.binding(name).expr.ty
        assert fingerprint(
            session_solved.env[name], ty, session_solved.evaluator.chain
        ) == fingerprint(fresh_solved.env[name], ty, fresh_solved.evaluator.chain)

    # The acceptance gate: >= 3x fewer total fixpoint iterations.
    assert baseline_iterations >= 3 * stats.iterations
    # All but the first question are solve-cache hits.
    assert stats.solve_hits == len(APPENDIX_A_QUERIES) - 1
    assert stats.solve_misses == 1

    print_table(
        ["protocol", "fixpoint iterations", "solve hits", "solve misses"],
        [
            ["per-query (baseline)", baseline_iterations, 0, len(APPENDIX_A_QUERIES)],
            ["session (query engine)", stats.iterations, stats.solve_hits, stats.solve_misses],
        ],
        title="AB4: Appendix A table, per-query vs query engine",
    )

    benchmark(build_table_session, program)


def test_ab4_pinned_query_resolves_only_affected_sccs(benchmark):
    """A pinned query re-solves only the components the pin's types reach:
    ``copy`` pinned at ``int list list`` misses its own SCC and reuses the
    cached ``append`` and ``heads`` fixpoints verbatim."""
    program = prelude_program(["append", "heads", "copy"])
    analysis = EscapeAnalysis(program)
    analysis.solve(None)  # warm: all three singleton SCCs solved once

    deep = TFun(TList(TList(INT)), TList(TList(INT)))
    pinned = analysis.global_test("copy", 1, instance=deep)
    query = analysis.session.stats.last_query
    assert query.scc_hits == 2  # append + heads reused
    assert query.scc_misses == 1  # only copy's knot re-solved
    assert analysis.last_solved is not None and analysis.last_solved.d == 2

    # The cached answer is identical to a fresh single-use analysis.
    fresh = EscapeAnalysis(program).global_test("copy", 1, instance=deep)
    assert pinned.result == fresh.result
    assert pinned.escaping_spines == fresh.escaping_spines

    # Asking again is a pure solve-cache hit: zero fixpoint iterations.
    analysis.global_test("copy", 1, instance=deep)
    assert analysis.session.stats.last_query.iterations == 0

    benchmark(analysis.global_test, "copy", 1, instance=deep)
