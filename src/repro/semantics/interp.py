"""The standard semantics: a strict, environment-based interpreter with an
instrumented heap.

This is the "certain implementation that uses a stack and a heap and uses
aliasing, rather than copying, of aggregate objects" that §3.3 says the
escape analysis targets.  Lists are aliased cons cells; ``dcons`` mutates
them; optimizer annotations direct individual ``cons`` sites into stack or
block regions; and a mark–sweep collector can run at allocation safepoints.

Region protocol (used by the optimizers in :mod:`repro.opt`):

* an expression annotated ``annotations["region"] = {"kind": "stack"|
  "block", "label": ...}`` opens a region before it evaluates and closes it
  (freeing all cells placed there) right after its value is computed —
  with an escape check that raises
  :class:`~repro.lang.errors.UseAfterFreeError` if the value still needs a
  freed cell;
* a ``cons`` site annotated ``annotations["alloc"] = "region"`` allocates
  into the innermost open region.
"""

from __future__ import annotations

import sys
from typing import Iterable

from repro.lang.ast import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
)
from repro.lang.errors import EvalError
from repro.lang.parser import parse_expr
from repro.obs import tracer as obs
from repro.robust import faults
from repro.semantics.gc import make_collector
from repro.semantics.heap import AllocKind, Heap, StorageSanitizer
from repro.semantics.metrics import StorageMetrics
from repro.semantics.values import (
    FALSE,
    NIL,
    TRUE,
    Env,
    Value,
    VBool,
    VClosure,
    VCons,
    VInt,
    VNil,
    VPrim,
    VTuple,
    expect_int,
)

class Interpreter:
    """Evaluates nml programs over the instrumented heap.

    ``auto_gc`` runs the collector at application safepoints once the live
    heap exceeds ``gc_threshold`` cells; leave it off for precise
    allocation-count experiments and on for GC-work experiments.
    """

    def __init__(
        self,
        gc_threshold: int = 10_000,
        auto_gc: bool = False,
        recursion_limit: int = 100_000,
        sanitize: bool = False,
        collector: str = "mark-sweep",
        liveness: "dict[str, int | None] | None" = None,
    ):
        self.metrics = StorageMetrics()
        #: opt-in storage-safety sanitizer: detects use-after-reuse through
        #: stale dcons aliases, reads of region-reclaimed cells, and
        #: reclamation of cells still reachable from live roots
        self.sanitizer = StorageSanitizer() if sanitize else None
        self.heap = Heap(self.metrics, sanitizer=self.sanitizer)
        self.gc = make_collector(
            collector, self.heap, threshold=gc_threshold, budgets=liveness
        )
        self.auto_gc = auto_gc
        self.recursion_limit = recursion_limit
        # GC roots: the envs of all active eval frames plus the temporary
        # values Python-stack frames are holding across nested evaluation.
        self._env_stack: list[Env] = []
        self._temp_roots: list[Value] = []

    # -- entry points -----------------------------------------------------

    def run(self, program: Program) -> Value:
        """Evaluate the whole program (its top-level letrec)."""
        with obs.span("run"):
            return self._with_recursion_limit(
                lambda: self.eval(program.letrec, Env())
            )

    def eval_in(self, program: Program, expr: "Expr | str") -> Value:
        """Evaluate ``expr`` with the program's top-level bindings in scope."""
        body = parse_expr(expr) if isinstance(expr, str) else expr
        letrec = Letrec(bindings=program.bindings, body=body)
        return self._with_recursion_limit(lambda: self.eval(letrec, Env()))

    def _with_recursion_limit(self, thunk):
        previous = sys.getrecursionlimit()
        sys.setrecursionlimit(max(previous, self.recursion_limit))
        try:
            return thunk()
        finally:
            sys.setrecursionlimit(previous)

    # -- roots / safepoints -------------------------------------------------

    def roots(self) -> Iterable["Value | Env"]:
        yield from self._env_stack
        yield from self._temp_roots

    def _safepoint(self) -> None:
        if faults.take_forced_gc():
            # Injected adversarial GC: collect with the true root set, so a
            # sound engine survives it and an unsound one trips a sanitizer.
            self.gc.collect(self.roots())
        if self.auto_gc:
            self.gc.maybe_collect(self.roots())

    # -- the evaluator ---------------------------------------------------------

    def eval(self, expr: Expr, env: Env) -> Value:
        self.metrics.eval_steps += 1

        region_spec = expr.annotations.get("region")
        if region_spec is not None:
            kind = AllocKind.STACK if region_spec.get("kind") == "stack" else AllocKind.BLOCK
            region = self.heap.open_region(kind, label=region_spec.get("label", ""))
            try:
                result = self._eval_core(expr, env)
            except BaseException:
                self.heap.close_region(region)
                raise
            live_roots = (
                [result, *self.roots()] if self.sanitizer is not None else None
            )
            self.heap.close_region(region, escaping=result, live_roots=live_roots)
            return result
        return self._eval_core(expr, env)

    def _eval_core(self, expr: Expr, env: Env) -> Value:
        if isinstance(expr, IntLit):
            return VInt(expr.value)
        if isinstance(expr, BoolLit):
            return TRUE if expr.value else FALSE
        if isinstance(expr, NilLit):
            return NIL
        if isinstance(expr, Prim):
            return VPrim(expr)
        if isinstance(expr, Var):
            return env.lookup(expr.name)
        if isinstance(expr, Lambda):
            return VClosure(expr, env)
        if isinstance(expr, If):
            cond = self.eval(expr.cond, env)
            if not isinstance(cond, VBool):
                raise EvalError(f"if condition is not a bool: {cond}", expr.cond.span)
            branch = expr.then if cond.value else expr.otherwise
            return self.eval(branch, env)
        if isinstance(expr, Letrec):
            return self._eval_letrec(expr, env)
        if isinstance(expr, App):
            return self._eval_app(expr, env)
        raise EvalError(f"cannot evaluate {type(expr).__name__}", expr.span)

    def _eval_app(self, expr: App, env: Env) -> Value:
        self._safepoint()
        self._env_stack.append(env)
        try:
            fn_value = self.eval(expr.fn, env)
            self._temp_roots.append(fn_value)
            try:
                arg_value = self.eval(expr.arg, env)
                self._temp_roots.append(arg_value)
                try:
                    return self.apply(fn_value, arg_value, expr)
                finally:
                    self._temp_roots.pop()
            finally:
                self._temp_roots.pop()
        finally:
            self._env_stack.pop()

    def _eval_letrec(self, expr: Letrec, env: Env) -> Value:
        # The frame dict is shared (not copied) so closures created while
        # filling it see every binding — that is the recursive knot.
        frame: dict[str, Value] = {}
        inner = Env(env, frame)
        self._env_stack.append(inner)
        try:
            for binding in expr.bindings:
                if isinstance(binding.expr, Lambda):
                    frame[binding.name] = VClosure(binding.expr, inner, binding.name)
                else:
                    frame[binding.name] = self.eval(binding.expr, inner)
            return self.eval(expr.body, inner)
        finally:
            self._env_stack.pop()

    # -- application ----------------------------------------------------------

    def apply(self, fn_value: Value, arg: Value, node: App | None = None) -> Value:
        self.metrics.applications += 1
        if isinstance(fn_value, VClosure):
            call_env = fn_value.env.bind(fn_value.lam.param, arg)
            self._env_stack.append(call_env)
            try:
                return self.eval(fn_value.lam.body, call_env)
            finally:
                self._env_stack.pop()
        if isinstance(fn_value, VPrim):
            args = fn_value.args + (arg,)
            if len(args) < fn_value.prim.arity:
                return VPrim(fn_value.prim, args)
            return self._exec_prim(fn_value.prim, args, node)
        raise EvalError(
            f"cannot apply non-function {fn_value}", node.span if node else None
        )

    def _exec_prim(self, prim: Prim, args: tuple[Value, ...], node: App | None) -> Value:
        from repro.semantics.prims import exec_prim

        return exec_prim(self.heap, prim, args, node.span if node else None)

    # -- Python interop -----------------------------------------------------------

    def from_python(self, obj) -> Value:
        """Build an nml value from nested Python ints/bools/lists.

        List cells are ordinary heap allocations (they show up in the
        metrics; snapshot before/after if you need to exclude them).
        """
        if isinstance(obj, bool):
            return TRUE if obj else FALSE
        if isinstance(obj, int):
            return VInt(obj)
        if isinstance(obj, tuple):
            if len(obj) < 2:
                raise EvalError("tuples need at least two components")
            result = self.from_python(obj[-1])
            for item in reversed(obj[:-1]):
                result = VTuple(self.from_python(item), result)
            return result
        if isinstance(obj, list):
            result: Value = NIL
            for item in reversed(obj):
                result = VCons(self.heap.allocate(self.from_python(item), result))
            return result
        raise EvalError(f"cannot convert {type(obj).__name__} to an nml value")

    def to_python(self, value: Value):
        """Convert ints, bools and (nested) lists back to Python."""
        if isinstance(value, VInt):
            return value.value
        if isinstance(value, VBool):
            return value.value
        if isinstance(value, VNil):
            return []
        if isinstance(value, VTuple):
            return (self.to_python(value.fst), self.to_python(value.snd))
        if isinstance(value, VCons):
            items = []
            current: Value = value
            while isinstance(current, VCons):
                items.append(self.to_python(self.heap.read_car(current.cell)))
                current = self.heap.read_cdr(current.cell)
            if not isinstance(current, VNil):
                raise EvalError(f"improper list tail {current}")
            return items
        raise EvalError(f"cannot convert {value} to Python")


def run_program(program: Program, **kwargs) -> tuple[object, StorageMetrics]:
    """Convenience: run a program, return (python result, metrics)."""
    interp = Interpreter(**kwargs)
    value = interp.run(program)
    return interp.to_python(value), interp.metrics
