"""P1 — §5, Theorem 1: polymorphic invariance across instances.

For each polymorphic prelude function, the non-escaping spine prefix
``s_i − k`` must be identical at every monomorphic instance (spine counts
0, 1, 2 and a function type).
"""

from repro.bench.tables import print_table
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.poly import check_invariance
from repro.lang.prelude import prelude_program

FUNCTIONS = ["append", "rev", "map", "take", "drop", "copy", "length", "concat"]


def test_p1_invariance_table(benchmark):
    def run_all():
        reports = {}
        for name in FUNCTIONS:
            analysis = EscapeAnalysis(prelude_program([name]))
            reports[name] = check_invariance(analysis, name)
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, report in reports.items():
        n_instances = len({str(row.instance) for row in report.rows})
        params = max(row.param_index for row in report.rows)
        summaries = {}
        for i in range(1, params + 1):
            observations = report.rows_for_param(i)
            if all(row.nothing_escapes for row in observations):
                # Theorem 1's first disjunct: <0,0> at every instance.
                summaries[i] = "<0,0> everywhere"
            else:
                values = sorted({row.non_escaping for row in observations})
                # second disjunct: one prefix value across all instances
                assert len(values) == 1, (name, i, values)
                summaries[i] = f"prefix {values[0]}"
        rows.append(
            [name, n_instances, params,
             "; ".join(f"i={i}: {v}" for i, v in summaries.items()),
             "holds" if report.holds else "VIOLATED"]
        )
        assert report.holds, name

    print_table(
        ["function", "instances", "params", "non-escaping prefix per param", "Theorem 1"],
        rows,
        title="§5 polymorphic invariance",
    )


def test_p1_single_function_latency(benchmark):
    analysis = EscapeAnalysis(prelude_program(["append"]))
    report = benchmark(check_invariance, analysis, "append")
    assert report.holds
