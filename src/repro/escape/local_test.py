"""The local escape test ``L(f, i, e₁, …, eₙ, env_e)`` (§4.2).

Local analysis refines the global result for a *particular call*: instead of
the worst-case functional behaviour ``W^{τᵢ}``, each argument position gets
the actual abstract function component of its argument expression,
``(E⟦eⱼ⟧env_e)₍₂₎``, while the containment component still marks only the
interesting argument (``⟨1,sᵢ⟩`` vs ``⟨0,0⟩``).
"""

from __future__ import annotations

from repro.escape.abstract import AbstractEvaluator
from repro.escape.domain import EscapeValue
from repro.escape.lattice import Escapement, NONE_ESCAPES
from repro.escape.results import EscapeTestResult
from repro.lang.errors import AnalysisError
from repro.obs import tracer as obs
from repro.types.types import Type, spines


def run_local_test(
    evaluator: AbstractEvaluator,
    fn_value: EscapeValue,
    function: str,
    arg_values: list[EscapeValue],
    arg_types: list[Type],
    i: int,
) -> EscapeTestResult:
    """Compute ``L(f, i, e₁…eₙ)`` from the evaluated argument values.

    ``arg_values[j]`` must be ``E⟦eⱼ⟧env_e`` — only its function component
    is used, per the paper's ``zⱼ = ⟨⟨·,·⟩, (E⟦eⱼ⟧env_e)₍₂₎⟩``.
    """
    n = len(arg_values)
    if n == 0:
        raise AnalysisError("local test needs at least one argument")
    if len(arg_types) != n:
        raise AnalysisError("arg_values and arg_types must align")
    if not 1 <= i <= n:
        raise AnalysisError(f"parameter index {i} out of range 1..{n}")

    result = fn_value
    for j, (value, arg_type) in enumerate(zip(arg_values, arg_types), start=1):
        if j == i:
            be = Escapement(1, spines(arg_type))
        else:
            be = NONE_ESCAPES
        result = result.apply(EscapeValue(be, value.fn))

    interesting_type = arg_types[i - 1]
    outcome = EscapeTestResult(
        function=function,
        param_index=i,
        param_spines=spines(interesting_type),
        param_type=interesting_type,
        result=evaluator.chain.check(result.be),
        kind="local",
    )
    obs.emit(
        "escape_test",
        kind="local",
        function=function,
        param=i,
        result=str(outcome.result),
    )
    return outcome
