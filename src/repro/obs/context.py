"""Trace context propagation: one trace identity across processes.

A :class:`TraceContext` names *one causal chain* — a serve request, or
one file of a batch run — with a 128-bit ``trace_id``, the 64-bit
``span_id`` of the current hop, and the parent hop's span id.  The
format follows the W3C ``traceparent`` header
(``00-<32 hex trace_id>-<16 hex span_id>-01``) so external callers can
hand the daemon a context and correlate our trace with theirs.

The context is *ambient*: :func:`attach` installs one for a scope, and
the :class:`~repro.obs.tracer.Tracer` stamps every event it emits with
the current ``trace_id`` and ``hop`` count.  The hop count increases by
one per :meth:`TraceContext.child` — driver → worker → nested stage —
which is what lets :func:`merge_traces` order per-process JSONL shards
causally without synchronized clocks: within one trace, the driver-side
events (hop 0) sort before the worker-side events (hop 1) they caused.

This module deliberately does not import the tracer (the tracer imports
*us*); it only owns the identity and its serialized forms.
"""

from __future__ import annotations

import json
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

#: The only version of the traceparent format we mint or accept.
TRACEPARENT_VERSION = "00"

_HEX = set("0123456789abcdef")


def _hex_id(bits: int) -> str:
    return uuid.uuid4().hex[: bits // 4]


def _is_hex(text: str, length: int) -> bool:
    # All-zero ids are invalid per the traceparent spec.
    return (
        len(text) == length
        and set(text) <= _HEX
        and any(c != "0" for c in text)
    )


@dataclass(frozen=True)
class TraceContext:
    """One hop of one causal chain: ``trace_id`` names the chain,
    ``span_id`` this hop, ``parent_id`` the hop that caused it."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    hop: int = 0

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context (hop 0, no parent)."""
        return cls(trace_id=_hex_id(128), span_id=_hex_id(64))

    def child(self) -> "TraceContext":
        """The next hop of the same trace: new span id, this hop as the
        parent, hop count bumped — the id a driver hands a worker."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_hex_id(64),
            parent_id=self.span_id,
            hop=self.hop + 1,
        )

    # -- wire formats -------------------------------------------------------

    def to_traceparent(self) -> str:
        """The W3C-style header value ``00-<trace_id>-<span_id>-01``."""
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext | None":
        """Parse a ``traceparent`` header into the *caller's* context, or
        ``None`` when the header is absent or malformed (a bad header
        must never fail a request — we just mint a fresh trace)."""
        if not header:
            return None
        parts = header.strip().lower().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, _flags = parts
        if version != TRACEPARENT_VERSION:
            return None
        if not _is_hex(trace_id, 32) or not _is_hex(span_id, 16):
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    def to_wire(self) -> dict:
        """A picklable/JSON-able dict for the supervised-worker Pipe."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "hop": self.hop,
        }

    @classmethod
    def from_wire(cls, wire: dict | None) -> "TraceContext | None":
        if not wire:
            return None
        return cls(
            trace_id=wire["trace_id"],
            span_id=wire["span_id"],
            parent_id=wire.get("parent_id"),
            hop=int(wire.get("hop", 0)),
        )


# -- the ambient context ------------------------------------------------------
#
# Thread-local, not a module global: the serve daemon handles concurrent
# requests on separate threads, each with its own trace identity.

_state = threading.local()


def current() -> TraceContext | None:
    """The ambient context, or ``None`` outside any :func:`attach` scope."""
    return getattr(_state, "ctx", None)


@contextmanager
def attach(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` as the ambient context for a scope (scopes nest;
    attaching ``None`` explicitly clears the context)."""
    previous = getattr(_state, "ctx", None)
    _state.ctx = ctx
    try:
        yield ctx
    finally:
        _state.ctx = previous


# -- shard merging ------------------------------------------------------------


def merge_traces(
    shards: Sequence[Iterable[dict]],
    labels: Sequence[str] | None = None,
) -> list[dict]:
    """Merge per-process event shards into one schema-valid, causally
    ordered trace.

    Ordering is *causal*, not wall-clock: per-process clocks are not
    comparable, but hop counts are — within one trace, lower hops
    (the driver events that caused the work) sort before higher hops
    (the worker events they caused), and within one hop the shard's own
    emission order is preserved.  Distinct traces keep the order in
    which they first appear across the shards.  Each merged event is
    re-sequenced (``seq`` 0..n-1) with its original position preserved
    as ``src_seq`` and its origin shard as ``shard``.
    """
    if labels is not None and len(labels) != len(shards):
        raise ValueError("labels must match shards one-to-one")
    trace_order: dict[str, int] = {}
    keyed: list[tuple[tuple, dict]] = []
    for shard_index, shard in enumerate(shards):
        label = labels[shard_index] if labels else f"shard-{shard_index}"
        for position, event in enumerate(shard):
            trace_id = event.get("trace_id", "")
            if trace_id not in trace_order:
                trace_order[trace_id] = len(trace_order)
            key = (
                trace_order[trace_id],
                event.get("hop", 0),
                shard_index,
                position,
            )
            keyed.append((key, dict(event, shard=label)))
    keyed.sort(key=lambda pair: pair[0])
    merged = []
    for seq, (_, event) in enumerate(keyed):
        event["src_seq"] = event.get("seq", seq)
        event["seq"] = seq
        merged.append(event)
    return merged


def merge_trace_files(paths: Sequence, out_path) -> int:
    """Merge JSONL shard files into ``out_path``; returns the merged
    event count.  Shards are labelled by file stem."""
    from .sinks import read_trace

    shards = []
    labels = []
    for path in paths:
        shards.append(read_trace(path))
        stem = getattr(path, "stem", None)
        labels.append(stem if stem is not None else str(path).rsplit("/", 1)[-1])
    merged = merge_traces(shards, labels)
    with open(out_path, "w", encoding="utf-8") as handle:
        for event in merged:
            handle.write(json.dumps(event) + "\n")
    return len(merged)
