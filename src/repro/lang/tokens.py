"""Token definitions for the nml lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.errors import SourceSpan


class TokenKind(enum.Enum):
    """Every lexical category of nml."""

    INT = "int"
    IDENT = "ident"

    # keywords
    IF = "if"
    THEN = "then"
    ELSE = "else"
    LETREC = "letrec"
    LET = "let"
    IN = "in"
    LAMBDA = "lambda"
    TRUE = "true"
    FALSE = "false"
    NIL = "nil"
    AND_KW = "and"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    EQ = "="
    EQEQ = "=="
    NEQ = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    DOT = "."
    COLONCOLON = "::"
    ARROW = "->"

    EOF = "eof"


#: Reserved words, mapped to their token kinds.
KEYWORDS: dict[str, TokenKind] = {
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "letrec": TokenKind.LETREC,
    "let": TokenKind.LET,
    "in": TokenKind.IN,
    "lambda": TokenKind.LAMBDA,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "nil": TokenKind.NIL,
    "and": TokenKind.AND_KW,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source location.

    ``value`` is the integer value for INT tokens and the identifier text
    for IDENT tokens; other kinds leave it as the raw lexeme.
    """

    kind: TokenKind
    text: str
    span: SourceSpan
    value: int | str | None = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
