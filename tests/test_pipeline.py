"""Pipeline recipes: the paper's PS', PS'', REV' and the generic driver —
with differential correctness and storage-improvement assertions."""

import pytest

from repro.bench.workloads import literal, random_int_list, reference_ps, reference_rev
from repro.lang.prelude import prelude_program
from repro.opt.pipeline import (
    auto_reuse,
    paper_block_allocated,
    paper_ps_double_prime,
    paper_ps_prime,
    paper_rev_prime,
    paper_stack_allocated,
)
from repro.semantics.interp import run_program


class TestPsPrime:
    def test_correct_on_paper_input(self):
        result, _ = run_program(paper_ps_prime().program)
        assert result == [1, 2, 3, 4, 5, 7]

    def test_reuses_cells_and_reduces_heap(self):
        _, baseline = run_program(prelude_program(["ps"], "ps [5, 2, 7, 1, 3, 4]"))
        _, optimized = run_program(paper_ps_prime().program)
        assert optimized.reused > 0
        assert optimized.heap_allocs < baseline.heap_allocs
        assert optimized.cells_constructed == baseline.heap_allocs

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_correct_on_random_inputs(self, seed):
        values = random_int_list(25, seed=seed)
        result, _ = run_program(paper_ps_prime(f"ps {literal(values)}").program)
        assert result == reference_ps(values)


class TestPsDoublePrime:
    def test_correct_on_paper_input(self):
        result, _ = run_program(paper_ps_double_prime().program)
        assert result == [1, 2, 3, 4, 5, 7]

    def test_strictly_better_than_ps_prime(self):
        _, prime = run_program(paper_ps_prime().program)
        _, double = run_program(paper_ps_double_prime().program)
        assert double.reused > prime.reused
        assert double.heap_allocs < prime.heap_allocs

    @pytest.mark.parametrize("seed", [4, 5])
    def test_correct_on_random_inputs(self, seed):
        values = random_int_list(20, seed=seed)
        result, _ = run_program(paper_ps_double_prime(f"ps {literal(values)}").program)
        assert result == reference_ps(values)


class TestRevPrime:
    def test_correct(self):
        result, _ = run_program(paper_rev_prime().program)
        assert result == [5, 4, 3, 2, 1]

    def test_near_total_reuse(self):
        # naive reverse allocates Θ(n²) cells; REV' recycles almost all of
        # them, leaving only the per-level singleton [car l].
        n = 10
        values = list(range(n))
        _, baseline = run_program(prelude_program(["rev"], f"rev {literal(values)}"))
        _, optimized = run_program(paper_rev_prime(f"rev {literal(values)}").program)
        assert optimized.heap_allocs + optimized.reused == baseline.heap_allocs
        # all but the n singleton allocations (and the literal) are reused
        assert optimized.heap_allocs <= 2 * n
        assert baseline.heap_allocs >= n * (n - 1) // 2

    @pytest.mark.parametrize("seed", [6, 7])
    def test_correct_on_random_inputs(self, seed):
        values = random_int_list(30, seed=seed)
        result, _ = run_program(paper_rev_prime(f"rev {literal(values)}").program)
        assert result == reference_rev(values)


class TestStackAndBlockRecipes:
    def test_paper_stack_allocated(self):
        result = paper_stack_allocated()
        output, metrics = run_program(result.program)
        assert output == [1, 2, 3, 4, 5, 7]
        assert metrics.stack_reclaimed == 6

    def test_paper_block_allocated(self):
        result = paper_block_allocated(9)
        output, metrics = run_program(result.program)
        assert output == list(range(1, 10))
        assert metrics.block_reclaimed == 9


class TestAutoReuse:
    def test_adds_specializations_for_reusable_params(self, partition_sort):
        result = auto_reuse(partition_sort)
        names = result.program.binding_names()
        assert "append_reuse1" in names
        assert "ps_reuse1" in names
        assert len(result.steps) >= 2

    def test_auto_reuse_program_still_runs(self, partition_sort):
        result = auto_reuse(partition_sort)
        assert run_program(result.program)[0] == [1, 2, 3, 4, 5, 7]

    def test_steps_are_descriptive(self, partition_sort):
        result = auto_reuse(partition_sort)
        assert all("->" in step for step in result.steps)
