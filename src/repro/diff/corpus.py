"""Materialize the property suite's program distribution into a corpus.

``tests/strategies.py`` already defines the generator of well-typed list
programs the differential suites draw from; this module freezes ~200 of
its draws into ``examples/generated/`` so two *revisions* can be compared
over the same inputs.  Determinism is belt-and-braces:

* each program is drawn from a **committed seed** (the manifest records
  ``{seed, file, sha256}`` per program), and
* regeneration **verifies the sha256** of every materialized file, so a
  hypothesis upgrade that silently changes the seed→program mapping fails
  loudly instead of quietly snapshotting a different corpus.

The generator lives in the test tree, so the import is lazy and failure
is a clear CLI error, not a stack trace.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.canonical import canonical_bytes

#: Bumped when the manifest layout changes.
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "MANIFEST.json"

#: How many distinct programs ``gen-corpus`` collects by default.
DEFAULT_COUNT = 200

#: Give up after this many seeds without reaching ``count`` unique
#: programs (duplicate draws are expected; an infinite loop is not).
MAX_SEED_FACTOR = 50


class CorpusError(RuntimeError):
    """Corpus generation or verification failed."""


class CorpusDriftError(CorpusError):
    """Materialized programs no longer match the committed manifest —
    the seed→program mapping changed under us (hypothesis upgrade?)."""


def _strategies():
    try:
        from tests.strategies import materialize_program
    except ImportError as error:  # pragma: no cover - environment-dependent
        raise CorpusError(
            "corpus generation needs the test suite's program generator "
            "(tests/strategies.py) and hypothesis on the path; run from a "
            f"repo checkout with PYTHONPATH including the repo root ({error})"
        ) from error
    return materialize_program


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _draw_text(materialize, seed: int) -> "str | None":
    """One seed's program as pretty-printed source, ``None`` if the draw
    fails (hypothesis marks some prefixes invalid; we just move on)."""
    from repro.lang.pretty import pretty_program

    try:
        program, _values = materialize(seed)
        return pretty_program(program)
    except Exception:
        return None


def load_manifest(corpus_dir: "str | Path") -> "dict | None":
    path = Path(corpus_dir) / MANIFEST_NAME
    if not path.is_file():
        return None
    manifest = json.loads(path.read_text())
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise CorpusError(
            f"{path}: manifest schema {manifest.get('schema')} != "
            f"{MANIFEST_SCHEMA}"
        )
    return manifest


def materialize_manifest(corpus_dir: "str | Path", manifest: dict) -> list[Path]:
    """Re-draw every program the manifest records and write it out,
    verifying each sha256.  Raises :class:`CorpusDriftError` naming every
    drifted entry (all of them, not just the first — drift is a
    diagnosis, not a traceback)."""
    materialize = _strategies()
    out = Path(corpus_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    drifted: list[str] = []
    for entry in manifest["programs"]:
        text = _draw_text(materialize, entry["seed"])
        digest = _sha256(text) if text is not None else "<draw failed>"
        if digest != entry["sha256"]:
            drifted.append(
                f"{entry['file']} (seed {entry['seed']}): "
                f"expected {entry['sha256'][:12]}, got {digest[:12]}"
            )
            continue
        target = out / entry["file"]
        target.write_text(text)
        written.append(target)
    if drifted:
        raise CorpusDriftError(
            "generated corpus drifted from its manifest; the seed->program "
            "mapping changed (hypothesis or strategy update?). Regenerate "
            "with --force and re-baseline:\n  " + "\n  ".join(drifted)
        )
    return written


def generate_corpus(
    corpus_dir: "str | Path",
    count: int = DEFAULT_COUNT,
    start_seed: int = 0,
    force: bool = False,
) -> dict:
    """Grow ``corpus_dir`` with ``count`` distinct generated programs.

    With an existing manifest (and not ``force``), this *re-materializes*
    the committed corpus instead of drawing a new one — the reproducible
    path CI takes.  Returns the manifest.
    """
    out = Path(corpus_dir)
    existing = None if force else load_manifest(out)
    if existing is not None:
        materialize_manifest(out, existing)
        return existing

    materialize = _strategies()
    out.mkdir(parents=True, exist_ok=True)
    seen: set[str] = set()
    programs: list[dict] = []
    seed = start_seed
    limit = start_seed + count * MAX_SEED_FACTOR
    while len(programs) < count and seed < limit:
        text = _draw_text(materialize, seed)
        seed += 1
        if text is None:
            continue
        digest = _sha256(text)
        if digest in seen:
            continue
        seen.add(digest)
        name = f"gen-{len(programs):04d}.nml"
        (out / name).write_text(text)
        programs.append({"seed": seed - 1, "file": name, "sha256": digest})
    if len(programs) < count:
        raise CorpusError(
            f"only {len(programs)} distinct programs in {limit - start_seed} "
            f"seeds; wanted {count}"
        )
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "count": len(programs),
        "programs": programs,
    }
    (out / MANIFEST_NAME).write_bytes(canonical_bytes(manifest))
    return manifest
