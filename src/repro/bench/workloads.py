"""Workload generators for the benchmark harness.

Deterministic (seeded) random lists and the nml program variants the
benches compare: baseline partition sort / reverse versus their optimized
forms, at a range of sizes.
"""

from __future__ import annotations

import random

from repro.lang.ast import Program
from repro.lang.prelude import prelude_program


def random_int_list(n: int, seed: int = 0, lo: int = 0, hi: int = 1000) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(n)]


def random_nested_list(
    rows: int, row_len: int, seed: int = 0, lo: int = 0, hi: int = 1000
) -> list[list[int]]:
    rng = random.Random(seed)
    return [[rng.randint(lo, hi) for _ in range(row_len)] for _ in range(rows)]


def literal(values) -> str:
    """Render a (nested) Python list as an nml list literal."""
    if isinstance(values, (list, tuple)):
        return "[" + ", ".join(literal(v) for v in values) + "]"
    if isinstance(values, bool):
        return "true" if values else "false"
    return str(values)


def ps_program(values: list[int]) -> Program:
    """Baseline partition sort applied to a literal list."""
    return prelude_program(["ps"], f"ps {literal(values)}")


def rev_program(values: list[int]) -> Program:
    """Baseline naive reverse applied to a literal list."""
    return prelude_program(["rev"], f"rev {literal(values)}")


def ps_create_list_program(n: int) -> Program:
    """§A.3.3's producer/consumer: ``ps (create_list n)``."""
    return prelude_program(["ps", "create_list"], f"ps (create_list {n})")


#: Python references for differential testing.
def reference_ps(values: list[int]) -> list[int]:
    """What the paper's partition sort computes — plain ascending order."""
    return sorted(values)


def reference_rev(values: list[int]) -> list[int]:
    return list(reversed(values))
