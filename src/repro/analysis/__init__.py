"""Analyses layered on escape information: sharing (Theorem 2)."""

from repro.analysis.sharing import (
    SharingInfo,
    observed_unshared_spines,
    sharing_global,
    sharing_local,
)

__all__ = ["SharingInfo", "observed_unshared_spines", "sharing_global", "sharing_local"]
