"""First-order unification over nml types.

A mutable :class:`Substitution` accumulates bindings; :func:`unify` extends
it or raises :class:`~repro.lang.errors.TypeInferenceError`.  The occurs
check rejects infinite types (``t = t list``), which nml cannot express.
"""

from __future__ import annotations

from repro.lang.errors import SourceSpan, TypeInferenceError
from repro.types.types import TBool, TFun, TInt, TList, TProd, TVar, Type, apply_subst


class Substitution:
    """A union-find-free, dictionary-backed substitution."""

    def __init__(self) -> None:
        self.mapping: dict[TVar, Type] = {}

    def resolve(self, ty: Type) -> Type:
        """Walk variable chains until the representative is not bound."""
        while isinstance(ty, TVar) and ty in self.mapping:
            ty = self.mapping[ty]
        return ty

    def apply(self, ty: Type) -> Type:
        """Fully substitute every bound variable inside ``ty``."""
        return apply_subst(ty, self.mapping)

    def bind(self, var: TVar, ty: Type, span: SourceSpan | None = None) -> None:
        if isinstance(ty, TVar) and ty == var:
            return
        if _occurs(var, ty, self):
            raise TypeInferenceError(
                f"cannot construct the infinite type {var} = {self.apply(ty)}", span
            )
        self.mapping[var] = ty


def _occurs(var: TVar, ty: Type, subst: Substitution) -> bool:
    ty = subst.resolve(ty)
    if isinstance(ty, TVar):
        return ty == var
    if isinstance(ty, TList):
        return _occurs(var, ty.element, subst)
    if isinstance(ty, TFun):
        return _occurs(var, ty.arg, subst) or _occurs(var, ty.result, subst)
    if isinstance(ty, TProd):
        return _occurs(var, ty.fst, subst) or _occurs(var, ty.snd, subst)
    return False


def unify(left: Type, right: Type, subst: Substitution, span: SourceSpan | None = None) -> None:
    """Make ``left`` and ``right`` equal under ``subst`` (mutating it)."""
    left = subst.resolve(left)
    right = subst.resolve(right)

    if isinstance(left, TVar):
        subst.bind(left, right, span)
        return
    if isinstance(right, TVar):
        subst.bind(right, left, span)
        return
    if isinstance(left, TInt) and isinstance(right, TInt):
        return
    if isinstance(left, TBool) and isinstance(right, TBool):
        return
    if isinstance(left, TList) and isinstance(right, TList):
        unify(left.element, right.element, subst, span)
        return
    if isinstance(left, TFun) and isinstance(right, TFun):
        unify(left.arg, right.arg, subst, span)
        unify(left.result, right.result, subst, span)
        return
    if isinstance(left, TProd) and isinstance(right, TProd):
        unify(left.fst, right.fst, subst, span)
        unify(left.snd, right.snd, subst, span)
        return

    raise TypeInferenceError(
        f"type mismatch: {subst.apply(left)} vs {subst.apply(right)}", span
    )
