"""Sharing analysis derived from escape information (§6, Theorem 2).

For a strict language, escape analysis makes sharing analysis of lists
cheap.  Let ``f`` take ``n`` arguments with ``dᵢ`` spines each, return a
list with ``d_f`` spines, and let ``escᵢ`` be the escaping-spine count of
parameter ``i`` from the global escape test.  Then:

* **Clause 1** (call-specific): if ``uᵢ`` top spines of each actual
  argument are unshared, all cells in the top
  ``d_f − max_i min{escᵢ, dᵢ − uᵢ}`` spines of the result are unshared.
* **Clause 2** (any arguments): all cells in the top
  ``d_f − max_i escᵢ`` spines of the result are unshared.

An unshared result prefix is what licenses in-place reuse of its cells.
This module also provides a heap-level *observed* sharing measurement used
to validate the theorem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.results import EscapeResults
from repro.escape.exact import Source
from repro.lang.ast import Program
from repro.lang.errors import AnalysisError
from repro.semantics.interp import Interpreter
from repro.semantics.values import Value, VClosure, VCons, VPrim
from repro.types.types import fun_args, spines


@dataclass(frozen=True)
class SharingInfo:
    """How many top spines of ``function``'s result are provably unshared."""

    function: str
    result_spines: int  # d_f
    arg_spines: tuple[int, ...]  # d_i
    escaping: tuple[int, ...]  # esc_i
    unshared_top_spines: int
    clause: int  # 1 or 2 of Theorem 2

    def describe(self) -> str:
        if self.unshared_top_spines <= 0:
            return f"no spine of {self.function}'s result is provably unshared"
        return (
            f"all cons cells in the top {self.unshared_top_spines} spine(s) "
            f"of {self.function}'s result are unshared"
        )


def _escape_inputs(analysis: EscapeResults, function: str) -> tuple[tuple[int, ...], tuple[int, ...], int]:
    results = analysis.global_all(function)
    esc = tuple(r.escaping_spines for r in results)
    d = tuple(r.param_spines for r in results)
    solved = analysis.solve(None)
    fn_type = analysis.binding_type(function, solved)
    result_type = fun_args(fn_type)[1]
    d_f = spines(result_type)
    if d_f == 0:
        raise AnalysisError(f"{function} does not return a list (type {fn_type})")
    return esc, d, d_f


def sharing_global(analysis: EscapeResults, function: str) -> SharingInfo:
    """Theorem 2, clause 2: valid for any arguments whatsoever."""
    esc, d, d_f = _escape_inputs(analysis, function)
    unshared = d_f - max(esc)
    return SharingInfo(
        function=function,
        result_spines=d_f,
        arg_spines=d,
        escaping=esc,
        unshared_top_spines=unshared,
        clause=2,
    )


def sharing_local(
    analysis: EscapeResults, function: str, unshared_args: list[int]
) -> SharingInfo:
    """Theorem 2, clause 1: ``unshared_args[i]`` is ``uᵢ``, the number of
    unshared top spines of the ``i``-th actual argument."""
    esc, d, d_f = _escape_inputs(analysis, function)
    if len(unshared_args) != len(d):
        raise AnalysisError(
            f"{function} takes {len(d)} arguments, got u for {len(unshared_args)}"
        )
    worst = 0
    for esc_i, d_i, u_i in zip(esc, d, unshared_args):
        if not 0 <= u_i <= d_i:
            raise AnalysisError(f"u must be within 0..{d_i}, got {u_i}")
        worst = max(worst, min(esc_i, d_i - u_i))
    return SharingInfo(
        function=function,
        result_spines=d_f,
        arg_spines=d,
        escaping=esc,
        unshared_top_spines=d_f - worst,
        clause=1,
    )


# ---------------------------------------------------------------------------
# Observed sharing (heap-level validation of Theorem 2)
# ---------------------------------------------------------------------------


def observed_unshared_spines(
    program: Program, function: str, args_python: list
) -> int:
    """Run ``function`` on concrete arguments and measure how many top
    spines of the result contain only unshared cells.

    A result cell is *shared* if it has more than one referrer among live
    data (other cells' car/cdr fields, the argument roots, or closure
    environments).  Returns the largest ``t`` such that every cell in
    result spine levels ``1..t`` is unshared — the quantity Theorem 2
    bounds from below.
    """
    interp = Interpreter()
    fn_value = interp.eval_in(program, function)
    arg_values = [
        interp.eval_in(program, str(a)) if isinstance(a, Source) else interp.from_python(a)
        for a in args_python
    ]
    result = fn_value
    for value in arg_values:
        result = interp.apply(result, value)

    referrers: dict[int, int] = {}

    def note(value: Value) -> None:
        if isinstance(value, VCons):
            referrers[value.cell.id] = referrers.get(value.cell.id, 0) + 1

    # Count every reference among live structures: cells reachable from the
    # result and from the (still live) arguments.
    roots: list[Value] = [result, *arg_values]
    all_cells = interp.heap.reachable_cells(*roots)
    for cell in all_cells:
        if not cell.freed:
            note(cell.car)
            note(cell.cdr)
    for root in roots:
        note(root)
        if isinstance(root, VClosure):
            for bound in root.env.values():
                note(bound)
        if isinstance(root, VPrim):
            for held in root.args:
                note(held)

    by_level = interp.heap.spine_levels(result)
    if not by_level:
        # nil result: vacuously every spine is unshared.
        return spines_of_result_structure(interp, result)
    unshared_prefix = 0
    for level in range(1, max(by_level) + 1):
        cells = by_level.get(level, [])
        if all(referrers.get(cell.id, 0) <= 1 for cell in cells):
            unshared_prefix = level
        else:
            break
    return unshared_prefix


def spines_of_result_structure(interp: Interpreter, value: Value) -> int:
    by_level = interp.heap.spine_levels(value)
    return max(by_level) if by_level else 0
