"""The hardened engine: taxonomy, budgets, degradation soundness, fault
injection, the storage-safety sanitizer, and the hardened pipeline.

The load-bearing invariant throughout: a degraded answer is always ⊒ the
exact answer in ``B_e`` (the ``W^τ`` worst case of Definition 2 is sound
for every application), and a degraded pipeline still yields a correct —
possibly unoptimized — program.
"""

from __future__ import annotations

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.lattice import Escapement
from repro.escape.worst import worst_escapement, worst_test_result
from repro.lang.ast import Prim
from repro.lang.errors import (
    AnalysisError,
    HeapAllocationError,
    OptimizationError,
    ParseError,
    StorageSafetyError,
    TypeInferenceError,
    UseAfterFreeError,
)
from repro.lang.prelude import (
    paper_map_pair,
    paper_partition_sort,
    prelude_program,
)
from repro.opt.pipeline import paper_ps_prime, paper_rev_prime
from repro.robust import faults
from repro.robust.budget import AnalysisBudget, BudgetMeter
from repro.robust.engine import HardenedAnalysis
from repro.robust.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    Degradation,
    InjectedFault,
    IterationBudgetExceeded,
    Severity,
    WorkBudgetExceeded,
    classify,
    reason_for,
)
from repro.robust.faults import FaultPlan, StageFault
from repro.robust.pipeline import harden_optimize
from repro.semantics.gc import MarkSweepGC
from repro.semantics.heap import AllocKind, Heap, StorageSanitizer
from repro.semantics.interp import run_program
from repro.semantics.values import VCons, VInt, VNil
from repro.types.types import INT, TList


# ---------------------------------------------------------------------------
# the error taxonomy
# ---------------------------------------------------------------------------


class TestTaxonomy:
    def test_budget_breaches_are_degradable(self):
        for error in (
            DeadlineExceeded("d"),
            IterationBudgetExceeded("i"),
            WorkBudgetExceeded("w"),
        ):
            assert classify(error) is Severity.DEGRADABLE
            assert isinstance(error, BudgetExceeded)

    def test_allocation_failure_is_retryable(self):
        assert classify(HeapAllocationError("oom")) is Severity.RETRYABLE

    def test_soundness_tripwires_are_fatal(self):
        assert classify(UseAfterFreeError("uaf")) is Severity.FATAL
        assert classify(StorageSafetyError("san")) is Severity.FATAL

    def test_frontend_errors_are_fatal(self):
        # No types ⇒ no W^τ ⇒ nothing sound to degrade to.
        assert classify(ParseError("p")) is Severity.FATAL
        assert classify(TypeInferenceError("t")) is Severity.FATAL

    def test_analysis_and_optimization_errors_degrade(self):
        assert classify(AnalysisError("a")) is Severity.DEGRADABLE
        assert classify(OptimizationError("o")) is Severity.DEGRADABLE

    def test_injected_fault_carries_its_severity(self):
        assert classify(InjectedFault("x")) is Severity.DEGRADABLE
        fatal = InjectedFault("x", severity=Severity.FATAL)
        assert classify(fatal) is Severity.FATAL

    def test_unknown_exceptions_are_fatal(self):
        assert classify(ZeroDivisionError()) is Severity.FATAL

    def test_reason_tags(self):
        assert reason_for(DeadlineExceeded("d")) == "deadline-exceeded"
        assert reason_for(IterationBudgetExceeded("i")) == "iteration-budget-exceeded"
        assert reason_for(WorkBudgetExceeded("w")) == "work-budget-exceeded"
        assert reason_for(InjectedFault("f")) == "injected-fault"
        assert reason_for(HeapAllocationError("a")) == "allocation-failed"
        assert reason_for(OptimizationError("o")) == "optimization-skipped"
        assert reason_for(AnalysisError("x")) == "analysis-failed"


# ---------------------------------------------------------------------------
# budgets and meters
# ---------------------------------------------------------------------------


class TestBudget:
    def test_unlimited_by_default(self):
        budget = AnalysisBudget()
        assert budget.unlimited
        meter = budget.start()
        for _ in range(1000):
            meter.tick_eval()
        meter.tick_iteration()
        assert meter.spent().eval_steps == 1000

    def test_eval_step_budget(self):
        meter = AnalysisBudget(max_eval_steps=3).start()
        meter.tick_eval()
        meter.tick_eval()
        meter.tick_eval()
        with pytest.raises(WorkBudgetExceeded):
            meter.tick_eval()

    def test_iteration_budget(self):
        meter = AnalysisBudget(max_fixpoint_iterations=2).start()
        meter.tick_iteration()
        meter.tick_iteration()
        with pytest.raises(IterationBudgetExceeded):
            meter.tick_iteration()

    def test_zero_deadline_trips_immediately(self):
        meter = AnalysisBudget(deadline_s=0.0).start()
        with pytest.raises(DeadlineExceeded):
            meter.check_deadline()

    def test_spent_snapshot(self):
        meter = AnalysisBudget().start()
        meter.tick_eval()
        meter.tick_iteration()
        spent = meter.spent()
        assert spent.eval_steps == 1 and spent.iterations == 1
        assert spent.wall_seconds >= 0.0

    def test_str_forms(self):
        assert str(AnalysisBudget()) == "unlimited"
        assert "500ms" in str(AnalysisBudget(deadline_s=0.5))


# ---------------------------------------------------------------------------
# the W^τ worst case
# ---------------------------------------------------------------------------


class TestWorstCase:
    def test_worst_escapement_uses_spine_count(self):
        assert worst_escapement(TList(INT)) == Escapement(1, 1)
        assert worst_escapement(TList(TList(INT))) == Escapement(1, 2)
        assert worst_escapement(INT) == Escapement(1, 0)

    def test_worst_test_result_shape(self):
        result = worst_test_result("f", 1, TList(INT))
        assert result.function == "f"
        assert result.result == Escapement(1, 1)
        assert result.escaping_spines == 1

    def test_worst_dominates_every_exact_answer(self, ps_analysis):
        # ⟨1, sᵢ⟩ is the top of the reachable escapements at the type.
        for name in ("append", "split", "ps"):
            types = ps_analysis.program.binding(name).expr.ty
            from repro.types.types import fun_args

            arg_types, _ = fun_args(types)
            for exact, ty in zip(ps_analysis.global_all(name), arg_types):
                assert exact.result.leq(worst_escapement(ty))


# ---------------------------------------------------------------------------
# the widening safety net (satellite: drive past max_iterations)
# ---------------------------------------------------------------------------


class TestWideningSafetyNet:
    def test_capped_fixpoint_widens(self):
        program = prelude_program(["append"], "append [1] [2]")
        capped = EscapeAnalysis(program, max_iterations=1)
        solved = capped.solve()
        trace = solved.trace("append")
        assert trace.widened and not trace.converged
        assert trace.iterations == 1

    def test_widened_env_dominates_converged(self):
        program = prelude_program(["append"], "append [1] [2]")
        converged = EscapeAnalysis(program).solve()
        widened = EscapeAnalysis(program, max_iterations=1).solve()
        assert converged.trace("append").converged
        ty = program.binding("append").expr.ty
        # Same chain (same program, same d), so fingerprints are comparable.
        assert converged.evaluator.value_leq(
            converged.env["append"], widened.env["append"], ty
        )
        assert not widened.evaluator.value_leq(
            widened.env["append"], converged.env["append"], ty
        )

    def test_capped_analysis_still_answers_soundly(self):
        program = prelude_program(["append"], "append [1] [2]")
        exact = EscapeAnalysis(program).global_test("append", 1)
        capped = EscapeAnalysis(program, max_iterations=1).global_test("append", 1)
        assert exact.result.leq(capped.result)
        assert capped.result == Escapement(1, 1)


# ---------------------------------------------------------------------------
# the hardened engine
# ---------------------------------------------------------------------------


class TestHardenedAnalysis:
    def test_exact_within_budget(self, partition_sort):
        engine = HardenedAnalysis(partition_sort)
        robust = engine.global_test("append", 1)
        assert robust.exact and not robust.degraded
        assert str(robust.result.result) == "<1,0>"
        assert robust.spent is not None and robust.spent.eval_steps > 0

    @pytest.mark.parametrize(
        "budget, reason",
        [
            (AnalysisBudget(deadline_s=0.0), "deadline-exceeded"),
            (AnalysisBudget(max_fixpoint_iterations=1), "iteration-budget-exceeded"),
            (AnalysisBudget(max_eval_steps=10), "work-budget-exceeded"),
        ],
        ids=["deadline", "iterations", "steps"],
    )
    def test_budget_breach_degrades_with_reason(self, partition_sort, budget, reason):
        engine = HardenedAnalysis(partition_sort, budget=budget)
        results = engine.global_all("append")
        assert len(results) == 2
        for robust in results:
            assert robust.degraded
            assert robust.degradation.reason == reason
            assert robust.degradation.error is not None
            assert robust.result.result == Escapement(1, 1)

    def test_degraded_dominates_exact(self, partition_sort):
        exact = {
            (r.function, r.param_index): r.result
            for name in ("append", "split", "ps")
            for r in EscapeAnalysis(partition_sort).global_all(name)
        }
        engine = HardenedAnalysis(
            partition_sort, budget=AnalysisBudget(max_eval_steps=50)
        )
        for name in ("append", "split", "ps"):
            for robust in engine.global_all(name):
                key = (robust.result.function, robust.result.param_index)
                assert exact[key].leq(robust.result.result)

    def test_budget_spent_is_recorded(self, partition_sort):
        engine = HardenedAnalysis(
            partition_sort, budget=AnalysisBudget(max_eval_steps=10)
        )
        robust = engine.global_test("append", 1)
        assert robust.degradation.spent.eval_steps >= 10

    def test_untypeable_program_is_fatal_at_construction(self):
        from repro.lang.parser import parse_program

        bad = parse_program("f x = f;\nf [1]")  # occurs-check failure
        with pytest.raises(TypeInferenceError):
            HardenedAnalysis(bad)

    def test_unknown_function_raises(self, partition_sort):
        engine = HardenedAnalysis(partition_sort)
        with pytest.raises(AnalysisError):
            engine.global_all("nope")
        with pytest.raises(AnalysisError):
            engine.global_test("append", 9)

    def test_local_test_degrades(self, partition_sort):
        engine = HardenedAnalysis(
            partition_sort, budget=AnalysisBudget(max_eval_steps=5)
        )
        results = engine.local_test("append (ps [2, 1]) [3]")
        assert len(results) == 2
        assert all(r.degraded for r in results)
        # The degraded local answer still uses append's parameter types.
        assert results[0].result.result == Escapement(1, 1)

    def test_local_test_exact(self, partition_sort):
        engine = HardenedAnalysis(partition_sort)
        results = engine.local_test("append (ps [2, 1]) [3]")
        assert all(r.exact for r in results)


# ---------------------------------------------------------------------------
# fault injection: the matrix (EXPERIMENTS.md row R1)
# ---------------------------------------------------------------------------

MATRIX_PROGRAMS = [
    ("partition-sort", paper_partition_sort),
    ("map-pair", paper_map_pair),
    ("rev", lambda: prelude_program(["rev"], "rev [1, 2, 3]")),
]

MATRIX_FAULTS = [
    ("deadline", AnalysisBudget(deadline_s=0.0), FaultPlan()),
    ("iterations", AnalysisBudget(max_fixpoint_iterations=1), FaultPlan()),
    ("steps", AnalysisBudget(max_eval_steps=25), FaultPlan()),
    (
        "solve-fault",
        AnalysisBudget(),
        FaultPlan(stage_faults=(StageFault(stage="solve"),)),
    ),
    (
        "query-fault",
        AnalysisBudget(),
        FaultPlan(stage_faults=(StageFault(stage="query"),)),
    ),
]


class TestFaultMatrix:
    @pytest.mark.parametrize("prog_name, make", MATRIX_PROGRAMS, ids=[p[0] for p in MATRIX_PROGRAMS])
    @pytest.mark.parametrize("fault_name, budget, plan", MATRIX_FAULTS, ids=[f[0] for f in MATRIX_FAULTS])
    def test_degraded_or_exact_never_unsound(self, prog_name, make, fault_name, budget, plan):
        program = make()
        function = program.binding_names()[0]
        exact = EscapeAnalysis(program).global_all(function)

        with faults.inject(plan):
            engine = HardenedAnalysis(program, budget=budget)
            injured = engine.global_all(function)

        assert len(injured) == len(exact)
        for e, r in zip(exact, injured):
            assert e.result.leq(r.result.result)  # soundness, degraded or not
            if r.degraded:
                assert r.degradation.reason in (
                    "deadline-exceeded",
                    "iteration-budget-exceeded",
                    "work-budget-exceeded",
                    "injected-fault",
                )

        # No shared-state corruption: a clean rerun is exact again.
        clean = HardenedAnalysis(program).global_all(function)
        for e, r in zip(exact, clean):
            assert r.exact
            assert e.result == r.result.result

    def test_retryable_fault_is_retried(self, partition_sort):
        plan = FaultPlan(
            stage_faults=(
                StageFault(stage="query", at=1, severity=Severity.RETRYABLE),
            )
        )
        with faults.inject(plan) as injector:
            robust = HardenedAnalysis(partition_sort).global_test("append", 1)
        assert injector.fired == ["query@1"]
        assert robust.exact  # the second attempt succeeded

    def test_retry_exhaustion_degrades(self, partition_sort):
        plan = FaultPlan(
            stage_faults=tuple(
                StageFault(stage="query", at=n, severity=Severity.RETRYABLE)
                for n in (1, 2, 3)
            )
        )
        with faults.inject(plan):
            robust = HardenedAnalysis(partition_sort, max_retries=1).global_test(
                "append", 1
            )
        assert robust.degraded
        assert robust.degradation.reason == "injected-fault"

    def test_fatal_injection_propagates(self, partition_sort):
        plan = FaultPlan(
            stage_faults=(StageFault(stage="solve", severity=Severity.FATAL),)
        )
        with faults.inject(plan):
            with pytest.raises(InjectedFault):
                HardenedAnalysis(partition_sort).global_test("append", 1)

    def test_alloc_failure_surfaces_in_the_runtime(self):
        program = prelude_program(["append"], "append [1, 2] [3]")
        with faults.inject(FaultPlan(fail_alloc_at=4)):
            with pytest.raises(HeapAllocationError):
                run_program(program)

    @pytest.mark.parametrize(
        "make",
        [paper_partition_sort, lambda: paper_ps_prime().program, lambda: paper_rev_prime().program],
        ids=["ps", "ps-prime", "rev-prime"],
    )
    def test_adversarial_gc_preserves_results(self, make):
        program = make()
        baseline, _ = run_program(program)
        with faults.inject(FaultPlan(gc_every=3)) as injector:
            stressed, metrics = run_program(program, sanitize=True)
        assert stressed == baseline
        assert injector.fired  # the GC really ran
        assert metrics.gc_runs > 0

    def test_no_plan_means_no_overhead_paths(self):
        assert faults.active() is None
        assert faults.take_forced_gc() is False
        faults.check_alloc()
        faults.check_stage("solve")  # all no-ops


# ---------------------------------------------------------------------------
# the storage-safety sanitizer
# ---------------------------------------------------------------------------


def _region_site() -> Prim:
    site = Prim(name="cons")
    site.annotations["alloc"] = "region"
    return site


class TestSanitizer:
    def test_use_after_reuse_detected(self):
        sanitizer = StorageSanitizer()
        heap = Heap(sanitizer=sanitizer)
        cell = heap.allocate(VInt(1), VNil())
        stale = VCons(cell)  # snapshot of generation 0
        heap.reuse(cell, VInt(9), VNil())
        with pytest.raises(StorageSafetyError):
            heap.car_of(stale)
        assert sanitizer.violations[0].kind == "use-after-reuse"

    def test_fresh_reference_after_reuse_is_fine(self):
        heap = Heap(sanitizer=StorageSanitizer())
        cell = heap.allocate(VInt(1), VNil())
        heap.reuse(cell, VInt(9), VNil())
        fresh = VCons(cell)  # created at generation 1
        assert heap.car_of(fresh) == VInt(9)

    def test_without_sanitizer_stale_reads_pass(self):
        # The un-sanitized heap keeps the paper's semantics: dcons aliases
        # observe the new contents silently.
        heap = Heap()
        cell = heap.allocate(VInt(1), VNil())
        stale = VCons(cell)
        heap.reuse(cell, VInt(9), VNil())
        assert heap.car_of(stale) == VInt(9)

    def test_read_after_free_records_region_provenance(self):
        sanitizer = StorageSanitizer()
        heap = Heap(sanitizer=sanitizer)
        region = heap.open_region(AllocKind.STACK, label="frame")
        cell = heap.allocate(VInt(1), VNil(), site=_region_site())
        ref = VCons(cell)
        heap.close_region(region)
        with pytest.raises(StorageSafetyError):
            heap.car_of(ref)
        violation = sanitizer.violations[0]
        assert violation.kind == "read-after-free"
        assert "stack" in violation.detail

    def test_reclaim_live_cell_detected(self):
        sanitizer = StorageSanitizer()
        heap = Heap(sanitizer=sanitizer)
        region = heap.open_region(AllocKind.BLOCK, label="blk")
        cell = heap.allocate(VInt(1), VNil(), site=_region_site())
        live = VCons(cell)
        with pytest.raises(StorageSafetyError):
            heap.close_region(region, live_roots=[live])
        assert sanitizer.violations[0].kind == "reclaim-live-cell"

    def test_reclaim_dead_cell_is_clean(self):
        sanitizer = StorageSanitizer()
        heap = Heap(sanitizer=sanitizer)
        region = heap.open_region(AllocKind.BLOCK)
        heap.allocate(VInt(1), VNil(), site=_region_site())
        heap.close_region(region, live_roots=[VNil()])
        assert sanitizer.clean

    def test_gc_dangling_reference_is_a_warning_not_a_halt(self):
        sanitizer = StorageSanitizer()
        heap = Heap(sanitizer=sanitizer)
        region = heap.open_region(AllocKind.STACK)
        cell = heap.allocate(VInt(1), VNil(), site=_region_site())
        dangling = VCons(cell)
        heap.close_region(region)
        MarkSweepGC(heap).collect([dangling])
        assert sanitizer.clean  # no violation...
        assert sanitizer.warnings[0].kind == "dangling-reference"

    @pytest.mark.parametrize(
        "make, expected",
        [
            (lambda: paper_ps_prime().program, [1, 2, 3, 4, 5, 7]),
            (lambda: paper_rev_prime().program, [5, 4, 3, 2, 1]),
        ],
        ids=["ps-prime", "rev-prime"],
    )
    def test_sound_optimized_programs_run_clean(self, make, expected):
        from repro.semantics.interp import Interpreter

        program = make()
        interp = Interpreter(sanitize=True)
        value = interp.run(program)
        assert interp.to_python(value) == expected
        assert interp.sanitizer.clean

    def test_machine_supports_the_sanitizer(self):
        from repro.machine.machine import run_compiled

        result, _ = run_compiled(paper_ps_prime().program, sanitize=True)
        assert result == [1, 2, 3, 4, 5, 7]


# ---------------------------------------------------------------------------
# the hardened pipeline
# ---------------------------------------------------------------------------


class TestHardenedPipeline:
    def test_optimizes_and_stays_correct(self, partition_sort):
        outcome = harden_optimize(partition_sort, validate=True)
        assert outcome.applied
        result, metrics = run_program(outcome.program)
        assert result == [1, 2, 3, 4, 5, 7]
        assert metrics.reused > 0

    def test_failed_step_is_skipped_and_recorded(self, partition_sort):
        plan = FaultPlan(stage_faults=(StageFault(stage="reuse", at=1),))
        with faults.inject(plan):
            outcome = harden_optimize(partition_sort)
        assert outcome.degraded
        skipped = [d for d in outcome.degradations if d.reason == "injected-fault"]
        assert len(skipped) == 1
        assert skipped[0].stage.startswith("reuse:")
        assert isinstance(skipped[0].error, InjectedFault)
        # The surviving transforms still form a correct program.
        result, _ = run_program(outcome.program)
        assert result == [1, 2, 3, 4, 5, 7]

    def test_plan_failure_returns_unoptimized_program(self, partition_sort):
        outcome = harden_optimize(partition_sort, budget=AnalysisBudget(deadline_s=0.0))
        assert outcome.program is partition_sort
        assert not outcome.applied
        assert outcome.degradations[0].stage == "plan"
        assert outcome.degradations[0].reason == "deadline-exceeded"

    def test_all_steps_faulted_still_yields_the_input(self, partition_sort):
        plan = FaultPlan(
            stage_faults=tuple(
                StageFault(stage=s, at=n) for s in ("reuse", "stack", "block") for n in (1, 2, 3, 4)
            )
        )
        with faults.inject(plan):
            outcome = harden_optimize(partition_sort)
        result, _ = run_program(outcome.program)
        assert result == [1, 2, 3, 4, 5, 7]

    def test_fatal_fault_in_a_step_propagates(self, partition_sort):
        plan = FaultPlan(
            stage_faults=(StageFault(stage="reuse", severity=Severity.FATAL),)
        )
        with faults.inject(plan):
            with pytest.raises(InjectedFault):
                harden_optimize(partition_sort)

    def test_auto_reuse_records_degradations(self, partition_sort, monkeypatch):
        from repro.opt import pipeline as opt_pipeline

        def refuse(*args, **kwargs):
            raise OptimizationError("nope")

        monkeypatch.setattr(opt_pipeline, "make_reuse_specialization", refuse)
        outcome = opt_pipeline.auto_reuse(partition_sort)
        assert not outcome.steps
        assert outcome.degraded
        assert all(d.reason == "optimization-skipped" for d in outcome.degradations)
        assert all(isinstance(d.error, OptimizationError) for d in outcome.degradations)
        assert outcome.program is partition_sort

    def test_auto_reuse_clean_run_has_no_degradations(self, partition_sort):
        from repro.opt.pipeline import auto_reuse

        outcome = auto_reuse(partition_sort)
        assert outcome.steps
        assert not outcome.degraded


# ---------------------------------------------------------------------------
# degradation records
# ---------------------------------------------------------------------------


class TestDegradationRecord:
    def test_str_includes_reason_stage_and_spend(self):
        d = Degradation(reason="deadline-exceeded", stage="fixpoint", message="slow")
        text = str(d)
        assert "deadline-exceeded" in text and "fixpoint" in text and "slow" in text

    def test_original_exception_preserved(self, partition_sort):
        engine = HardenedAnalysis(
            partition_sort, budget=AnalysisBudget(max_fixpoint_iterations=1)
        )
        robust = engine.global_test("append", 1)
        assert isinstance(robust.degradation.error, IterationBudgetExceeded)
