"""Exact escape semantics and dynamic observer tests.

The two ground-truth formulations (§3.2's lock-step semantics and the
heap-level observer) must agree on the whole corpus, and a handful of
hand-checked cases pin their exact values.
"""

import pytest

from repro.escape.exact import ObservedEscape, Source, exact_escape, observe_escape
from repro.lang.prelude import prelude_program


class TestObservedEscapeModel:
    def test_no_escape(self):
        o = ObservedEscape(param_spines=1, escaped_levels=frozenset())
        assert not o.escaped
        assert o.escaping_spines == 0
        assert str(o.as_escapement()) == "<0,0>"

    def test_full_escape(self):
        o = ObservedEscape(param_spines=1, escaped_levels=frozenset({1}))
        assert o.escaping_spines == 1
        assert str(o.as_escapement()) == "<1,1>"

    def test_partial_escape_two_spines(self):
        # only level-2 cells escaped: bottom 1 of 2 spines
        o = ObservedEscape(param_spines=2, escaped_levels=frozenset({2}))
        assert o.escaping_spines == 1

    def test_topmost_level_dominates(self):
        o = ObservedEscape(param_spines=2, escaped_levels=frozenset({1, 2}))
        assert o.escaping_spines == 2


class TestHandCheckedCases:
    @pytest.mark.parametrize(
        "names,function,args,i,expected",
        [
            (["append"], "append", [[1, 2], [3]], 1, "<0,0>"),  # spine copied
            (["append"], "append", [[1, 2], [3]], 2, "<1,1>"),  # shared
            (["drop"], "drop", [1, [1, 2, 3]], 2, "<1,1>"),  # suffix shared
            (["take"], "take", [2, [1, 2, 3]], 2, "<0,0>"),  # copied
            (["copy"], "copy", [[1, 2]], 1, "<0,0>"),
            (["length"], "length", [[1, 2]], 1, "<0,0>"),
            (["ps"], "ps", [[5, 2, 7]], 1, "<0,0>"),
            (["rev"], "rev", [[1, 2, 3]], 1, "<0,0>"),
            (["tails_tops"], "tails_tops", [[[1, 2], [3]]], 1, "<1,1>"),
            (["heads"], "heads", [[[1, 2], [3]]], 1, "<0,0>"),
        ],
    )
    def test_observer(self, names, function, args, i, expected):
        program = prelude_program(names)
        assert str(observe_escape(program, function, args, i).as_escapement()) == expected

    def test_identity_escapes_whole_list(self):
        program = prelude_program(["id_fn"])
        o = observe_escape(program, "id_fn", [[1, 2]], 1)
        assert str(o.as_escapement()) == "<1,1>"

    def test_function_argument_via_source(self):
        program = prelude_program(["map", "pair"])
        o = observe_escape(program, "map", [Source("pair"), [[1, 2], [3, 4]]], 2)
        assert not o.escaped

    def test_closure_capture_counts_as_escape(self):
        # The result closure captures the list: it escapes inside the closure.
        program = prelude_program(["const_fn"])
        o = observe_escape(program, "const_fn", [[1, 2], 0], 1)
        assert o.escaped


class TestExactAgreesWithObserver:
    def test_corpus_agreement(self, corpus_case):
        program, function, args, i = corpus_case
        dynamic = observe_escape(program, function, args, i)
        exact = exact_escape(program, function, args, i)
        assert dynamic.escaped_levels == exact.escaped_levels, (
            f"{function}@{i}: dynamic {set(dynamic.escaped_levels)} != "
            f"exact {set(exact.escaped_levels)}"
        )

    def test_oracle_follows_concrete_branches(self):
        # take 0 shares nothing even though take n generally copies; with
        # n == 0 it returns nil immediately (the oracle picks that branch).
        program = prelude_program(["take", "drop"])
        assert not exact_escape(program, "take", [0, [1, 2]], 2).escaped
        # drop 0 returns the list itself: full escape, oracle picks 'then'.
        o = exact_escape(program, "drop", [0, [1, 2]], 2)
        assert o.escaping_spines == 1

    def test_dcons_preserves_donor_tag(self):
        # rev' would reuse cells; the exact semantics tracks the reused
        # cell's tag through dcons.
        program = prelude_program(["append"])
        from repro.lang.parser import parse_program

        prog = parse_program(
            "keep x = dcons x 1 (cdr x);"  # reuses x's first cell
        )
        o = exact_escape(prog, "keep", [[9, 8, 7]], 1)
        assert o.escaped
        assert 1 in o.escaped_levels


class TestErrors:
    def test_bad_index(self):
        from repro.lang.errors import AnalysisError

        program = prelude_program(["length"])
        with pytest.raises(AnalysisError):
            observe_escape(program, "length", [[1]], 2)

    def test_exact_bad_index(self):
        from repro.lang.errors import AnalysisError

        program = prelude_program(["length"])
        with pytest.raises(AnalysisError):
            exact_escape(program, "length", [[1]], 0)
