"""Abstract syntax for nml.

The core language is the paper's (§3.1)::

    e ::= c | x | e1 e2 | lambda(x). e
        | if e1 then e2 else e3
        | letrec x1 = e1; ...; xn = en in e

Constants include integer and boolean literals, ``nil``, and the primitive
functions (``+ - * / == <> < <= > >= cons car cdr null`` and the destructive
``dcons`` used by the in-place-reuse optimization).  The parser desugars

* multi-argument definitions ``f x y = e``  into nested lambdas,
* list literals ``[a, b, c]``              into cons chains,
* ``a :: b``                               into ``cons a b``,
* infix arithmetic/comparison              into primitive applications,
* ``let``                                  into ``letrec`` (which subsumes it).

Nodes compare **structurally**: spans, types, unique ids, and annotations are
excluded from ``==`` so a transformed program can be checked against an
expected program written by hand.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.lang.errors import NO_SPAN, SourceSpan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.types.types import Type

_uid_counter = itertools.count(1)


def _next_uid() -> int:
    return next(_uid_counter)


#: Names of all primitive functions, mapped to their arity.
PRIMITIVES: dict[str, int] = {
    "+": 2,
    "-": 2,
    "*": 2,
    "/": 2,
    "==": 2,
    "<>": 2,
    "<": 2,
    "<=": 2,
    ">": 2,
    ">=": 2,
    "cons": 2,
    "car": 1,
    "cdr": 1,
    "null": 1,
    "dcons": 3,
    "mkpair": 2,
    "fst": 1,
    "snd": 1,
}


@dataclass(eq=False)
class Expr:
    """Base class for all expression nodes.

    Attributes set by later phases:

    * ``ty`` — the (mono)type assigned by inference, or ``None`` before it.
    * ``annotations`` — free-form per-node facts; the optimizers use
      ``annotations["alloc"]`` to direct the interpreter's allocator.
    """

    span: SourceSpan = field(default=NO_SPAN, repr=False)
    ty: "Type | None" = field(default=None, repr=False)
    uid: int = field(default_factory=_next_uid, repr=False)
    annotations: dict[str, Any] = field(default_factory=dict, repr=False)

    # Structural equality, ignoring metadata ------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expr):
            return NotImplemented
        if type(self) is not type(other):
            return False
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def children(self) -> tuple["Expr", ...]:
        """Direct subexpressions, in evaluation order."""
        return ()

    def with_children(self, children: tuple["Expr", ...]) -> "Expr":
        """A copy of this node with ``children`` substituted in order."""
        if children:
            raise ValueError(f"{type(self).__name__} has no children")
        return self


@dataclass(eq=False)
class IntLit(Expr):
    value: int = 0

    def _key(self) -> tuple:
        return (self.value,)


@dataclass(eq=False)
class BoolLit(Expr):
    value: bool = False

    def _key(self) -> tuple:
        return (self.value,)


@dataclass(eq=False)
class NilLit(Expr):
    """The empty list constant."""

    def _key(self) -> tuple:
        return ()


@dataclass(eq=False)
class Prim(Expr):
    """A primitive function constant such as ``cons`` or ``+``."""

    name: str = ""

    def __post_init__(self) -> None:
        if self.name not in PRIMITIVES:
            raise ValueError(f"unknown primitive {self.name!r}")

    @property
    def arity(self) -> int:
        return PRIMITIVES[self.name]

    def _key(self) -> tuple:
        return (self.name,)


@dataclass(eq=False)
class Var(Expr):
    name: str = ""

    def _key(self) -> tuple:
        return (self.name,)


@dataclass(eq=False)
class App(Expr):
    fn: Expr = None  # type: ignore[assignment]
    arg: Expr = None  # type: ignore[assignment]

    def _key(self) -> tuple:
        return (self.fn, self.arg)

    def children(self) -> tuple[Expr, ...]:
        return (self.fn, self.arg)

    def with_children(self, children: tuple[Expr, ...]) -> "App":
        fn, arg = children
        return App(span=self.span, ty=self.ty, annotations=dict(self.annotations), fn=fn, arg=arg)


@dataclass(eq=False)
class Lambda(Expr):
    param: str = ""
    body: Expr = None  # type: ignore[assignment]

    def _key(self) -> tuple:
        return (self.param, self.body)

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)

    def with_children(self, children: tuple[Expr, ...]) -> "Lambda":
        (body,) = children
        return Lambda(
            span=self.span, ty=self.ty, annotations=dict(self.annotations), param=self.param, body=body
        )


@dataclass(eq=False)
class If(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]

    def _key(self) -> tuple:
        return (self.cond, self.then, self.otherwise)

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)

    def with_children(self, children: tuple[Expr, ...]) -> "If":
        cond, then, otherwise = children
        return If(
            span=self.span,
            ty=self.ty,
            annotations=dict(self.annotations),
            cond=cond,
            then=then,
            otherwise=otherwise,
        )


@dataclass(eq=False)
class Binding:
    """One ``x = e`` binding of a letrec."""

    name: str
    expr: Expr
    span: SourceSpan = field(default=NO_SPAN, repr=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Binding):
            return NotImplemented
        return self.name == other.name and self.expr == other.expr

    def __hash__(self) -> int:
        return hash((self.name, self.expr))


@dataclass(eq=False)
class Letrec(Expr):
    bindings: tuple[Binding, ...] = ()
    body: Expr = None  # type: ignore[assignment]

    def _key(self) -> tuple:
        return (self.bindings, self.body)

    def children(self) -> tuple[Expr, ...]:
        return tuple(b.expr for b in self.bindings) + (self.body,)

    def with_children(self, children: tuple[Expr, ...]) -> "Letrec":
        *bound, body = children
        bindings = tuple(
            Binding(b.name, e, b.span) for b, e in zip(self.bindings, bound, strict=True)
        )
        return Letrec(
            span=self.span, ty=self.ty, annotations=dict(self.annotations), bindings=bindings, body=body
        )

    def binding_names(self) -> tuple[str, ...]:
        return tuple(b.name for b in self.bindings)

    def find(self, name: str) -> Binding:
        for binding in self.bindings:
            if binding.name == name:
                return binding
        raise KeyError(name)


@dataclass(eq=False)
class Program:
    """A whole program: a top-level letrec (§3.1's ``pr``).

    Stored as the :class:`Letrec` expression itself so every analysis works
    uniformly on expressions; convenience accessors expose the top-level
    function definitions.
    """

    letrec: Letrec
    source: str = ""

    @property
    def bindings(self) -> tuple[Binding, ...]:
        return self.letrec.bindings

    @property
    def body(self) -> Expr:
        return self.letrec.body

    def binding(self, name: str) -> Binding:
        return self.letrec.find(name)

    def binding_names(self) -> tuple[str, ...]:
        return self.letrec.binding_names()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self.letrec == other.letrec

    def __hash__(self) -> int:
        return hash(self.letrec)


# ---------------------------------------------------------------------------
# Generic traversals
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every subexpression, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def free_vars(expr: Expr) -> frozenset[str]:
    """The free identifiers of ``expr``.

    Primitives are constants, not identifiers, so they never appear here.
    """
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Lambda):
        return free_vars(expr.body) - {expr.param}
    if isinstance(expr, Letrec):
        bound = set(expr.binding_names())
        result: set[str] = set()
        for child in expr.children():
            result |= free_vars(child)
        return frozenset(result - bound)
    result = frozenset()
    for child in expr.children():
        result |= free_vars(child)
    return result


def transform(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewrite: apply ``fn`` to every node (children first).

    ``fn`` returns a replacement node or ``None`` to keep the (possibly
    child-rewritten) node.
    """
    children = expr.children()
    if children:
        new_children = tuple(transform(child, fn) for child in children)
        if any(new is not old for new, old in zip(new_children, children)):
            expr = expr.with_children(new_children)
    replacement = fn(expr)
    return expr if replacement is None else replacement


def count_nodes(expr: Expr) -> int:
    """Number of AST nodes in ``expr``."""
    return sum(1 for _ in walk(expr))


def clone(expr: Expr) -> Expr:
    """A deep copy with fresh uids and copied annotation dicts.

    Transformations clone before rewriting so annotation stamps (allocation
    hints) and type re-inference never leak between program variants that
    would otherwise share subtrees.
    """
    if isinstance(expr, IntLit):
        return IntLit(span=expr.span, ty=expr.ty, annotations=dict(expr.annotations), value=expr.value)
    if isinstance(expr, BoolLit):
        return BoolLit(span=expr.span, ty=expr.ty, annotations=dict(expr.annotations), value=expr.value)
    if isinstance(expr, NilLit):
        return NilLit(span=expr.span, ty=expr.ty, annotations=dict(expr.annotations))
    if isinstance(expr, Prim):
        return Prim(span=expr.span, ty=expr.ty, annotations=dict(expr.annotations), name=expr.name)
    if isinstance(expr, Var):
        return Var(span=expr.span, ty=expr.ty, annotations=dict(expr.annotations), name=expr.name)
    if isinstance(expr, App):
        return App(
            span=expr.span, ty=expr.ty, annotations=dict(expr.annotations),
            fn=clone(expr.fn), arg=clone(expr.arg),
        )
    if isinstance(expr, Lambda):
        return Lambda(
            span=expr.span, ty=expr.ty, annotations=dict(expr.annotations),
            param=expr.param, body=clone(expr.body),
        )
    if isinstance(expr, If):
        return If(
            span=expr.span, ty=expr.ty, annotations=dict(expr.annotations),
            cond=clone(expr.cond), then=clone(expr.then), otherwise=clone(expr.otherwise),
        )
    if isinstance(expr, Letrec):
        return Letrec(
            span=expr.span, ty=expr.ty, annotations=dict(expr.annotations),
            bindings=tuple(Binding(b.name, clone(b.expr), b.span) for b in expr.bindings),
            body=clone(expr.body),
        )
    raise TypeError(f"cannot clone {type(expr).__name__}")


def clone_program(program: Program) -> Program:
    cloned = clone(program.letrec)
    assert isinstance(cloned, Letrec)
    return Program(letrec=cloned, source=program.source)


def rename_var(expr: Expr, old: str, new: str) -> Expr:
    """Rename free occurrences of ``old`` to ``new`` (capture-aware)."""

    def go(node: Expr, shadowed: frozenset[str]) -> Expr:
        if isinstance(node, Var):
            if node.name == old and old not in shadowed:
                return Var(span=node.span, ty=node.ty, annotations=dict(node.annotations), name=new)
            return node
        if isinstance(node, Lambda):
            inner = shadowed | {node.param}
            body = go(node.body, inner)
            return node if body is node.body else node.with_children((body,))
        if isinstance(node, Letrec):
            inner = shadowed | set(node.binding_names())
            children = node.children()
            rebuilt = tuple(go(child, inner) for child in children)
            if all(a is b for a, b in zip(rebuilt, children)):
                return node
            return node.with_children(rebuilt)
        children = node.children()
        if not children:
            return node
        rebuilt = tuple(go(child, shadowed) for child in children)
        if all(a is b for a, b in zip(rebuilt, children)):
            return node
        return node.with_children(rebuilt)

    return go(expr, frozenset())


# ---------------------------------------------------------------------------
# Construction helpers (used by the parser, prelude, and optimizers)
# ---------------------------------------------------------------------------


def apply_n(fn: Expr, *args: Expr, span: SourceSpan = NO_SPAN) -> Expr:
    """Curried application ``fn a1 a2 ... an``."""
    result = fn
    for arg in args:
        result = App(span=span, fn=result, arg=arg)
    return result


def lambda_n(params: list[str], body: Expr, span: SourceSpan = NO_SPAN) -> Expr:
    """Nested lambdas ``lambda(p1). ... lambda(pn). body``."""
    result = body
    for param in reversed(params):
        result = Lambda(span=span, param=param, body=result)
    return result


def cons_list(elements: list[Expr], span: SourceSpan = NO_SPAN) -> Expr:
    """Desugar ``[e1, ..., en]`` into ``cons e1 (... (cons en nil))``."""
    result: Expr = NilLit(span=span)
    for element in reversed(elements):
        result = apply_n(Prim(span=span, name="cons"), element, result, span=span)
    return result


def uncurry_lambda(expr: Expr) -> tuple[list[str], Expr]:
    """Split nested lambdas into their parameter list and innermost body."""
    params: list[str] = []
    while isinstance(expr, Lambda):
        params.append(expr.param)
        expr = expr.body
    return params, expr


def uncurry_app(expr: Expr) -> tuple[Expr, list[Expr]]:
    """Split a curried application into its head and argument list."""
    args: list[Expr] = []
    while isinstance(expr, App):
        args.append(expr.arg)
        expr = expr.fn
    args.reverse()
    return expr, args
