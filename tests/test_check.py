"""Tests for :mod:`repro.check` — the diagnostic framework, the nml lint
pass, the optimization auditor (including the fault-injected unsound-DCONS
catch), the machine-code verifier, pass containment, and the ``repro
check`` / ``repro batch --check`` CLI surface with its exit-code taxonomy.
"""

from __future__ import annotations

import json

import pytest

from repro.check import CHECK_PASSES, REGISTRY, check_program
from repro.check.audit import audit_program
from repro.check.diagnostics import (
    CheckReport,
    CheckSeverity,
    Diagnostic,
    Rule,
    RuleRegistry,
)
from repro.check.lint import lint_program
from repro.cli import EXIT_ERROR, EXIT_FINDINGS, EXIT_OK, main
from repro.lang.ast import App, Prim, uncurry_app, walk
from repro.lang.errors import NO_SPAN
from repro.lang.parser import parse_program
from repro.lang.prelude import paper_partition_sort, prelude_source
from repro.machine.compiler import compile_program
from repro.machine.instructions import (
    Apply,
    Branch,
    EnvRestore,
    LetrecEnter,
    Load,
    PushBool,
    PushInt,
    RegionOpen,
    Store,
)
from repro.machine.verify import verify_code, verify_program_code
from repro.opt.pipeline import (
    paper_ps_double_prime,
    paper_ps_prime,
    paper_rev_prime,
    paper_stack_allocated,
)
from repro.opt.reuse import make_reuse_specialization
from repro.robust.faults import FaultPlan, inject

APPEND = "append x y = if (null x) then y else cons (car x) (append (cdr x) y);\n"


def rule_ids(diagnostics):
    return [d.rule.id for d in diagnostics]


def check_src(source: str, passes=None) -> CheckReport:
    return check_program(parse_program(source), passes=passes)


class TestDiagnosticsFramework:
    def test_registry_rejects_duplicate_ids(self):
        registry = RuleRegistry()
        rule = Rule("X001", "a", CheckSeverity.ERROR, "lint", "s")
        registry.register(rule)
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(Rule("X001", "b", CheckSeverity.HINT, "lint", "t"))

    def test_global_registry_covers_every_pass(self):
        passes = {rule.pass_name for rule in REGISTRY.all()}
        assert passes == {"check", "lint", "audit", "machine"}
        table = REGISTRY.table()
        for rule in REGISTRY.all():
            assert rule.id in table

    def test_severity_ordering(self):
        assert CheckSeverity.HINT.rank < CheckSeverity.WARNING.rank
        assert CheckSeverity.WARNING.rank < CheckSeverity.ERROR.rank

    def test_diagnostic_format_and_json(self):
        rule = REGISTRY.get("AUD003")
        program = parse_program("id x = x;")
        span = program.bindings[0].expr.span
        diagnostic = Diagnostic(rule, "boom", span=span, context="id")
        text = diagnostic.format()
        assert "AUD003" in text and "error" in text and "[id]" in text
        doc = diagnostic.to_json()
        assert doc["rule"] == "AUD003"
        assert doc["pass"] == "audit"
        assert doc["span"]["line"] == span.line

    def test_report_ok_counts_and_ordering(self):
        report = CheckReport(path="p.nml")
        report.add(Diagnostic(REGISTRY.get("AUD008"), "hint"))
        assert report.ok and report.counts() == {"error": 0, "warning": 0, "hint": 1}
        report.add(Diagnostic(REGISTRY.get("AUD003"), "error"))
        assert not report.ok
        assert rule_ids(report.sorted_diagnostics()) == ["AUD003", "AUD008"]
        assert "p.nml: 1 error(s), 0 warning(s), 1 hint(s)" in report.render()

    def test_crashed_pass_makes_report_not_ok(self):
        report = CheckReport()
        report.pass_errors["audit"] = "KeyError: 'y'"
        assert not report.ok


class TestLint:
    def test_clean_program(self):
        report = check_src(APPEND + "append [1] [2]", passes=["lint"])
        assert report.diagnostics == []

    def test_shadowed_parameter(self):
        found = lint_program(parse_program("f x = (lambda x. x) 1;\nf 2"))
        assert rule_ids(found) == ["LNT001"]
        assert found[0].span != NO_SPAN

    def test_shadowed_inner_binding(self):
        source = "f x = letrec f = lambda y. y in f x;\nf 1"
        assert "LNT001" in rule_ids(lint_program(parse_program(source)))

    def test_unused_inner_binding(self):
        source = "g x = letrec dead = cons 1 nil in x;\ng 5"
        found = lint_program(parse_program(source))
        assert rule_ids(found) == ["LNT002"]
        assert "dead" in found[0].message

    def test_top_level_bindings_exempt_from_unused(self):
        source = APPEND + "42"
        assert lint_program(parse_program(source)) == []

    def test_unreachable_branch(self):
        found = lint_program(parse_program("f x = if true then x else x + 1;\nf 1"))
        assert rule_ids(found) == ["LNT003"]
        assert "else branch" in found[0].message

    def test_non_productive_recursion(self):
        found = lint_program(parse_program("loop x = loop x;\nloop 1"))
        assert rule_ids(found) == ["LNT004"]

    def test_base_case_is_productive(self):
        source = "down x = if x == 0 then 0 else down (x - 1);\ndown 3"
        assert lint_program(parse_program(source)) == []

    def test_primitive_over_application(self):
        found = lint_program(parse_program("f x = (car x) 1 2;\nf [1]"))
        assert "LNT005" in rule_ids(found)


class TestAudit:
    def test_paper_artifacts_audit_clean(self):
        # The auditor certifies every transformed paper program: zero
        # error-severity findings across PS', PS'', REV', stack-allocated PS.
        for label, program in [
            ("PS'", paper_ps_prime().program),
            ("PS''", paper_ps_double_prime().program),
            ("REV'", paper_rev_prime().program),
            ("PS+stack", paper_stack_allocated().program),
        ]:
            found = audit_program(program)
            errors = [d for d in found if d.severity is CheckSeverity.ERROR]
            assert errors == [], f"{label}: {[d.format() for d in errors]}"

    def test_untransformed_program_yields_hints(self):
        found = audit_program(paper_partition_sort())
        assert all(d.severity is not CheckSeverity.ERROR for d in found)
        assert "AUD008" in rule_ids(found)  # append's licensed reuse, unused

    def test_donor_not_a_variable(self):
        found = audit_program(
            parse_program("f x = dcons (cons 1 nil) 2 x;\nf [1]")
        )
        assert "AUD001" in rule_ids(found)

    def test_donor_not_a_parameter(self):
        found = audit_program(
            parse_program("f x = letrec y = cons 1 nil in dcons y 2 x;\nf [1]")
        )
        assert rule_ids(found) == ["AUD002"]

    def test_donor_used_after_reuse(self):
        source = APPEND + "f x = append (dcons x 1 nil) x;\nf [1, 2]"
        ids = rule_ids(audit_program(parse_program(source)))
        assert "AUD004" in ids

    def test_double_reuse_on_one_path(self):
        source = APPEND + "f x = append (dcons x 1 nil) (dcons x 2 nil);\nf [1, 2]"
        ids = rule_ids(audit_program(parse_program(source)))
        assert "AUD005" in ids

    def test_sound_handwritten_dcons(self):
        # The append-reuse shape, handwritten: donor's spine never escapes
        # (on the erased program), donor dead after the site.
        source = (
            "app2 x y = if (null x) then y"
            " else dcons x (car x) (app2 (cdr x) y);\napp2 [1, 2] [3]"
        )
        found = audit_program(parse_program(source))
        assert all(d.severity is not CheckSeverity.ERROR for d in found)

    def test_injected_unsound_reuse_is_caught_statically(self):
        # The tentpole demonstration: an injected compiler bug skips the
        # escape gate and recycles append's SECOND parameter — whose spine
        # escapes into the result.  The auditor, re-deriving facts on the
        # dcons-erased program, reports it as an error at the original
        # cons site's span, without ever running the program.
        program = paper_partition_sort()
        with inject(FaultPlan(unsound_reuse_at=1)) as injector:
            bad = make_reuse_specialization(
                program, "append", 2, new_name="append_bad"
            ).program
        assert injector.fired == ["unsound_reuse@1"]

        dcons_sites = [
            node
            for node in walk(bad.binding("append_bad").expr)
            if isinstance(node, App)
            and isinstance(uncurry_app(node)[0], Prim)
            and uncurry_app(node)[0].name == "dcons"
            and len(uncurry_app(node)[1]) == 3  # the saturated site only
        ]
        assert len(dcons_sites) == 1

        found = audit_program(bad)
        errors = [d for d in found if d.severity is CheckSeverity.ERROR]
        assert rule_ids(errors) == ["AUD003"]
        assert errors[0].context == "append_bad"
        assert errors[0].span == dcons_sites[0].span
        assert errors[0].span != NO_SPAN

    def test_sharing_obligation_warning(self):
        # PS'' carries the one statically-undischargeable obligation: the
        # argument fed to ps_reuse's donor comes from car (split ...).
        found = audit_program(paper_ps_double_prime().program)
        warnings = [d for d in found if d.severity is CheckSeverity.WARNING]
        assert warnings and all(d.rule.id == "AUD006" for d in warnings)
        assert all("ps_reuse" in d.message for d in warnings)


class TestMachineVerifier:
    def test_compiled_paper_programs_verify_clean(self):
        for program in [
            paper_partition_sort(),
            paper_ps_double_prime().program,
            paper_stack_allocated().program,
        ]:
            assert verify_program_code(compile_program(program)) == []

    def test_stack_underflow(self):
        found = verify_code((Apply(),))
        ids = rule_ids(found)
        assert "MCH001" in ids
        assert any("code[0]" in d.context for d in found)

    def test_block_effect(self):
        found = verify_code((PushInt(1), PushInt(2)))
        assert rule_ids(found) == ["MCH002"]

    def test_dead_slot_read(self):
        code = (
            LetrecEnter(("x",)),
            PushInt(1),
            Store("x"),
            EnvRestore(),
            Load("x"),
        )
        found = verify_code(code)
        assert "MCH003" in rule_ids(found)
        assert any("code[4]" in d.context for d in found)

    def test_env_underflow(self):
        found = verify_code((PushInt(1), EnvRestore()))
        assert "MCH004" in rule_ids(found)

    def test_store_outside_frame(self):
        found = verify_code((PushInt(1), Store("x"), PushInt(2)))
        assert "MCH005" in rule_ids(found)

    def test_malformed_code(self):
        found = verify_code((PushInt(1), "not an instruction"))
        assert "MCH006" in rule_ids(found)

    def test_region_imbalance(self):
        found = verify_code((RegionOpen("stack"), PushInt(1)))
        assert "MCH007" in rule_ids(found)

    def test_branch_arms_verified_independently(self):
        code = (PushBool(True), Branch((PushInt(1),), (Apply(),)))
        found = verify_code(code)
        assert any("else" in d.context for d in found)


class TestCheckProgram:
    def test_runs_all_passes_by_default(self):
        report = check_program(paper_partition_sort(), path="ps.nml")
        assert set(report.pass_timings) == set(CHECK_PASSES)
        assert report.path == "ps.nml"
        assert report.ok

    def test_pass_subset(self):
        report = check_program(paper_partition_sort(), passes=["lint"])
        assert set(report.pass_timings) == {"lint"}

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown check pass"):
            check_program(paper_partition_sort(), passes=["spellcheck"])

    def test_crashing_pass_is_contained(self, monkeypatch):
        def explode(program):
            raise RuntimeError("boom")

        monkeypatch.setitem(CHECK_PASSES, "audit", explode)
        report = check_program(paper_partition_sort())
        assert report.pass_errors == {"audit": "RuntimeError: boom"}
        assert not report.ok
        assert "CHK001" in rule_ids(report.diagnostics)
        # The other passes still ran and timed.
        assert set(report.pass_timings) == set(CHECK_PASSES)

    def test_findings_emit_obs_events(self):
        from repro.obs import RingBufferSink, Tracer, activate

        sink = RingBufferSink(capacity=None)
        with activate(Tracer([sink])):
            check_program(paper_partition_sort(), passes=["audit"])
        fired = [e for e in sink.events if e["type"] == "check_rule_fired"]
        assert fired  # at least the AUD008/AUD009 hints
        assert all(e["pass"] == "audit" for e in fired)
        spans = [
            e
            for e in sink.events
            if e["type"] == "span_end" and e.get("name") == "check:audit"
        ]
        assert spans  # the per-pass span timing


class TestCheckCLI:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.nml"
        path.write_text(prelude_source(["append"], "append [1] [2]"))
        assert main(["check", str(path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_error_findings_exit_four(self, capsys):
        source = "f x = dcons (cons 1 nil) 2 x; f [1]"
        assert main(["check", "-e", source]) == EXIT_FINDINGS
        assert "AUD001" in capsys.readouterr().out

    def test_parse_failure_exits_one(self, capsys):
        assert main(["check", "-e", "f x = ((("]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_missing_file_exits_one(self, capsys):
        assert main(["check", "/nonexistent/x.nml"]) == EXIT_ERROR

    def test_rules_table(self, capsys):
        assert main(["check", "--rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule_id in ["AUD003", "LNT001", "MCH001", "CHK001"]:
            assert rule_id in out

    def test_json_document(self, capsys):
        source = "f x = dcons (cons 1 nil) 2 x; f [1]"
        assert main(["check", "-e", source, "--json"]) == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["totals"]["error"] >= 1
        [entry] = doc["files"]
        assert entry["ok"] is False
        matching = [d for d in entry["diagnostics"] if d["rule"] == "AUD001"]
        assert matching and matching[0]["span"]["line"] == 1
        assert set(entry["pass_timings"]) == {"lint", "audit", "machine"}

    def test_pass_filter(self, capsys):
        source = "f x = dcons (cons 1 nil) 2 x; f [1]"
        assert main(["check", "-e", source, "--pass", "lint", "--json"]) == EXIT_OK
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["files"][0]["pass_timings"]) == {"lint"}

    def test_exit_taxonomy_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for marker in ["0 ", "1 ", "3 ", "4 "]:
            assert marker in out
        assert "exit codes" in out.lower()


class TestBatchCheck:
    def test_batch_check_folds_counts(self, tmp_path, capsys):
        good = tmp_path / "good.nml"
        good.write_text(prelude_source(["append"], "append [1] [2]"))
        bad = tmp_path / "bad.nml"
        bad.write_text("f x = dcons (cons 1 nil) 2 x;\nf [1]")
        code = main(
            ["batch", str(tmp_path), "--check", "--no-store", "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == EXIT_FINDINGS
        by_name = {entry["path"].rsplit("/", 1)[-1]: entry for entry in doc["files"]}
        assert by_name["bad.nml"]["check"]["error"] >= 1
        assert by_name["good.nml"]["check"]["error"] == 0
        assert doc["totals"]["check_error"] >= 1

    def test_batch_without_check_has_no_counts(self, tmp_path, capsys):
        good = tmp_path / "good.nml"
        good.write_text(prelude_source(["append"], "append [1] [2]"))
        assert main(["batch", str(tmp_path), "--no-store", "--json"]) == EXIT_OK
        doc = json.loads(capsys.readouterr().out)
        assert "check" not in doc["files"][0]

    def test_batch_clean_check_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.nml"
        good.write_text(prelude_source(["append"], "append [1] [2]"))
        assert (
            main(["batch", str(tmp_path), "--check", "--no-store"]) == EXIT_OK
        )
        assert "check 0 error(s)" in capsys.readouterr().out
