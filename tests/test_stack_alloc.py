"""Stack allocation (§A.3.1) tests."""

import pytest

from repro.lang.errors import OptimizationError, UseAfterFreeError
from repro.lang.prelude import prelude_program
from repro.opt.stack_alloc import stack_allocate_body
from repro.semantics.interp import run_program


class TestPaperScenario:
    def test_ps_literal_spine_goes_to_stack(self, partition_sort):
        result = stack_allocate_body(partition_sort)
        assert result.annotated_sites == 6  # the 6 top-spine cells
        assert result.prefixes == {1: 1}

    def test_optimized_result_unchanged(self, partition_sort):
        result = stack_allocate_body(partition_sort)
        assert run_program(result.program)[0] == run_program(partition_sort)[0]

    def test_heap_traffic_reduced_by_literal_cells(self, partition_sort):
        _, baseline = run_program(partition_sort)
        optimized = stack_allocate_body(partition_sort)
        _, metrics = run_program(optimized.program)
        assert metrics.region_allocs == 6
        assert metrics.stack_reclaimed == 6
        assert metrics.heap_allocs == baseline.heap_allocs - 6

    def test_input_program_not_mutated(self, partition_sort):
        stack_allocate_body(partition_sort)
        _, metrics = run_program(partition_sort)
        assert metrics.region_allocs == 0


class TestNestedSpines:
    def test_map_pair_both_spines_stack_allocated(self, map_pair):
        # §1: "the spine of [[1,2],[3,4],[5,6]] and the spine of each
        # element could be allocated in the activation record for map"
        result = stack_allocate_body(map_pair)
        assert result.prefixes == {2: 2}
        # 3 outer + 6 inner cells
        assert result.annotated_sites == 9
        output, metrics = run_program(result.program)
        assert output == [3, 7, 11]
        assert metrics.stack_reclaimed == 9

    def test_partial_prefix_limits_depth(self):
        # heads keeps the inner lists' elements, tails_tops keeps inner
        # cells: only the outer spine is safe for tails_tops.
        program = prelude_program(["heads"], "heads [[1, 2], [3, 4]]")
        result = stack_allocate_body(program)
        output, metrics = run_program(result.program)
        assert output == [1, 3]
        assert metrics.stack_reclaimed == result.annotated_sites


class TestRefusals:
    def test_escaping_argument_refused(self):
        # drop returns its argument's cells: nothing stack-allocatable
        program = prelude_program(["drop"], "drop 1 [1, 2, 3]")
        with pytest.raises(OptimizationError):
            stack_allocate_body(program)

    def test_non_application_body_refused(self):
        program = prelude_program(["length"], "")
        with pytest.raises(OptimizationError):
            stack_allocate_body(program)

    def test_opaque_argument_refused(self):
        # the argument is produced by a call: no visible cons chain
        program = prelude_program(["ps", "create_list"], "ps (create_list 5)")
        with pytest.raises(OptimizationError):
            stack_allocate_body(program)


class TestSafetyNet:
    def test_unsound_manual_annotation_is_caught(self):
        # Manually stack-allocate the argument of drop (which escapes):
        # the region close must detect the leak.
        from repro.lang.ast import App, Prim, uncurry_app, walk

        program = prelude_program(["drop"], "drop 1 [1, 2, 3]")
        body = program.body
        for node in walk(body):
            if isinstance(node, Prim) and node.name == "cons":
                node.annotations["alloc"] = "region"
        body.annotations["region"] = {"kind": "stack", "label": "bogus"}
        with pytest.raises(UseAfterFreeError):
            run_program(program)
