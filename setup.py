"""Legacy setup shim: the sandbox has no `wheel` package and no network, so
PEP 660 editable installs fail; `python setup.py develop` still works."""
from setuptools import setup

setup()
