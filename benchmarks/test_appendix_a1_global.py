"""A1b — Appendix A.1: the global escape table for the partition sort.

The paper's computed values, regenerated exactly:

    G(APPEND, 1) = <1,0>   G(APPEND, 2) = <1,1>
    G(SPLIT, 1)  = <0,0>   G(SPLIT, 2)  = <1,0>
    G(SPLIT, 3)  = <1,1>   G(SPLIT, 4)  = <1,1>
    G(PS, 1)     = <1,0>
"""

from repro.bench.tables import print_table
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.report import global_table
from repro.lang.prelude import paper_partition_sort

PAPER_TABLE = {
    ("append", 1): "<1,0>",
    ("append", 2): "<1,1>",
    ("split", 1): "<0,0>",
    ("split", 2): "<1,0>",
    ("split", 3): "<1,1>",
    ("split", 4): "<1,1>",
    ("ps", 1): "<1,0>",
}


def test_a1_global_table(benchmark):
    program = paper_partition_sort()
    rows = benchmark(global_table, program)

    computed = {(r.function, r.param_index): str(r.result) for r in rows}
    assert computed == PAPER_TABLE

    print_table(
        ["G(f, i)", "paper", "computed", "interpretation"],
        [
            [
                f"G({fn}, {i})",
                PAPER_TABLE[(fn, i)],
                computed[(fn, i)],
                next(r for r in rows if (r.function, r.param_index) == (fn, i)).describe(),
            ]
            for (fn, i) in sorted(PAPER_TABLE)
        ],
        title="Appendix A.1 global escape table",
    )


def test_a1_single_query_latency(benchmark):
    program = paper_partition_sort()
    analysis = EscapeAnalysis(program)
    result = benchmark(analysis.global_test, "ps", 1)
    assert str(result.result) == "<1,0>"


def test_a1_conclusions(benchmark):
    program = paper_partition_sort()

    def conclusions():
        analysis = EscapeAnalysis(program)
        return {
            "append_keeps_top_spine": analysis.global_test("append", 1).non_escaping_spines,
            "append_y_all_escapes": analysis.global_test("append", 2).escaping_spines,
            "split_p_none": analysis.global_test("split", 1).nothing_escapes,
            "ps_keeps_top_spine": analysis.global_test("ps", 1).non_escaping_spines,
        }

    result = benchmark(conclusions)
    # "APPEND returns all of its second argument y, and all but the top
    # spine of the first argument x" / "PS returns all but the top spine".
    assert result == {
        "append_keeps_top_spine": 1,
        "append_y_all_escapes": 1,
        "split_p_none": True,
        "ps_keeps_top_spine": 1,
    }
