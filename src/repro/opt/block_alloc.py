"""Block allocation / reclamation (§A.3.3 — the "local heap").

For a result expression ``f (g args)`` where ``g`` builds a list whose top
spines do not escape ``f``: the list cannot go in ``f``'s activation record
(it is built before the activation exists), but ``g``'s spine cells can be
placed together in a *block* of memory.  When ``f`` returns, the whole
block goes back to the free list at once — reclaiming the cells without the
garbage collector ever traversing them.

Mechanically: a specialized producer ``g_block`` is created whose
result-spine ``cons`` sites allocate into the innermost open region, the
body call is redirected to it, and the whole body is annotated with a
*block* region that closes (freeing everything, with an escape check) when
the consumer returns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeResults
from repro.lang.ast import (
    App,
    Binding,
    Expr,
    Letrec,
    Prim,
    Program,
    Var,
    clone,
    clone_program,
    rename_var,
    uncurry_app,
    uncurry_lambda,
    walk,
)
from repro.lang.errors import OptimizationError
from repro.types.infer import infer_program
from repro.types.types import TFun, Type, fun_args, spines


@dataclass
class BlockAllocResult:
    program: Program
    producer: str
    new_name: str
    annotated_sites: int
    consumer_prefix: int


def _result_spine_cons_sites(body: Expr, result_type: Type) -> list[Prim]:
    """The cons sites that build the producer's *result* spines: saturated
    ``cons`` whose constructed list type has the same spine count as the
    producer's result (the top spine from the result's point of view)."""
    wanted = spines(result_type)
    sites: list[Prim] = []
    for node in walk(body):
        if not isinstance(node, App):
            continue
        head, args = uncurry_app(node)
        if isinstance(head, Prim) and head.name == "cons" and len(args) == 2:
            if node.ty is not None and spines(node.ty) == wanted:
                sites.append(head)
    return sites


def block_allocate_producer(
    program: Program,
    producer: str,
    new_name: str | None = None,
    analysis: EscapeResults | None = None,
) -> BlockAllocResult:
    """Apply §A.3.3 to the program's result expression.

    Finds the application of ``producer`` among the body call's arguments,
    verifies with the local escape test that the produced list's top spine
    does not escape the consumer, and returns a rewritten copy of the
    program using a block-allocating specialization of the producer.
    """
    program = clone_program(program)
    new_name = new_name or f"{producer}_block"
    if new_name in program.binding_names():
        raise OptimizationError(f"{new_name!r} already exists in the program")
    if producer not in program.binding_names():
        raise OptimizationError(f"{producer!r} is not defined in the program")

    body = program.body
    _, args = uncurry_app(body)
    if not args:
        raise OptimizationError("program body is not a function application")

    producer_positions = [
        j
        for j, arg in enumerate(args, start=1)
        if isinstance(arg, App)
        and isinstance(uncurry_app(arg)[0], Var)
        and uncurry_app(arg)[0].name == producer  # type: ignore[union-attr]
    ]
    if not producer_positions:
        raise OptimizationError(
            f"the body call has no argument produced by {producer!r}"
        )

    analysis = analysis or EscapeAnalysis(program)
    results = analysis.local_test(body)
    target = None
    for j in producer_positions:
        result = results[j - 1]
        if result.param_spines >= 1 and result.non_escaping_spines >= 1:
            target = result
            break
    if target is None:
        raise OptimizationError(
            f"every spine of {producer!r}'s product may escape the consumer; "
            "block reclamation would free live cells"
        )

    # Ensure the producer's nodes carry types (the local test re-inferred
    # the program variant, which annotates this program's shared bindings).
    infer_program(program)

    binding = program.binding(producer)
    specialized = clone(binding.expr)
    params, spec_body = uncurry_lambda(specialized)
    assert binding.expr.ty is not None
    result_type = fun_args(binding.expr.ty)[1]
    if spines(result_type) < 1:
        raise OptimizationError(f"{producer!r} does not return a list")

    spec_body = rename_var(spec_body, producer, new_name)
    sites = _result_spine_cons_sites(spec_body, result_type)
    if not sites:
        raise OptimizationError(
            f"{producer!r} has no visible cons site building its result spine"
        )
    for site in sites:
        site.annotations["alloc"] = "region"

    from repro.lang.ast import lambda_n

    new_binding = Binding(new_name, lambda_n(params, spec_body, span=specialized.span))
    new_body = rename_var(program.body, producer, new_name)
    new_body.annotations["region"] = {"kind": "block", "label": producer}
    new_letrec = Letrec(
        span=program.letrec.span,
        bindings=program.bindings + (new_binding,),
        body=new_body,
    )
    return BlockAllocResult(
        program=Program(letrec=new_letrec, source=program.source),
        producer=producer,
        new_name=new_name,
        annotated_sites=len(sites),
        consumer_prefix=target.non_escaping_spines,
    )
