"""repro — a full reproduction of *Escape Analysis on Lists*
(Young Gil Park and Benjamin Goldberg, PLDI 1992).

The package provides, end to end:

* the paper's language **nml** (lexer, parser, Hindley-Milner types)
  — :mod:`repro.lang`, :mod:`repro.types`;
* its standard semantics on an instrumented heap with regions and a
  mark-sweep GC — :mod:`repro.semantics`;
* the exact and abstract **escape semantics**, the global/local escape
  tests, and polymorphic invariance — :mod:`repro.escape`;
* **sharing analysis** from escape information — :mod:`repro.analysis`;
* the three storage **optimizations**: in-place reuse (DCONS), stack
  allocation, block allocation/reclamation — :mod:`repro.opt`.

Quickstart::

    from repro import analyze, parse_program

    program = parse_program('''
        append x y = if (null x) then y
                     else cons (car x) (append (cdr x) y);
        append [1, 2] [3]
    ''')
    analysis = analyze(program)
    print(analysis.global_test("append", 1).describe())
"""

from repro.analysis import sharing_global, sharing_local
from repro.escape import (
    BeChain,
    EscapeAnalysis,
    Escapement,
    EscapeTestResult,
    EscapeValue,
    Source,
    analysis_report,
    check_invariance,
    exact_escape,
    observe_escape,
)
from repro.lang import (
    NmlError,
    Program,
    paper_map_pair,
    paper_partition_sort,
    parse_expr,
    parse_program,
    prelude_program,
    pretty,
    pretty_program,
)
from repro.machine import Machine, run_compiled
from repro.opt import (
    apply_plan,
    block_allocate_producer,
    make_reuse_specialization,
    plan_optimizations,
    stack_allocate_body,
)
from repro.semantics import Interpreter, StorageMetrics, run_program
from repro.types import infer_program

__version__ = "1.0.0"


def analyze(program_or_source: "Program | str", **kwargs) -> EscapeAnalysis:
    """Build an :class:`EscapeAnalysis` from a program or source text."""
    program = (
        parse_program(program_or_source)
        if isinstance(program_or_source, str)
        else program_or_source
    )
    return EscapeAnalysis(program, **kwargs)


__all__ = [
    "analyze", "sharing_global", "sharing_local", "BeChain",
    "EscapeAnalysis", "Escapement", "EscapeTestResult", "EscapeValue",
    "Source", "analysis_report", "check_invariance", "exact_escape",
    "observe_escape", "NmlError", "Program", "paper_map_pair",
    "paper_partition_sort", "parse_expr", "parse_program", "prelude_program",
    "pretty", "pretty_program", "block_allocate_producer",
    "make_reuse_specialization", "stack_allocate_body", "Interpreter",
    "Machine", "run_compiled", "apply_plan", "plan_optimizations",
    "StorageMetrics", "run_program", "infer_program", "__version__",
]
