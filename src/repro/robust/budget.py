"""Analysis budgets: wall-clock deadlines and work limits.

An :class:`AnalysisBudget` is immutable configuration — how much a query is
*allowed* to spend.  Calling :meth:`AnalysisBudget.start` produces a
:class:`BudgetMeter`, the mutable runtime companion that is threaded through
:class:`~repro.escape.abstract.AbstractEvaluator` and
:class:`~repro.escape.analyzer.EscapeAnalysis`.  The evaluator ticks the
meter on every abstract-evaluation step and every fixpoint iteration; a
breach raises the matching :class:`~repro.robust.errors.BudgetExceeded`
subtype, which the hardened engine turns into a sound ``W^τ`` degradation.

The deadline is checked on every fixpoint iteration and every
``DEADLINE_CHECK_STRIDE``-th evaluation step, so the clock is read rarely
enough not to dominate small analyses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.robust.errors import (
    BudgetSpent,
    DeadlineExceeded,
    IterationBudgetExceeded,
    WorkBudgetExceeded,
)

#: Evaluation steps between wall-clock reads.
DEADLINE_CHECK_STRIDE = 64


@dataclass(frozen=True)
class AnalysisBudget:
    """Limits for one analysis query.  ``None`` means unlimited.

    * ``deadline_s`` — wall-clock seconds from :meth:`start`;
    * ``max_fixpoint_iterations`` — total letrec fixpoint iterations
      (summed over every solve the query performs);
    * ``max_eval_steps`` — total abstract-evaluation steps.
    """

    deadline_s: float | None = None
    max_fixpoint_iterations: int | None = None
    max_eval_steps: int | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_s is None
            and self.max_fixpoint_iterations is None
            and self.max_eval_steps is None
        )

    def start(self) -> "BudgetMeter":
        return BudgetMeter(self)

    def __str__(self) -> str:
        parts = []
        if self.deadline_s is not None:
            parts.append(f"deadline {self.deadline_s * 1000:.0f}ms")
        if self.max_fixpoint_iterations is not None:
            parts.append(f"≤{self.max_fixpoint_iterations} iteration(s)")
        if self.max_eval_steps is not None:
            parts.append(f"≤{self.max_eval_steps} eval step(s)")
        return ", ".join(parts) or "unlimited"


class BudgetMeter:
    """The running spend of one query against its budget.

    One meter spans one *query* (which may solve several fixpoints: the
    analyzer re-solves per monotype instance), so budgets bound the total
    work a caller waits on, not one internal phase.
    """

    __slots__ = ("budget", "started_at", "eval_steps", "iterations")

    def __init__(self, budget: AnalysisBudget):
        self.budget = budget
        self.started_at = time.monotonic()
        self.eval_steps = 0
        self.iterations = 0

    # -- spend accounting --------------------------------------------------

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def spent(self) -> BudgetSpent:
        return BudgetSpent(
            wall_seconds=self.elapsed(),
            eval_steps=self.eval_steps,
            iterations=self.iterations,
        )

    # -- checks ------------------------------------------------------------

    def check_deadline(self) -> None:
        deadline = self.budget.deadline_s
        if deadline is not None and self.elapsed() > deadline:
            raise DeadlineExceeded(
                f"analysis deadline of {deadline * 1000:.0f}ms exceeded "
                f"after {self.eval_steps} eval step(s)"
            )

    def tick_eval(self) -> None:
        """One abstract-evaluation step."""
        self.eval_steps += 1
        limit = self.budget.max_eval_steps
        if limit is not None and self.eval_steps > limit:
            raise WorkBudgetExceeded(
                f"abstract-evaluation budget of {limit} step(s) exhausted"
            )
        if self.eval_steps % DEADLINE_CHECK_STRIDE == 0:
            self.check_deadline()

    def tick_iteration(self) -> None:
        """One letrec fixpoint iteration (all bindings re-evaluated once)."""
        self.check_deadline()
        self.iterations += 1
        limit = self.budget.max_fixpoint_iterations
        if limit is not None and self.iterations > limit:
            raise IterationBudgetExceeded(
                f"fixpoint-iteration budget of {limit} exhausted before convergence"
            )
