"""The query engine (:mod:`repro.query`): solve/SCC caching, per-query
stats, AST isolation (the local-test sharing hazard), and session reuse
across facades and the hardened engine."""

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.lang.errors import AnalysisError
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.query import AnalysisSession
from repro.robust.budget import AnalysisBudget
from repro.robust.engine import HardenedAnalysis
from repro.types.types import INT, TFun, TList

DEEP_APPEND = TFun(TList(TList(INT)), TFun(TList(TList(INT)), TList(TList(INT))))


class TestSolveCache:
    def test_identical_solves_share_the_solved_program(self, partition_sort):
        analysis = EscapeAnalysis(partition_sort)
        first = analysis.solve(None)
        second = analysis.solve(None)
        assert first is second
        assert analysis.stats.solve_misses == 1
        assert analysis.stats.solve_hits == 1

    def test_cache_hit_costs_no_fixpoint_iterations(self, partition_sort):
        analysis = EscapeAnalysis(partition_sort)
        analysis.global_all("append")
        warm = analysis.stats.iterations
        assert warm > 0
        analysis.global_all("split")
        assert analysis.stats.iterations == warm
        assert analysis.session.stats.last_query.iterations == 0

    def test_pins_key_the_cache(self):
        program = prelude_program(["append"])
        analysis = EscapeAnalysis(program)
        default = analysis.solve(None)
        pinned = analysis.solve({"append": DEEP_APPEND})
        assert pinned is not default
        assert pinned.d == 2 and default.d == 1
        assert analysis.solve({"append": DEEP_APPEND}) is pinned

    def test_pinned_scc_reuse(self):
        # Pinning `copy` deeper leaves append's and heads' typed
        # fingerprints untouched: their cached fixpoints are reused.
        program = prelude_program(["append", "heads", "copy"])
        analysis = EscapeAnalysis(program)
        analysis.solve(None)
        deep_copy = TFun(TList(TList(INT)), TList(TList(INT)))
        analysis.solve({"copy": deep_copy})
        query = analysis.session.stats.last_query
        assert query.scc_hits == 2
        assert query.scc_misses == 1


class TestAstIsolation:
    """The satellite regression: solves run on private clones, so queries
    never clobber ``.ty`` annotations on the caller's (shared) AST."""

    def test_interleaved_local_and_global_tests_leave_the_ast_alone(self):
        program = prelude_program(["append"])
        analysis = EscapeAnalysis(program)
        ty_before = program.binding("append").expr.ty
        assert ty_before is not None

        shallow_before = analysis.global_test("append", 1)
        # A local test at a *deeper* instance: pre-refactor, the variant
        # program shared these binding nodes and the pinned re-inference
        # re-typed them in place.
        deep_local = analysis.local_test("append [[1], [2]] [[3]]")
        assert program.binding("append").expr.ty == ty_before
        shallow_after = analysis.global_test("append", 1)
        another_local = analysis.local_test("append [1, 2] [3]")

        assert shallow_before.result == shallow_after.result
        assert str(shallow_after.result) == "<1,0>"
        assert str(deep_local[0].result) == "<1,1>"
        assert str(another_local[0].result) == "<1,0>"
        assert program.binding("append").expr.ty == ty_before

    def test_local_test_does_not_mutate_the_call_expression(self, partition_sort):
        from repro.lang.parser import parse_expr

        expr = parse_expr("append (ps [2, 1]) [3]")
        snapshot = {node.uid: node.ty for node in _walk(expr)}
        EscapeAnalysis(partition_sort).local_test(expr)
        assert {node.uid: node.ty for node in _walk(expr)} == snapshot

    def test_global_solves_do_not_retouch_the_program_ast(self):
        program = prelude_program(["append"])
        analysis = EscapeAnalysis(program)
        snapshot = {node.uid: node.ty for node in _walk(program.letrec)}
        analysis.global_test("append", 1, instance=DEEP_APPEND)
        assert {node.uid: node.ty for node in _walk(program.letrec)} == snapshot


def _walk(expr):
    from repro.lang.ast import walk

    return walk(expr)


class TestSessionSharing:
    def test_two_facades_share_one_session(self, partition_sort):
        session = AnalysisSession(partition_sort)
        first = EscapeAnalysis(partition_sort, session=session)
        second = EscapeAnalysis(partition_sort, session=session)
        first.global_all("append")
        second.global_all("ps")
        assert session.stats.solve_misses == 1
        assert session.stats.solve_hits == 1

    def test_session_for_another_program_is_rejected(self, partition_sort):
        other = prelude_program(["append"])
        session = AnalysisSession(other)
        with pytest.raises(AnalysisError):
            EscapeAnalysis(partition_sort, session=session)

    def test_conflicting_configuration_is_rejected(self, partition_sort):
        session = AnalysisSession(partition_sort, d=2)
        with pytest.raises(AnalysisError):
            EscapeAnalysis(partition_sort, d=5, session=session)
        with pytest.raises(AnalysisError):
            EscapeAnalysis(partition_sort, max_iterations=1, session=session)

    def test_facade_inherits_session_configuration(self, partition_sort):
        session = AnalysisSession(partition_sort, d=5)
        analysis = EscapeAnalysis(partition_sort, session=session)
        assert analysis.d_override == 5
        assert analysis.solve(None).d == 5


class TestStats:
    def test_stats_account_for_work(self, partition_sort):
        analysis = EscapeAnalysis(partition_sort)
        analysis.global_all("append")
        stats = analysis.stats
        assert stats.queries == 1
        assert stats.iterations > 0
        assert stats.eval_steps > 0
        assert stats.scc_misses == 3  # append, split, ps knots

    def test_summary_mentions_every_counter(self, partition_sort):
        analysis = EscapeAnalysis(partition_sort)
        analysis.global_all("append")
        analysis.global_all("split")
        text = analysis.stats.summary()
        assert "query(ies)" in text
        assert "solve cache" in text and "scc cache" in text
        assert "iteration" in text and "eval step" in text

    def test_iterates_replay_available_per_binding(self, partition_sort):
        solved = EscapeAnalysis(partition_sort).solve(None)
        iterates = solved.iterates_for("ps")
        assert len(iterates) >= 2
        # bottom first, and the dependency values are present throughout
        assert all("append" in env and "split" in env for env in iterates)
        with pytest.raises(AnalysisError):
            solved.iterates_for("ghost")


class TestBudgetsChargeOnlyMisses:
    def test_repeat_query_spends_no_iterations(self):
        engine = HardenedAnalysis(
            paper_partition_sort(), budget=AnalysisBudget(max_fixpoint_iterations=50)
        )
        first = engine.global_test("append", 1)
        second = engine.global_test("append", 1)
        assert first.exact and second.exact
        assert first.spent.iterations > 0
        assert second.spent.iterations == 0
        assert first.result.result == second.result.result

    def test_meter_does_not_leak_into_later_queries(self, partition_sort):
        # A breached (deadline-0) query must not poison the session's
        # cached evaluators for later, unbudgeted queries.
        session = AnalysisSession(partition_sort)
        warm = EscapeAnalysis(partition_sort, session=session)
        warm.global_all("append")

        from repro.robust.budget import BudgetMeter

        meter = AnalysisBudget(deadline_s=0.0).start()
        budgeted = EscapeAnalysis(partition_sort, meter=meter, session=session)
        from repro.robust.errors import DeadlineExceeded

        with pytest.raises(DeadlineExceeded):
            budgeted.global_all("ps")

        relaxed = EscapeAnalysis(partition_sort, session=session)
        results = relaxed.global_all("ps")  # must not raise
        assert str(results[0].result) == "<1,0>"


class TestNestedMeterScopes:
    """The satellite regression: a nested ``query()`` scope that brings its
    own budget meter used to be silently ignored — it now warns."""

    def test_nested_scope_with_its_own_meter_warns(self, partition_sort):
        session = AnalysisSession(partition_sort)
        outer = AnalysisBudget(max_eval_steps=1_000_000).start()
        inner = AnalysisBudget(max_eval_steps=1).start()
        with session.query(outer):
            with pytest.warns(UserWarning, match="nested.*meter.*ignored"):
                with session.query(inner):
                    pass

    def test_nested_scope_without_meter_is_silent(self, partition_sort):
        import warnings as _warnings

        session = AnalysisSession(partition_sort)
        meter = AnalysisBudget(max_eval_steps=1_000_000).start()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            with session.query(meter):
                with session.query():
                    pass
            # re-passing the *same* meter is also fine: same budget scope
            with session.query(meter):
                with session.query(meter):
                    pass

    def test_outer_meter_stays_in_effect_after_warning(self, partition_sort):
        session = AnalysisSession(partition_sort)
        outer = AnalysisBudget(max_eval_steps=10_000_000).start()
        inner = AnalysisBudget(max_eval_steps=1).start()
        analysis = EscapeAnalysis(partition_sort, session=session)
        with session.query(outer):
            with pytest.warns(UserWarning):
                with session.query(inner):
                    # the inner 1-step cap is NOT enforced: the outer
                    # (roomy) meter governs, so the query completes
                    results = analysis.global_all("append")
        assert results and inner.eval_steps == 0
        assert outer.eval_steps > 0
