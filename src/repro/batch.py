"""Supervised parallel batch analysis: a corpus of ``.nml`` programs
through one store, under the resilience policy engine.

``repro batch <dir>`` fans the corpus across supervised worker processes.
Each worker builds its own :class:`~repro.query.AnalysisSession` (sessions
are process-local by design), but all workers attach the same
:class:`~repro.store.AnalysisStore`, so an SCC fixpoint solved by any
worker — the prelude's ``append``, ``map``, ``rev`` knots recur across
corpus programs — is decoded, not re-solved, by every other worker and by
every later run.  Provenance digests make that sound: two programs share a
stored entry exactly when their typed bindings and transitive analysis
inputs agree (:func:`repro.query.scc_digest`), and the store's atomic,
content-addressed writes make concurrent workers racing on a common digest
harmless (both write the same bytes).

The driver supervises rather than trusts its workers
(:mod:`repro.robust.resilience`):

* every worker attempt gets a **per-file wall-clock timeout**
  (``timeout_s``); a hung worker is terminated and replaced;
* a **crashed** worker (hard exit, broken pipe) is restarted with
  exponential backoff and deterministic jitter
  (:class:`~repro.robust.resilience.RetryPolicy`);
* a file that fails all its attempts is **quarantined** into the report
  (:class:`~repro.robust.resilience.Quarantine`) — the batch keeps its
  throughput and the poison input keeps its failure history, instead of
  either sinking the run;
* **budget exhaustion degrades**: with ``deadline_ms`` set, workers run
  queries through the hardened engine and a breached analysis deadline
  yields the sound ``W^τ`` worst case (reported ``degraded``), never an
  error.

An ordinary failure *inside* a file — parse error, type error — is still
contained by the worker itself and answered in one attempt; supervision
exists for the failures the worker cannot contain (its own death).
Timeouts and crash restarts need a worker *process* to kill, so they
engage whenever ``timeout_s`` is set or ``jobs > 1``; the plain in-process
path (``jobs <= 1``, no timeout) remains the fault-injection-friendly one,
where injected worker crashes surface as retryable exceptions.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait
from pathlib import Path

from repro.obs import context as obs_context
from repro.obs import tracer as obs
from repro.obs.context import TraceContext
from repro.robust import faults
from repro.robust.errors import reason_for
from repro.robust.resilience import Quarantine, RetryPolicy

#: Exit code a worker process dies with under an injected crash fault.
WORKER_CRASH_EXIT = 23

#: Default supervision policy: one retry, fast deterministic backoff.
DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.02, max_delay_s=0.5)


@dataclass
class FileReport:
    """One corpus file's outcome (picklable, across worker processes)."""

    path: str
    ok: bool
    error: str = ""
    d: int = -1
    functions: int = 0
    #: the worker session's accounting (:func:`repro.escape.report.stats_dict`)
    stats: dict = field(default_factory=dict)
    #: ``repro.check`` severity counts when the batch ran ``--check``
    #: (``{"error": n, "warning": n, "hint": n}``), else ``None``
    check: "dict | None" = None
    #: a checker crash, contained like an analysis error (the file's
    #: analysis results stand; its diagnostics are just missing)
    check_error: str = ""
    #: at least one query fell back to the sound ``W^τ`` worst case
    degraded: bool = False
    #: the stable degradation reasons, one per degraded query
    degradations: list = field(default_factory=list)
    #: the file exhausted its attempts and was excluded — the answer on
    #: record is the trivially sound worst case, flagged, never a clean ok
    quarantined: bool = False
    #: worker attempts consumed (1 = first try succeeded)
    attempts: int = 1
    #: the file's trace identity (stamped on every event its analysis
    #: emitted, across driver and worker processes) when tracing was on
    trace_id: str = ""
    #: per-file profile summary replayed from the merged trace shards
    #: (``repro batch --profile --json``), else ``None``
    profile: "dict | None" = None
    #: execution-under-GC summary when the batch ran ``--gc`` (collector
    #: name, gc counters, sanitizer verdict), else ``None``
    gc: "dict | None" = None

    def line(self) -> str:
        if self.quarantined:
            return (
                f"{self.path}: QUARANTINED after {self.attempts} attempt(s) "
                f"— {self.error}"
            )
        if not self.ok:
            return f"{self.path}: ERROR {self.error}"
        text = (
            f"{self.path}: ok — {self.functions} function(s), d={self.d}, "
            f"scc {self.stats.get('scc_hits', 0)} hit(s) / "
            f"{self.stats.get('scc_misses', 0)} miss(es), "
            f"{self.stats.get('iterations', 0)} iteration(s)"
        )
        if self.degraded:
            text += f", DEGRADED ({len(self.degradations)} quer{'y' if len(self.degradations) == 1 else 'ies'})"
        if self.attempts > 1:
            text += f", {self.attempts} attempt(s)"
        if self.check_error:
            text += f", check CRASHED ({self.check_error})"
        elif self.check is not None:
            text += (
                f", check {self.check.get('error', 0)} error(s) / "
                f"{self.check.get('warning', 0)} warning(s) / "
                f"{self.check.get('hint', 0)} hint(s)"
            )
        if self.gc is not None:
            if self.gc.get("error"):
                text += f", gc[{self.gc.get('collector')}] ERROR {self.gc['error']}"
            else:
                text += (
                    f", gc[{self.gc.get('collector')}] "
                    f"{self.gc.get('marked', 0)} marked / "
                    f"{self.gc.get('swept', 0)} swept"
                )
        return text


@dataclass
class BatchReport:
    """The whole batch: per-file reports plus fleet-wide totals."""

    reports: list[FileReport]
    jobs: int
    store_root: str | None

    @property
    def ok(self) -> bool:
        return bool(self.reports) and all(r.ok for r in self.reports)

    @property
    def hard_failures(self) -> list[FileReport]:
        """Files that produced no answer at all (bad input, contained
        crash) — quarantined files are *not* here: they carry the flagged
        worst-case answer instead."""
        return [r for r in self.reports if not r.ok and not r.quarantined]

    @property
    def quarantined_files(self) -> list[FileReport]:
        return [r for r in self.reports if r.quarantined]

    @property
    def degraded_files(self) -> list[FileReport]:
        return [r for r in self.reports if r.degraded]

    @property
    def answered(self) -> bool:
        """The always-answer invariant: every file got *some* sound answer
        (exact, degraded, or flagged-worst-case-by-quarantine)."""
        return bool(self.reports) and all(
            r.ok or r.quarantined for r in self.reports
        )

    @property
    def check_findings(self) -> int:
        """Error-severity checker findings fleet-wide; checker crashes
        count (a file whose diagnostics are missing is not certified)."""
        return sum(
            (r.check or {}).get("error", 0) + (1 if r.check_error else 0)
            for r in self.reports
        )

    def exit_code(self) -> int:
        """The documented 0/1/3/4 taxonomy for this report:

        * 1 — a file produced no answer (hard failure), or nothing ran;
        * 4 — the checker ran and found error-severity diagnostics;
        * 3 — everything answered, but some answer is degraded or some file
          is quarantined (a quarantined file must never read as a clean 0);
        * 0 — every file exact, no findings.
        """
        if not self.reports or self.hard_failures:
            return 1
        if self.check_findings:
            return 4
        if self.quarantined_files or self.degraded_files:
            return 3
        return 0

    def totals(self) -> dict[str, int]:
        """Integer stats summed across every successful file (the nested
        ``store`` section is flattened to ``store_*`` keys; checker counts
        to ``check_*``)."""
        out: dict[str, int] = {}
        for report in self.reports:
            if not report.ok:
                continue
            for key, value in report.stats.items():
                if isinstance(value, bool):
                    continue
                if isinstance(value, int):
                    out[key] = out.get(key, 0) + value
                elif isinstance(value, dict):
                    for sub, sub_value in value.items():
                        if isinstance(sub_value, int) and not isinstance(
                            sub_value, bool
                        ):
                            flat = f"{key}_{sub}"
                            out[flat] = out.get(flat, 0) + sub_value
            if report.check is not None:
                for severity, count in report.check.items():
                    if isinstance(count, int) and not isinstance(count, bool):
                        flat = f"check_{severity}"
                        out[flat] = out.get(flat, 0) + count
            if report.check_error:
                out["check_crashes"] = out.get("check_crashes", 0) + 1
        return out

    def summary(self) -> str:
        totals = self.totals()
        failed = len(self.hard_failures)
        quarantined = len(self.quarantined_files)
        degraded = len(self.degraded_files)
        lines = [
            f"{len(self.reports)} file(s), {self.jobs} job(s)"
            + (f", {failed} failed" if failed else "")
            + (f", {quarantined} quarantined" if quarantined else "")
            + (f", {degraded} degraded" if degraded else "")
            + (f", store: {self.store_root}" if self.store_root else ", no store")
        ]
        if totals:
            lines.append(
                f"scc cache {totals.get('scc_hits', 0)} hit(s) / "
                f"{totals.get('scc_misses', 0)} miss(es), "
                f"{totals.get('iterations', 0)} fixpoint iteration(s), "
                f"{totals.get('eval_steps', 0)} eval step(s)"
            )
            if self.store_root:
                lines.append(
                    f"store {totals.get('store_hits', 0)} hit(s) / "
                    f"{totals.get('store_misses', 0)} miss(es) / "
                    f"{totals.get('store_writes', 0)} write(s)"
                )
        if any(r.check is not None or r.check_error for r in self.reports):
            crashes = totals.get("check_crashes", 0)
            lines.append(
                f"check {totals.get('check_error', 0)} error(s) / "
                f"{totals.get('check_warning', 0)} warning(s) / "
                f"{totals.get('check_hint', 0)} hint(s)"
                + (f", {crashes} checker crash(es)" if crashes else "")
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "store": self.store_root,
            "ok": self.ok,
            "answered": self.answered,
            "degraded": len(self.degraded_files),
            "quarantined": len(self.quarantined_files),
            "exit_code": self.exit_code(),
            "files": [
                {
                    "path": r.path,
                    "ok": r.ok,
                    **({"error": r.error} if not r.ok else {}),
                    **({"d": r.d, "functions": r.functions, "stats": r.stats} if r.ok else {}),
                    **({"check": r.check} if r.check is not None else {}),
                    **({"check_error": r.check_error} if r.check_error else {}),
                    **(
                        {"degraded": True, "degradations": list(r.degradations)}
                        if r.degraded
                        else {}
                    ),
                    **({"quarantined": True} if r.quarantined else {}),
                    **({"attempts": r.attempts} if r.attempts > 1 else {}),
                    **({"trace_id": r.trace_id} if r.trace_id else {}),
                    **({"profile": r.profile} if r.profile is not None else {}),
                    **({"gc": r.gc} if r.gc is not None else {}),
                }
                for r in self.reports
            ],
            "totals": self.totals(),
        }


class BatchInputError(ValueError):
    """A corpus path is unusable — raised at *collection* time so the CLI
    can refuse with a clear usage error (exit 2) instead of shipping the
    bad path into a worker to die as a confusing contained crash."""


def collect_inputs(paths: "list[str | Path]") -> list[Path]:
    """Expand paths into the corpus: directories recurse to ``*.nml``,
    explicit files must exist and be ``.nml``; order is deterministic and
    duplicates dropped.  Returns **resolved** paths, so the dedup key and
    the returned entry are the same path (two spellings of one file —
    ``corpus/a.nml`` and ``./corpus/../corpus/a.nml`` — collapse to one
    input, and every report names the file unambiguously).

    Raises :class:`BatchInputError` for a nonexistent path or an explicit
    non-``.nml`` file.
    """
    inputs: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.rglob("*.nml"))
        elif not path.exists():
            raise BatchInputError(f"{path}: no such file or directory")
        elif path.suffix != ".nml":
            raise BatchInputError(
                f"{path}: not a .nml program (directories are searched for "
                "*.nml; explicit files must be .nml)"
            )
        else:
            found = [path]
        for item in found:
            resolved = item.resolve()
            if resolved not in seen:
                seen.add(resolved)
                inputs.append(resolved)
    return inputs


def execute_under_collector(
    program, collector: str, gc_threshold: int = 256
) -> dict:
    """Execute ``program`` under ``collector`` with the sanitizer armed and
    a tight allocation trigger; returns a picklable summary (never raises —
    runtime errors are contained in the ``error`` key).

    The liveness collector's budgets come from a fresh
    :func:`repro.analysis.heap_liveness.analyze_program` pass; degraded
    facts run as full-reachability marking (the summary records it).
    """
    from repro.semantics.interp import Interpreter

    summary: dict = {"collector": collector, "ok": True}
    budgets = None
    if collector == "liveness":
        from repro.analysis.heap_liveness import analyze_program

        facts = analyze_program(program)
        summary["facts_degraded"] = facts.degraded
        budgets = None if facts.degraded else facts.budget_map()
    try:
        interp = Interpreter(
            auto_gc=True,
            gc_threshold=gc_threshold,
            sanitize=True,
            collector=collector,
            liveness=budgets,
        )
        interp.run(program)
    except Exception as error:
        summary["ok"] = False
        summary["error"] = f"{type(error).__name__}: {error}"
        return summary
    summary.update(
        runs=interp.metrics.gc_runs,
        marked=interp.metrics.gc_marked,
        swept=interp.metrics.gc_swept,
        sanitizer_clean=interp.sanitizer.clean if interp.sanitizer else True,
    )
    return summary


def analyze_one(
    path: str,
    store_root: str | None,
    d: int | None = None,
    max_iterations: int | None = None,
    check: bool = False,
    deadline_ms: float | None = None,
    engine: str | None = None,
    collector: str | None = None,
    gc_threshold: int = 256,
) -> FileReport:
    """Worker body: fully analyze one file (every function, every
    parameter — the same questions ``repro report`` asks), sharing SCC
    results through the store at ``store_root``.

    With ``deadline_ms`` set, queries run through the hardened engine
    (:class:`~repro.robust.engine.HardenedAnalysis`): a breached budget
    yields the sound ``W^τ`` worst case for the remaining parameters and
    the report is flagged ``degraded`` — never an error.

    Module-level and argument-picklable on purpose: the supervisor ships
    it to worker processes under any start method.
    """
    from repro.escape.report import stats_dict
    from repro.lang.parser import parse_program
    from repro.store import AnalysisStore
    from repro.types.types import arity

    try:
        program = parse_program(Path(path).read_text())
        store = AnalysisStore(store_root) if store_root else None
        if deadline_ms is not None:
            report = _analyze_hardened(
                path, program, store, d, max_iterations, deadline_ms, engine
            )
        else:
            from repro.escape.analyzer import EscapeAnalysis

            analysis = EscapeAnalysis(
                program, d=d, max_iterations=max_iterations, store=store, engine=engine
            )
            solved = analysis.solve(None)
            functions = 0
            for name in program.binding_names():
                if arity(analysis.scheme(name).body) == 0:
                    continue
                analysis.global_all(name)
                functions += 1
            report = FileReport(
                path=str(path),
                ok=True,
                d=solved.d,
                functions=functions,
                stats=stats_dict(analysis.stats),
            )
        if check:
            try:
                from repro.check import check_program

                report.check = check_program(program, path=str(path)).counts()
            except Exception as error:  # contained like an analysis error
                report.check_error = f"{type(error).__name__}: {error}"
        if collector is not None:
            report.gc = execute_under_collector(
                program, collector, gc_threshold=gc_threshold
            )
        return report
    except Exception as error:  # a bad corpus file must not sink the batch
        return FileReport(
            path=str(path), ok=False, error=f"{type(error).__name__}: {error}"
        )


def _analyze_hardened(
    path: str,
    program,
    store,
    d: int | None,
    max_iterations: int | None,
    deadline_ms: float,
    engine: str | None = None,
) -> FileReport:
    """The budgeted worker body: every query through the hardened engine,
    degradations collected instead of raised."""
    from repro.escape.report import stats_dict
    from repro.robust.budget import AnalysisBudget
    from repro.robust.engine import HardenedAnalysis
    from repro.types.types import arity

    hardened = HardenedAnalysis(
        program,
        budget=AnalysisBudget(deadline_s=deadline_ms / 1000.0),
        d=d,
        max_iterations=max_iterations,
        store=store,
        engine=engine,
    )
    functions = 0
    degradations: list[str] = []
    any_exact = False
    for name in program.binding_names():
        if arity(hardened.session.scheme(name).body) == 0:
            continue
        for robust in hardened.global_all(name):
            if robust.degraded:
                degradations.append(
                    f"{robust.result.function}/{robust.result.param_index}: "
                    f"{robust.degradation.reason}"
                )
            else:
                any_exact = True
        functions += 1
    # ``d`` falls out of the (memoized) solve only when some query actually
    # completed one; a fully degraded file never ran to a chain bound.
    solved_d = hardened.session.solve(None).d if any_exact else -1
    return FileReport(
        path=str(path),
        ok=True,
        d=solved_d,
        functions=functions,
        stats=stats_dict(hardened.session.stats),
        degraded=bool(degradations),
        degradations=degradations,
    )


# -- the supervisor ----------------------------------------------------------


@dataclass
class _Task:
    """One corpus file moving through the supervision state machine."""

    index: int
    args: tuple
    #: the file's root trace context — worker attempts run child hops of it
    ctx: "TraceContext | None" = None
    attempts: int = 0
    errors: list = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.args[0]


def _quarantined_report(task: _Task, reason: str) -> FileReport:
    """The flagged answer of record for a poison file: the trivially sound
    worst case, never mistakable for a clean result."""
    return FileReport(
        path=task.path,
        ok=False,
        error=task.errors[-1] if task.errors else reason,
        quarantined=True,
        attempts=task.attempts,
        degradations=[f"quarantined: {reason}"],
        trace_id=task.ctx.trace_id if task.ctx is not None else "",
    )


def _worker_faults_for(plan, launch: int):
    """The supervisor-side interpretation of worker-stage faults for the
    ``launch``-th worker attempt (1-based, across the whole run): returns
    ``(crash, hang_s, child_plan)``.  Worker-stage ordinals must be
    counted by the supervisor — each attempt is a fresh process with fresh
    counters — so they are stripped from the plan the child activates."""
    if plan is None:
        return False, 0.0, None
    crash = plan.worker_crash_at == launch
    hang_s = 0.0
    for slow in plan.slow_stages:
        if slow.stage == "worker" and slow.matches(launch):
            hang_s = max(hang_s, slow.seconds)
    child_plan = dataclasses.replace(
        plan,
        worker_crash_at=None,
        slow_stages=tuple(s for s in plan.slow_stages if s.stage != "worker"),
    )
    return crash, hang_s, child_plan


def _worker_main(
    args: tuple,
    plan,
    crash: bool,
    hang_s: float,
    conn,
    ctx_wire: "dict | None" = None,
    shard_path: "str | None" = None,
    worker=None,
) -> None:
    """Worker-process entry: activate the (stripped) fault plan, honour the
    supervisor's crash/hang verdicts, analyze, ship the report back.

    ``ctx_wire`` is the file's trace context carried across the Pipe — the
    driver's hop, which the worker re-attaches so every event it emits
    (``transfer_eval``, ``worklist_*``, ``degradation``, ...) is stamped
    with the originating trace_id.  ``shard_path`` names the worker's own
    JSONL shard; the driver merges shards after the run.
    """
    from repro.obs import tracer as tracer_mod
    from repro.obs.flight import FlightRecorder, dump_dir_from_env
    from repro.obs.sinks import JsonlSink

    # Under a fork start method the child inherits the driver's active
    # tracer — and with it the driver's open trace file.  Events must go
    # to this worker's own shard, never interleave into the parent's.
    tracer_mod._active = None

    ctx = TraceContext.from_wire(ctx_wire)
    with contextlib.ExitStack() as stack:
        sinks: list = []
        if shard_path is not None:
            sink = JsonlSink.open(shard_path)
            stack.callback(sink.close)
            sinks.append(sink)
        flight_dir = dump_dir_from_env()
        if flight_dir is not None:
            sinks.append(
                FlightRecorder(
                    dump_dir=flight_dir, label=f"worker-flight-{os.getpid()}"
                )
            )
        if sinks:
            stack.enter_context(tracer_mod.activate(tracer_mod.Tracer(sinks=sinks)))
        if ctx is not None:
            stack.enter_context(obs_context.attach(ctx))
        try:
            scope = (
                faults.inject(plan) if plan is not None else contextlib.nullcontext()
            )
            with scope:
                if crash:
                    os._exit(WORKER_CRASH_EXIT)
                if hang_s:
                    time.sleep(hang_s)
                report = (worker or analyze_one)(*args)
            if ctx is not None:
                report.trace_id = ctx.trace_id
            conn.send(report)
        except BaseException as error:  # answer even on unexpected worker errors
            with contextlib.suppress(Exception):
                conn.send(
                    FileReport(
                        path=args[0],
                        ok=False,
                        error=f"{type(error).__name__}: {error}",
                        trace_id=ctx.trace_id if ctx is not None else "",
                    )
                )
        finally:
            with contextlib.suppress(Exception):
                conn.close()


@dataclass
class _Running:
    task: _Task
    process: object
    conn: object
    deadline: float | None


def _run_supervised(
    work: list[tuple],
    jobs: int,
    retry: RetryPolicy,
    timeout_s: float | None,
    plan,
    quarantine: Quarantine,
    contexts: "list[TraceContext] | None" = None,
    trace_dir: "str | None" = None,
    worker=None,
) -> list[FileReport]:
    """Process-per-attempt supervision: per-file preemptive timeouts,
    crash replacement with backoff, quarantine after exhausted attempts.

    With ``contexts`` (one root :class:`TraceContext` per file), every
    worker attempt runs a child hop of its file's trace, and supervisor
    events about a file (``retry``, ``timeout``, ``worker_restart``) are
    stamped with the same trace_id.  With ``trace_dir``, each worker
    attempt writes its own JSONL shard (``worker-NNNN.jsonl``) there.
    """
    ctx = get_context()
    tasks = deque(
        _Task(index=i, args=args, ctx=contexts[i] if contexts else None)
        for i, args in enumerate(work)
    )
    waiting: list[tuple[float, _Task]] = []  # (ready_at, task) backoff bench
    running: dict[object, _Running] = {}  # sentinel -> running attempt
    reports: dict[int, FileReport] = {}
    launches = 0

    def stamped(task: _Task):
        return obs_context.attach(task.ctx) if task.ctx is not None else (
            contextlib.nullcontext()
        )

    def fail(task: _Task, cause_kind: str, cause: str) -> None:
        task.errors.append(cause)
        if retry.should_retry(task.attempts):
            delay = retry.delay(task.path, task.attempts)
            with stamped(task):
                obs.emit(
                    "retry",
                    key=task.path,
                    attempt=task.attempts,
                    delay_s=round(delay, 9),
                    reason=cause_kind,
                )
            waiting.append((time.monotonic() + delay, task))
        else:
            with stamped(task):  # Quarantine.add emits the quarantine event
                quarantine.add(
                    task.path,
                    attempts=task.attempts,
                    reason=cause_kind,
                    errors=task.errors,
                )
            reports[task.index] = _quarantined_report(task, cause_kind)

    while tasks or waiting or running:
        now = time.monotonic()
        # Backoff bench → ready queue.
        ripe = [entry for entry in waiting if entry[0] <= now]
        for entry in ripe:
            waiting.remove(entry)
            tasks.append(entry[1])
        # Launch up to ``jobs`` workers.
        while tasks and len(running) < jobs:
            task = tasks.popleft()
            launches += 1
            task.attempts += 1
            crash, hang_s, child_plan = _worker_faults_for(plan, launches)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            child_ctx = task.ctx.child() if task.ctx is not None else None
            shard_path = (
                os.path.join(trace_dir, f"worker-{launches:04d}.jsonl")
                if trace_dir is not None
                else None
            )
            process = ctx.Process(
                target=_worker_main,
                args=(
                    task.args,
                    child_plan,
                    crash,
                    hang_s,
                    child_conn,
                    child_ctx.to_wire() if child_ctx is not None else None,
                    shard_path,
                    worker,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            deadline = now + timeout_s if timeout_s is not None else None
            running[process.sentinel] = _Running(task, process, parent_conn, deadline)
        if not running:
            # Everything is on the backoff bench: sleep to the next ready.
            if waiting:
                time.sleep(max(0.0, min(t for t, _ in waiting) - time.monotonic()))
            continue
        # Wait for a worker to finish, a deadline to pass, or a bench slot.
        wait_until = [d for r in running.values() if (d := r.deadline) is not None]
        wait_until += [t for t, _ in waiting]
        timeout = max(0.0, min(wait_until) - time.monotonic()) if wait_until else None
        done = connection_wait(list(running), timeout=timeout)
        now = time.monotonic()
        for sentinel in done:
            run = running.pop(sentinel)
            run.process.join()
            report: FileReport | None = None
            if run.conn.poll():
                with contextlib.suppress(EOFError, OSError):
                    report = run.conn.recv()
            run.conn.close()
            if report is not None:
                report.attempts = run.task.attempts
                reports[run.task.index] = report
            else:  # died without an answer: crashed
                exitcode = run.process.exitcode
                with stamped(run.task):
                    obs.emit(
                        "worker_restart",
                        key=run.task.path,
                        attempt=run.task.attempts,
                        cause="worker-crashed",
                    )
                fail(
                    run.task,
                    "worker-crashed",
                    f"worker crashed (exit code {exitcode})",
                )
        # Preempt the hung.
        for sentinel, run in list(running.items()):
            if run.deadline is not None and now >= run.deadline:
                running.pop(sentinel)
                run.process.terminate()
                run.process.join(5.0)
                if run.process.is_alive():  # pragma: no cover - hard kill path
                    run.process.kill()
                    run.process.join()
                run.conn.close()
                with stamped(run.task):
                    obs.emit("timeout", key=run.task.path, deadline_s=timeout_s)
                    obs.emit(
                        "worker_restart",
                        key=run.task.path,
                        attempt=run.task.attempts,
                        cause="timeout",
                    )
                fail(
                    run.task,
                    "timeout",
                    f"worker timed out after {timeout_s:g}s",
                )
    return [reports[i] for i in sorted(reports)]


def _run_serial(
    work: list[tuple],
    retry: RetryPolicy,
    plan,
    quarantine: Quarantine,
    contexts: "list[TraceContext] | None" = None,
    worker=None,
) -> list[FileReport]:
    """In-process supervision: no preemption (there is no process to kill),
    but the same retry/backoff/quarantine state machine — injected worker
    crashes surface as exceptions and take the retryable path."""
    reports: list[FileReport] = []
    scope = faults.inject(plan) if plan is not None else contextlib.nullcontext()
    with scope:
        for index, args in enumerate(work):
            task = _Task(
                index=len(reports),
                args=args,
                ctx=contexts[index] if contexts else None,
            )
            attach_scope = (
                obs_context.attach(task.ctx)
                if task.ctx is not None
                else contextlib.nullcontext()
            )
            with attach_scope:
                while True:
                    task.attempts += 1
                    try:
                        faults.check_stage("worker")
                        if faults.take_worker_crash():
                            raise faults.InjectedFault(
                                "injected worker crash", stage="worker"
                            )
                        report = (worker or analyze_one)(*args)
                        report.attempts = task.attempts
                        if task.ctx is not None:
                            report.trace_id = task.ctx.trace_id
                        reports.append(report)
                        break
                    except Exception as error:
                        cause_kind = reason_for(error)
                        task.errors.append(f"{type(error).__name__}: {error}")
                        if retry.should_retry(task.attempts):
                            delay = retry.delay(task.path, task.attempts)
                            obs.emit(
                                "retry",
                                key=task.path,
                                attempt=task.attempts,
                                delay_s=round(delay, 9),
                                reason=cause_kind,
                            )
                            time.sleep(delay)
                            continue
                        quarantine.add(
                            task.path,
                            attempts=task.attempts,
                            reason=cause_kind,
                            errors=task.errors,
                        )
                        reports.append(_quarantined_report(task, cause_kind))
                        break
    return reports


def run_batch(
    paths: "list[str | Path]",
    store_root: "str | Path | None" = None,
    jobs: int = 1,
    d: int | None = None,
    max_iterations: int | None = None,
    check: bool = False,
    deadline_ms: float | None = None,
    timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    fault_plan=None,
    engine: str | None = None,
    collector: str | None = None,
    gc_threshold: int = 256,
    trace: bool = False,
    trace_dir: "str | Path | None" = None,
    worker=None,
    worker_extra=None,
) -> BatchReport:
    """Analyze the corpus under supervision, ``jobs``-wide.

    ``worker`` substitutes the per-file body (default :func:`analyze_one`)
    — it must be a module-level (picklable) callable returning a
    :class:`FileReport`; ``worker_extra`` maps each input path to a tuple
    of extra positional arguments appended to the standard work tuple.
    This is how ``repro diff snapshot`` rides the same supervision
    (timeouts, crash restarts, quarantine, shared store) with a different
    per-file job.

    ``jobs <= 1`` without a ``timeout_s`` runs in-process (no worker
    processes), which is also the fault-injection-friendly path; a
    ``timeout_s`` forces worker processes even single-file-at-a-time,
    because preemption needs something to kill.

    With ``trace`` (or a ``trace_dir``), every file gets its own root
    :class:`TraceContext`; driver- and worker-side events about a file
    are stamped with its trace_id, and supervised worker attempts write
    per-process JSONL shards into ``trace_dir`` for the driver to merge.
    """
    from repro.escape.engine import default_engine, validate_engine, warn_legacy_engine

    inputs = collect_inputs(paths)
    root = str(store_root) if store_root is not None else None
    retry = retry or DEFAULT_RETRY
    quarantine = Quarantine()
    # Resolve the engine here: worker processes start fresh and would not
    # see a ``use_engine`` scope installed in this process.
    engine = validate_engine(engine) if engine is not None else default_engine()
    if engine == "legacy":
        # Deprecation is a *driver* concern: exactly one warning per
        # process, however many worker attempts fan out below.
        warn_legacy_engine()
    work = [
        (str(p), root, d, max_iterations, check, deadline_ms, engine)
        + ((collector, gc_threshold) if worker is None else ())
        + (tuple(worker_extra(p)) if worker_extra is not None else ())
        for p in inputs
    ]
    shard_dir = str(trace_dir) if trace_dir is not None else None
    contexts = (
        [TraceContext.mint() for _ in work] if (trace or shard_dir) else None
    )
    if shard_dir is not None:
        Path(shard_dir).mkdir(parents=True, exist_ok=True)
    if not work:
        reports: list[FileReport] = []
    elif jobs <= 1 and timeout_s is None:
        reports = _run_serial(work, retry, fault_plan, quarantine, contexts, worker)
    else:
        reports = _run_supervised(
            work,
            max(1, jobs),
            retry,
            timeout_s,
            fault_plan,
            quarantine,
            contexts,
            shard_dir,
            worker,
        )
    return BatchReport(reports=reports, jobs=max(1, jobs), store_root=root)
