"""``repro.check`` — the three-pass static verification subsystem.

One entry point, :func:`check_program`, runs

1. **lint** (:mod:`repro.check.lint`) — source hygiene over the resolved
   AST, anchored to parser spans;
2. **audit** (:mod:`repro.check.audit`) — independent re-derivation of
   every storage-optimization footprint from escape, sharing, and liveness
   facts;
3. **machine** (:mod:`repro.machine.verify`) — abstract interpretation of
   the compiled instruction stream for stack/slot/region discipline;

and folds every finding into one :class:`~repro.check.diagnostics
.CheckReport`.  Passes are contained: a pass that crashes is recorded in
``report.pass_errors`` (making the report not-ok) instead of sinking the
checker.  Each pass runs under an obs span (``check:<pass>``) and each
finding emits a ``check_rule_fired`` event, so traces show exactly which
rules fired where and how long each pass took.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.check.diagnostics import (
    REGISTRY,
    CheckReport,
    CheckSeverity,
    Diagnostic,
    Rule,
    RuleRegistry,
    rule,
)
from repro.lang.ast import Program
from repro.obs import tracer as obs

__all__ = [
    "REGISTRY",
    "CheckReport",
    "CheckSeverity",
    "Diagnostic",
    "Rule",
    "RuleRegistry",
    "CHECK_PASSES",
    "check_program",
]

CHK001 = rule(
    "CHK001",
    "checker-pass-crash",
    CheckSeverity.ERROR,
    "check",
    "a checker pass raised instead of reporting; finding set is incomplete",
)


def _run_lint(program: Program) -> list[Diagnostic]:
    from repro.check.lint import lint_program

    return lint_program(program)


def _run_audit(program: Program) -> list[Diagnostic]:
    from repro.check.audit import audit_program

    return audit_program(program)


def _run_machine(program: Program) -> list[Diagnostic]:
    from repro.machine.compiler import compile_program
    from repro.machine.verify import verify_program_code

    return verify_program_code(compile_program(program))


#: Pass name -> pass body, in execution order.
CHECK_PASSES: dict[str, Callable[[Program], list[Diagnostic]]] = {
    "lint": _run_lint,
    "audit": _run_audit,
    "machine": _run_machine,
}


def check_program(
    program: Program,
    passes: "Iterable[str] | None" = None,
    path: str = "",
) -> CheckReport:
    """Run the selected passes (all three by default) over ``program``."""
    report = CheckReport(path=path)
    selected = list(passes) if passes is not None else list(CHECK_PASSES)
    for name in selected:
        body = CHECK_PASSES.get(name)
        if body is None:
            raise ValueError(
                f"unknown check pass {name!r}; have {sorted(CHECK_PASSES)}"
            )
        started = time.perf_counter()
        with obs.span(f"check:{name}"):
            try:
                found = body(program)
            except Exception as error:  # contained: a crash is a finding
                report.pass_errors[name] = f"{type(error).__name__}: {error}"
                report.add(
                    Diagnostic(
                        CHK001,
                        f"{name} pass crashed: {type(error).__name__}: {error}",
                        context=name,
                    )
                )
                found = []
        report.pass_timings[name] = time.perf_counter() - started
        for diagnostic in found:
            report.add(diagnostic)
            obs.emit(
                "check_rule_fired",
                **{
                    "rule": diagnostic.rule.id,
                    "severity": diagnostic.severity.value,
                    "pass": name,
                    # Provenance extras for `repro explain`.
                    "message": diagnostic.message,
                    "span": str(diagnostic.span),
                    "context": diagnostic.context,
                },
            )
    return report
