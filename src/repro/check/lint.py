"""The nml lint pass: source-level hygiene over resolved ASTs.

Rules LNT001–LNT005 are purely syntactic — no type inference, no abstract
interpretation — so they run on any program that parses, and every finding
anchors to the :class:`~repro.lang.errors.SourceSpan` the parser attached.
LNT006 is the one analysis-backed rule: it consults the interprocedural
heap-liveness facts (:mod:`repro.analysis.heap_liveness`) and silently
skips when the analysis is unavailable or degraded.  The rules:

* **LNT001** shadowing — a ``lambda`` parameter or ``letrec`` binding
  rebinds a name already bound in an enclosing scope;
* **LNT002** unused binding — an inner ``let``/``letrec`` binding no other
  binding or the body ever reads (top-level definitions are exempt: a
  script may define library functions its body does not call);
* **LNT003** unreachable branch — ``if`` on a boolean literal;
* **LNT004** non-productive recursion — a recursive binding every one of
  whose execution paths immediately recurses (no base case: ``f x = f x``);
* **LNT005** primitive misuse — a primitive applied to more arguments than
  its arity;
* **LNT006** dead-after-bind — a top-level value binding allocates cons
  cells whose contents the heap-liveness facts prove nothing ever reads
  (use depth 0): the allocation is pure heap pressure a liveness-directed
  collector will reclaim, but not allocating is better still.
"""

from __future__ import annotations

from repro.check.diagnostics import CheckSeverity, Diagnostic, rule
from repro.lang.ast import (
    App,
    BoolLit,
    Expr,
    If,
    Lambda,
    Letrec,
    Prim,
    Program,
    Var,
    uncurry_app,
    uncurry_lambda,
    walk,
)
from repro.opt.liveness import uses_var

LNT001 = rule(
    "LNT001",
    "shadowed-binding",
    CheckSeverity.WARNING,
    "lint",
    "a binding rebinds a name from an enclosing scope",
)
LNT002 = rule(
    "LNT002",
    "unused-binding",
    CheckSeverity.WARNING,
    "lint",
    "an inner let/letrec binding is never used",
)
LNT003 = rule(
    "LNT003",
    "unreachable-branch",
    CheckSeverity.WARNING,
    "lint",
    "an if condition is a boolean literal; one branch never runs",
)
LNT004 = rule(
    "LNT004",
    "non-productive-recursion",
    CheckSeverity.WARNING,
    "lint",
    "every path of a recursive binding recurses; no base case",
)
LNT005 = rule(
    "LNT005",
    "primitive-arity",
    CheckSeverity.WARNING,
    "lint",
    "a primitive is applied to more arguments than its arity",
)
LNT006 = rule(
    "LNT006",
    "dead-after-bind",
    CheckSeverity.HINT,
    "lint",
    "a binding allocates cons cells no use ever reads",
)


def lint_program(program: Program) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    top = program.letrec
    top_names = set(top.binding_names())
    for binding in top.bindings:
        _lint_expr(binding.expr, top_names, binding.name, out)
        _check_productive(binding.name, binding.expr, binding.span, out)
    _lint_expr(top.body, top_names, "<body>", out)
    _check_dead_after_bind(program, out)
    return out


def _check_dead_after_bind(program: Program, out: list[Diagnostic]) -> None:
    """LNT006: a non-function top-level binding that builds cons cells but
    whose heap-liveness use depth is 0 — every later occurrence is a
    depth-0 use (a bare ``null`` test, or a call whose summary never
    touches that parameter's cells), or there is no use at all."""
    candidates = [
        b
        for b in program.bindings
        if not isinstance(b.expr, Lambda)
        and any(
            isinstance(n, Prim) and n.name in ("cons", "dcons")
            for n in walk(b.expr)
        )
    ]
    if not candidates:
        return
    try:
        from repro.analysis.heap_liveness import analyze_program

        facts = analyze_program(program)
    except Exception:
        return
    if facts.degraded:
        return
    for binding in candidates:
        if facts.use_depth(binding.name) == 0:
            out.append(
                Diagnostic(
                    LNT006,
                    f"{binding.name!r} allocates cons cells, but no use ever "
                    "reads them (heap-liveness depth 0); the allocation is "
                    "dead weight",
                    span=binding.span,
                    context=binding.name,
                )
            )


def _lint_expr(
    expr: Expr, bound: set[str], context: str, out: list[Diagnostic]
) -> None:
    if isinstance(expr, Lambda):
        if expr.param in bound:
            out.append(
                Diagnostic(
                    LNT001,
                    f"parameter {expr.param!r} shadows an outer binding",
                    span=expr.span,
                    context=context,
                )
            )
        _lint_expr(expr.body, bound | {expr.param}, context, out)
        return
    if isinstance(expr, Letrec):
        names = expr.binding_names()
        for binding in expr.bindings:
            if binding.name in bound:
                out.append(
                    Diagnostic(
                        LNT001,
                        f"binding {binding.name!r} shadows an outer binding",
                        span=binding.span,
                        context=context,
                    )
                )
        inner = bound | set(names)
        for binding in expr.bindings:
            used = uses_var(expr.body, binding.name) or any(
                other is not binding and uses_var(other.expr, binding.name)
                for other in expr.bindings
            )
            if not used:  # self-recursion alone does not count as a use
                out.append(
                    Diagnostic(
                        LNT002,
                        f"binding {binding.name!r} is never used",
                        span=binding.span,
                        context=context,
                    )
                )
            _check_productive(binding.name, binding.expr, binding.span, out)
            _lint_expr(binding.expr, inner, context, out)
        _lint_expr(expr.body, inner, context, out)
        return
    if isinstance(expr, If) and isinstance(expr.cond, BoolLit):
        dead = "else" if expr.cond.value else "then"
        out.append(
            Diagnostic(
                LNT003,
                f"condition is always {str(expr.cond.value).lower()}; "
                f"the {dead} branch is unreachable",
                span=expr.cond.span,
                context=context,
            )
        )
    if isinstance(expr, App):
        head, args = uncurry_app(expr)
        if isinstance(head, Prim) and len(args) > head.arity:
            out.append(
                Diagnostic(
                    LNT005,
                    f"primitive {head.name!r} takes {head.arity} argument(s), "
                    f"applied to {len(args)}",
                    span=expr.span,
                    context=context,
                )
            )
    for child in expr.children():
        _lint_expr(child, bound, context, out)


def _check_productive(name, expr, span, out: list[Diagnostic]) -> None:
    """Flag ``name = λps. body`` whose every execution path recurses."""
    params, body = uncurry_lambda(expr)
    if name in params or not _always_recurses(body, name):
        return
    out.append(
        Diagnostic(
            LNT004,
            f"{name!r} recurses on every path; it can never return",
            span=span,
            context=name,
        )
    )


def _always_recurses(body: Expr, name: str) -> bool:
    """Every evaluation of ``body`` reaches a call (or read) of ``name``
    *in tail position* on every branch — the syntactic no-base-case shape.
    Conservative: only ifs split paths; anything else must itself be a call
    of ``name`` to count."""
    if isinstance(body, If):
        return _always_recurses(body.then, name) and _always_recurses(
            body.otherwise, name
        )
    if isinstance(body, Letrec):
        if name in body.binding_names():
            return False
        return _always_recurses(body.body, name)
    if isinstance(body, App):
        head, _ = uncurry_app(body)
        return isinstance(head, Var) and head.name == name
    return isinstance(body, Var) and body.name == name
