"""Storage optimizations driven by escape analysis: in-place reuse (DCONS),
stack allocation, and block allocation/reclamation."""

from repro.opt.block_alloc import BlockAllocResult, block_allocate_producer
from repro.opt.driver import Decision, OptimizationPlan, apply_plan, plan_optimizations
from repro.opt.liveness import uses_var, var_used_after
from repro.opt.pipeline import (
    PipelineResult,
    auto_reuse,
    paper_block_allocated,
    paper_ps_double_prime,
    paper_ps_prime,
    paper_rev_prime,
    paper_stack_allocated,
)
from repro.opt.reuse import (
    ReuseResult,
    make_reuse_specialization,
    redirect_body_calls,
    redirect_calls,
    select_reuse_sites,
)
from repro.opt.stack_alloc import StackAllocResult, stack_allocate_body

__all__ = [
    "BlockAllocResult", "block_allocate_producer", "Decision",
    "OptimizationPlan", "apply_plan", "plan_optimizations", "uses_var",
    "var_used_after", "PipelineResult", "auto_reuse",
    "paper_block_allocated", "paper_ps_double_prime", "paper_ps_prime",
    "paper_rev_prime", "paper_stack_allocated", "ReuseResult",
    "make_reuse_specialization", "redirect_body_calls", "redirect_calls",
    "select_reuse_sites", "StackAllocResult", "stack_allocate_body",
]
