"""B_e lattice tests, including hypothesis-checked lattice laws."""

import pytest
from hypothesis import given, strategies as st

from repro.escape.lattice import (
    BeChain,
    Escapement,
    NONE_ESCAPES,
    escapes_bottom,
    join_all,
)
from repro.lang.errors import AnalysisError

D = 4
POINTS = BeChain(D).points()
points = st.sampled_from(POINTS)


class TestConstruction:
    def test_none_escapes(self):
        assert NONE_ESCAPES == Escapement(0, 0)
        assert NONE_ESCAPES.is_none

    def test_escapes_bottom(self):
        assert escapes_bottom(2) == Escapement(1, 2)

    def test_invalid_escapes_flag(self):
        with pytest.raises(AnalysisError):
            Escapement(2, 0)

    def test_invalid_zero_with_spines(self):
        with pytest.raises(AnalysisError):
            Escapement(0, 3)

    def test_negative_spines(self):
        with pytest.raises(AnalysisError):
            Escapement(1, -1)

    def test_str(self):
        assert str(Escapement(1, 2)) == "<1,2>"


class TestChainStructure:
    def test_points_enumeration(self):
        chain = BeChain(2)
        assert chain.points() == [
            Escapement(0, 0),
            Escapement(1, 0),
            Escapement(1, 1),
            Escapement(1, 2),
        ]

    def test_height(self):
        assert BeChain(2).height() == 4

    def test_top_and_bottom(self):
        chain = BeChain(3)
        assert chain.bottom == NONE_ESCAPES
        assert chain.top == Escapement(1, 3)

    def test_membership(self):
        chain = BeChain(1)
        assert Escapement(1, 1) in chain
        assert Escapement(1, 2) not in chain
        assert NONE_ESCAPES in chain

    def test_check_raises_beyond_bound(self):
        with pytest.raises(AnalysisError):
            BeChain(1).check(Escapement(1, 2))

    def test_negative_d_rejected(self):
        with pytest.raises(AnalysisError):
            BeChain(-1)

    def test_total_order(self):
        pts = BeChain(3).points()
        for i, a in enumerate(pts):
            for j, b in enumerate(pts):
                assert a.leq(b) == (i <= j)


class TestOperations:
    def test_join_is_max_on_chain(self):
        assert Escapement(1, 0).join(Escapement(1, 2)) == Escapement(1, 2)
        assert NONE_ESCAPES.join(Escapement(1, 0)) == Escapement(1, 0)

    def test_meet(self):
        assert Escapement(1, 2).meet(Escapement(1, 1)) == Escapement(1, 1)
        assert Escapement(1, 2).meet(NONE_ESCAPES) == NONE_ESCAPES

    def test_join_all_empty(self):
        assert join_all([]) == NONE_ESCAPES

    def test_join_all_many(self):
        assert join_all([NONE_ESCAPES, Escapement(1, 1), Escapement(1, 0)]) == Escapement(1, 1)


class TestLatticeLaws:
    @given(points)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(points, points)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(points, points, points)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(points, points)
    def test_join_is_upper_bound(self, a, b):
        j = a.join(b)
        assert a.leq(j) and b.leq(j)

    @given(points, points)
    def test_join_is_least_upper_bound(self, a, b):
        j = a.join(b)
        for candidate in POINTS:
            if a.leq(candidate) and b.leq(candidate):
                assert j.leq(candidate)

    @given(points)
    def test_bottom_is_identity(self, a):
        assert NONE_ESCAPES.join(a) == a

    @given(points, points)
    def test_leq_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(points, points, points)
    def test_leq_transitive(self, a, b, c):
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(points, points)
    def test_meet_is_lower_bound(self, a, b):
        m = a.meet(b)
        assert m.leq(a) and m.leq(b)

    @given(points, points)
    def test_absorption(self, a, b):
        assert a.join(a.meet(b)) == a
        assert a.meet(a.join(b)) == a
