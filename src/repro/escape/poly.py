"""Polymorphic invariance (§5, Theorem 1).

For a polymorphic function ``f`` and any two monomorphic instances ``f'``,
``f''``: either the global test gives ⟨0,0⟩ for both, or it gives ⟨1,k'⟩ and
⟨1,k''⟩ with ``s'ᵢ − k' = s''ᵢ − k''`` — the *non-escaping top-spine prefix*
is an invariant of the function, not of the instance.  This is what lets a
compiler analyze only the simplest instance of each polymorphic function.

This module both *uses* the theorem (``simplest_instance``) and *checks* it
empirically by instantiating functions at a battery of filler types and
comparing the invariant across instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeTestResult
from repro.lang.errors import AnalysisError
from repro.types.instantiate import instantiate_scheme
from repro.types.types import BOOL, INT, TFun, TList, Type


#: Instance fillers used by default: spine counts 0, 0, 1, 2 and a function.
DEFAULT_FILLERS: tuple[Type, ...] = (
    INT,
    BOOL,
    TList(INT),
    TList(TList(INT)),
    TFun(INT, INT),
)


@dataclass(frozen=True)
class InvarianceRow:
    """One (instance, parameter) observation."""

    instance: Type
    param_index: int
    param_spines: int  # s_i at this instance
    result: EscapeTestResult

    @property
    def non_escaping(self) -> int:
        return self.result.non_escaping_spines

    @property
    def nothing_escapes(self) -> bool:
        return self.result.nothing_escapes


@dataclass(frozen=True)
class InvarianceReport:
    """All observations for one function, plus the verdict."""

    function: str
    rows: tuple[InvarianceRow, ...]
    holds: bool

    def rows_for_param(self, i: int) -> list[InvarianceRow]:
        return [row for row in self.rows if row.param_index == i]


def check_invariance(
    analysis: EscapeAnalysis,
    function: str,
    fillers: "tuple[Type, ...] | list[Type]" = DEFAULT_FILLERS,
) -> InvarianceReport:
    """Run the global test on every parameter at every instance and check
    Theorem 1's invariant.

    Instances that do not type-check against the rest of the program are
    skipped (a pin can conflict with a monomorphic use elsewhere in the
    knot); at least two instances must survive for the check to be
    meaningful.
    """
    scheme = analysis.scheme(function)
    if not scheme.vars:
        raise AnalysisError(f"{function} is not polymorphic ({scheme})")

    from repro.lang.errors import TypeInferenceError

    # Theorem 1 compares instances of "a function of arity n": use the
    # syntactic arity so arrows contributed by a function-typed filler are
    # part of the result type, not extra parameters.
    n_args = analysis.syntactic_arity(function)

    rows: list[InvarianceRow] = []
    instances: list[Type] = []
    for filler in fillers:
        instance = instantiate_scheme(scheme, {var: filler for var in scheme.vars})
        try:
            results = analysis.global_all(function, instance=instance, n_args=n_args)
        except TypeInferenceError:
            continue
        instances.append(instance)
        for result in results:
            rows.append(
                InvarianceRow(
                    instance=instance,
                    param_index=result.param_index,
                    param_spines=result.param_spines,
                    result=result,
                )
            )

    if len(instances) < 2:
        raise AnalysisError(
            f"fewer than two instances of {function} type-check; "
            "cannot exercise polymorphic invariance"
        )

    holds = True
    n_params = max(row.param_index for row in rows)
    for i in range(1, n_params + 1):
        observations = [row for row in rows if row.param_index == i]
        # Theorem 1: all-⟨0,0⟩, or equal non-escaping prefixes.
        if any(row.nothing_escapes for row in observations):
            if not all(row.nothing_escapes for row in observations):
                holds = False
        else:
            prefixes = {row.non_escaping for row in observations}
            if len(prefixes) != 1:
                holds = False

    return InvarianceReport(function=function, rows=tuple(rows), holds=holds)
