"""The tracer: hierarchical spans and typed events, zero-overhead when off.

One :class:`Tracer` owns a list of sinks (:mod:`repro.obs.sinks`) and a
span stack.  Components never hold a tracer; they call the module-level
API —

* ``obs.emit("gc_run", marked=..., swept=...)`` — one typed event;
* ``with obs.span("solve", pins=...):`` — a timed, nested span;
* ``t = obs.tracing()`` — the active tracer or ``None``, the guard hot
  paths use so that building an event's fields costs nothing when tracing
  is disabled.

No tracer is active by default: every instrumentation point reduces to one
global load and a ``None`` check, so the analysis and the interpreter are
bit-identical with tracing off (the AB4 ablation gate).  Activate a tracer
for a scope with :func:`activate`.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager, nullcontext
from typing import Iterator

from . import context as _context


class Span:
    """One open span on the tracer's stack."""

    __slots__ = ("id", "name", "started_at", "child_time")

    def __init__(self, id: int, name: str, started_at: float):
        self.id = id
        self.name = name
        self.started_at = started_at
        #: total duration of direct children, for self-time accounting
        self.child_time = 0.0


class Tracer:
    """Collects typed events and hierarchical spans into sinks.

    ``enabled`` can be flipped to pause collection without tearing the
    tracer down; events are numbered (``seq``) and timestamped (``ts``,
    seconds since construction) in emission order.
    """

    def __init__(self, sinks: "list | tuple | None" = None, enabled: bool = True):
        self.sinks = list(sinks or [])
        self.enabled = enabled
        self._clock = time.perf_counter
        self._t0 = self._clock()
        self._seq = 0
        self._span_ids = itertools.count(1)
        self._stack: list[Span] = []

    # -- events ------------------------------------------------------------

    def emit(self, type_: str, **fields) -> None:
        """Emit one typed event to every sink."""
        if not self.enabled:
            return
        event: dict = {
            "seq": self._seq,
            "ts": round(self._clock() - self._t0, 9),
            "type": type_,
        }
        if self._stack:
            event["span"] = self._stack[-1].id
        ctx = _context.current()
        if ctx is not None:
            event["trace_id"] = ctx.trace_id
            event["hop"] = ctx.hop
        event.update(fields)
        self._seq += 1
        for sink in self.sinks:
            sink.write(event)

    # -- spans -------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator["Span | None"]:
        """A timed, nested scope.  Emits ``span_start`` on entry and
        ``span_end`` (with total and self time) on exit."""
        if not self.enabled:
            yield None
            return
        span = Span(next(self._span_ids), name, self._clock())
        self.emit("span_start", id=span.id, name=name, **attrs)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            duration = self._clock() - span.started_at
            if self._stack:
                self._stack[-1].child_time += duration
            self.emit(
                "span_end",
                id=span.id,
                name=name,
                dur_s=round(duration, 9),
                self_s=round(max(0.0, duration - span.child_time), 9),
            )


# -- the active tracer -------------------------------------------------------

_active: Tracer | None = None
_NULL_SPAN = nullcontext()


def tracing() -> Tracer | None:
    """The active, enabled tracer — or ``None``.  Hot paths guard on this
    so field construction is skipped entirely when tracing is off."""
    tracer = _active
    if tracer is not None and tracer.enabled:
        return tracer
    return None


def emit(type_: str, **fields) -> None:
    """Emit an event on the active tracer (no-op when tracing is off)."""
    tracer = _active
    if tracer is not None:
        tracer.emit(type_, **fields)


def span(name: str, **attrs):
    """A span on the active tracer (a shared no-op scope when off)."""
    tracer = _active
    if tracer is None or not tracer.enabled:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the active tracer for a scope (restores the
    previous one — scopes nest)."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
