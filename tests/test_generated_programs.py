"""Grammar-level property tests over hypothesis-generated well-typed
programs: the whole pipeline must hold up on programs nobody hand-wrote."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import observe_escape
from repro.lang.errors import EvalError
from repro.lang.parser import parse_expr
from repro.lang.pretty import pretty, pretty_program
from repro.semantics.interp import Interpreter
from repro.types.infer import infer_expr, infer_program
from repro.types.types import INT, TList

from .strategies import INT_LIST, list_function_program, typed_expr

RELAXED = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestGeneratedExpressions:
    @RELAXED
    @given(expr=typed_expr(INT, {"l": INT_LIST}))
    def test_pretty_round_trips(self, expr):
        assert parse_expr(pretty(expr)) == expr

    @RELAXED
    @given(expr=typed_expr(INT, {"l": INT_LIST}))
    def test_inference_gives_declared_type(self, expr):
        from repro.types.types import TypeScheme

        ty = infer_expr(expr, {"l": TypeScheme.mono(INT_LIST)})
        assert ty == INT

    @RELAXED
    @given(expr=typed_expr(INT_LIST, {"l": INT_LIST}))
    def test_list_expressions_infer(self, expr):
        from repro.types.types import TypeScheme

        ty = infer_expr(expr, {"l": TypeScheme.mono(INT_LIST)})
        assert ty == INT_LIST


class TestGeneratedPrograms:
    @RELAXED
    @given(case=list_function_program())
    def test_whole_program_round_trips(self, case):
        program, _ = case
        from repro.lang.parser import parse_program

        assert parse_program(pretty_program(program)) == program

    @RELAXED
    @given(case=list_function_program())
    def test_inference_succeeds(self, case):
        program, _ = case
        infer_program(program)  # must not raise

    @RELAXED
    @given(case=list_function_program())
    def test_analysis_terminates_within_chain(self, case):
        program, _ = case
        analysis = EscapeAnalysis(program)
        result = analysis.global_test("f", 1)
        solved = analysis.last_solved
        assert solved is not None
        # the result is a point of the program's B_e chain
        assert result.result in solved.evaluator.chain
        for trace in solved.traces:
            assert trace.converged or trace.widened

    @RELAXED
    @given(case=list_function_program())
    def test_safety_on_generated_programs(self, case):
        """§3.5 on arbitrary programs: if a cell of the argument reaches the
        result at run time, the abstract *local* test (which analyzes the
        call at its own instance — the global default instance may have a
        different spine count, cf. Theorem 1) must predict it."""
        program, values = case
        interp = Interpreter()
        try:
            interp.run(program)
        except EvalError:
            return  # e.g. car of an empty fallback branch: fine, skip
        observed = observe_escape(program, "f", [values], 1)
        local = EscapeAnalysis(program).local_test(program.body, i=1)
        if observed.escaped:
            assert not local.nothing_escapes
            assert observed.escaping_spines <= local.escaping_spines

    @RELAXED
    @given(case=list_function_program())
    def test_interpreter_type_soundness(self, case):
        """Well-typed programs don't go wrong: the only permissible dynamic
        failures are the partial primitives (car/cdr of nil)."""
        program, _ = case
        interp = Interpreter()
        try:
            value = interp.run(program)
        except EvalError as error:
            assert "nil" in error.message
            return
        from repro.semantics.values import VCons, VInt, VNil

        assert isinstance(value, (VInt, VCons, VNil))
