"""Benchmark-harness configuration.

Every module in this directory regenerates one artifact of the paper (a
figure, a table, or an Appendix A scenario) — see the experiment index in
DESIGN.md.  Each test asserts the paper's *shape* (who wins, by what kind
of factor, which lattice values come out) and times the underlying
operation with pytest-benchmark.  Run with ``-s`` to see the regenerated
tables alongside the timings::

    pytest benchmarks/ --benchmark-only -s

Observability: every benchmark runs under a metrics-folding tracer, and
``pytest_sessionfinish`` writes ``BENCH_obs.json`` at the repo root —
per-experiment storage counters, session stats, and wall time — so a run's
observable behaviour can be diffed across commits without re-timing it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.obs import MetricsSink, MetricsRegistry, Tracer, activate

#: nodeid -> {"wall_s": float, "counters": {formatted key: value}}
_RESULTS: dict[str, dict] = {}


def pytest_configure(config):
    # Benchmarks double as shape-assertions; keep rounds small so the whole
    # harness regenerates every artifact in minutes.
    config.option.benchmark_min_rounds = min(
        getattr(config.option, "benchmark_min_rounds", 5) or 5, 3
    )


@pytest.fixture(autouse=True)
def _observe_benchmark(request):
    """Fold every traced event of one experiment into its own registry."""
    registry = MetricsRegistry()
    tracer = Tracer(sinks=[MetricsSink(registry)])
    started = time.perf_counter()
    with activate(tracer):
        yield
    wall_s = time.perf_counter() - started
    counters = {
        key: value for key, value in sorted(registry.snapshot().items()) if value
    }
    _RESULTS[request.node.nodeid] = {
        "wall_s": round(wall_s, 6),
        "counters": counters,
    }


def pytest_sessionfinish(session):
    if not _RESULTS:
        return
    out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
