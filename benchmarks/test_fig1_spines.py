"""F1 — Figure 1: the spines of a list.

Regenerates the spine decomposition for the paper's nested list and checks
Definition 1 quantitatively on random nested lists.
"""

from repro.bench.figures import spine_census, spine_figure
from repro.bench.workloads import random_nested_list
from repro.semantics.interp import Interpreter

PAPER_LIST = [[1, 2], [3, 4], [5, 6]]


def test_fig1_paper_list(benchmark):
    figure = benchmark(spine_figure, PAPER_LIST)
    print("\n" + figure)
    interp = Interpreter()
    census = spine_census(interp, interp.from_python(PAPER_LIST))
    # Figure 1: three cells on the top spine, six on the second.
    assert census == {1: 3, 2: 6}


def test_fig1_census_matches_structure(benchmark):
    rows, row_len = 8, 5
    values = random_nested_list(rows, row_len, seed=7)

    def census():
        interp = Interpreter()
        return spine_census(interp, interp.from_python(values))

    result = benchmark(census)
    assert result == {1: rows, 2: rows * row_len}


def test_fig1_three_level_list(benchmark):
    values = [[[1], [2, 3]], [[4]]]

    def census():
        interp = Interpreter()
        return spine_census(interp, interp.from_python(values))

    result = benchmark(census)
    assert result == {1: 2, 2: 3, 3: 4}
    print("\n" + spine_figure(values))
