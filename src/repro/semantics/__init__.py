"""The standard semantics substrate: instrumented heap, regions, mark-sweep
GC, and the strict interpreter."""

from repro.semantics.gc import GcStats, MarkSweepGC
from repro.semantics.heap import AllocKind, Cell, Heap, Region
from repro.semantics.interp import Interpreter, run_program
from repro.semantics.metrics import StorageMetrics
from repro.semantics.values import (
    FALSE,
    NIL,
    TRUE,
    Env,
    Value,
    VBool,
    VClosure,
    VCons,
    VInt,
    VNil,
    VPrim,
    VTuple,
)

__all__ = [
    "GcStats", "MarkSweepGC", "AllocKind", "Cell", "Heap", "Region",
    "Interpreter", "run_program", "StorageMetrics", "FALSE", "NIL", "TRUE",
    "Env", "Value", "VBool", "VClosure", "VCons", "VInt", "VNil", "VPrim", "VTuple",
]
