"""The unified metrics registry: namespaced counters, gauges, histograms.

Before this layer existed, the repository had three disjoint counter pots —
:class:`~repro.semantics.metrics.StorageMetrics` (runtime storage events),
:class:`~repro.query.SessionStats` (query-engine cache accounting), and the
hardened engine's :class:`~repro.robust.errors.BudgetSpent` meters — each
with its own snapshot shape.  :class:`MetricsRegistry` subsumes them:

* one ``name{label=value,...}`` key syntax for every metric (the same
  labelled form ``StorageMetrics.snapshot`` now uses for
  ``region_allocs{kind=...}``);
* ``ingest_storage`` / ``ingest_session`` / ``ingest_budget`` adapters that
  fold each legacy pot into the registry under a namespace;
* a :class:`~repro.obs.sinks.MetricsSink` that aggregates a live event
  stream into a registry, so benchmarks and the CLI get counters without
  holding references to interpreters or sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A metric key: name plus a canonical (sorted) label tuple.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def metric_key(name: str, /, **labels) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def format_key(key: MetricKey) -> str:
    """Render ``("n", (("k","v"),))`` as ``n{k=v}`` (bare ``n`` unlabelled)."""
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


#: Size of the per-histogram sample reservoir backing the percentile
#: estimates.  512 doubles is ~4 KiB per histogram — bounded memory on a
#: long-lived daemon — while quantiles over the window stay exact until
#: the reservoir wraps.
RESERVOIR_SIZE = 512

#: The percentiles every histogram exports (``/metrics`` latency SLOs).
PERCENTILES = ((50, "p50"), (95, "p95"), (99, "p99"))


@dataclass
class Histogram:
    """A bounded summary of observed values (count/sum/min/max plus
    p50/p95/p99 from a fixed-size sample reservoir).

    The reservoir overwrites deterministically at ``count % size`` — no
    randomness, so two runs observing the same sequence report the same
    percentiles — keeping a sliding sample of recent observations whose
    quantiles approximate the stream's once it wraps.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))
    samples: list[float] = field(default_factory=list)
    reservoir_size: int = RESERVOIR_SIZE

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if len(self.samples) < self.reservoir_size:
            self.samples.append(value)
        else:
            # Round-robin overwrite: observation N lands in slot
            # (N-1) % size, a deterministic sliding window.
            self.samples[(self.count - 1) % self.reservoir_size] = value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sampled window (nearest-rank,
        linear interpolation between adjacent samples)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
        }
        for q, label in PERCENTILES:
            out[label] = self.percentile(q)
        return out


class MetricsRegistry:
    """Labelled counters, gauges, and histograms with one snapshot shape."""

    def __init__(self) -> None:
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, value: float = 1, /, **labels) -> None:
        key = metric_key(name, **labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        self._gauges[metric_key(name, **labels)] = value

    def observe(self, name: str, value: float, /, **labels) -> None:
        key = metric_key(name, **labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        histogram.observe(value)

    # -- reads -------------------------------------------------------------

    def counter(self, name: str, /, **labels) -> float:
        return self._counters.get(metric_key(name, **labels), 0)

    def gauge(self, name: str, /, **labels) -> float | None:
        return self._gauges.get(metric_key(name, **labels))

    def histogram(self, name: str, /, **labels) -> Histogram | None:
        return self._histograms.get(metric_key(name, **labels))

    def snapshot(self) -> dict[str, float]:
        """Every metric under its ``name{label=value,...}`` key.  Histograms
        expand to ``name.count`` / ``name.sum`` / ... components.  Keys are
        globally sorted — counters, gauges, and histogram components
        interleaved in one lexicographic order — so two scrapes of the same
        state are byte-identical and diffable in CI artifacts."""
        out: dict[str, float] = {}
        for key, value in self._counters.items():
            out[format_key(key)] = value
        for key, value in self._gauges.items():
            out[format_key(key)] = value
        for key, histogram in self._histograms.items():
            name, labels = key
            for part, value in histogram.summary().items():
                out[format_key((f"{name}.{part}", labels))] = value
        return dict(sorted(out.items()))

    # -- legacy-pot adapters ----------------------------------------------

    def ingest_storage(self, storage, namespace: str = "storage") -> None:
        """Fold a :class:`~repro.semantics.metrics.StorageMetrics` snapshot
        (labelled region keys included) into the registry."""
        for key, value in storage.snapshot().items():
            self.inc(f"{namespace}.{key}" if namespace else key, value)

    def ingest_session(self, stats, namespace: str = "session") -> None:
        """Fold a :class:`~repro.query.SessionStats` / ``QueryStats``."""
        prefix = f"{namespace}." if namespace else ""
        for name in (
            "solve_hits",
            "solve_misses",
            "scc_hits",
            "scc_misses",
            "iterations",
            "eval_steps",
        ):
            self.inc(prefix + name, getattr(stats, name))
        queries = getattr(stats, "queries", None)
        if queries is not None:
            self.inc(prefix + "queries", queries)

    def ingest_budget(self, spent, namespace: str = "budget") -> None:
        """Fold a :class:`~repro.robust.errors.BudgetSpent`."""
        prefix = f"{namespace}." if namespace else ""
        self.observe(prefix + "wall_s", spent.wall_seconds)
        self.inc(prefix + "eval_steps", spent.eval_steps)
        self.inc(prefix + "iterations", spent.iterations)
