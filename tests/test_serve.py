"""``repro serve``: the always-answer daemon.

Service-level tests drive :class:`~repro.serve.AnalysisService.handle`
directly (every branch of the degraded-answer contract); HTTP-level tests
bind a real :func:`~repro.serve.make_server` on an ephemeral port and go
through the wire, including the graceful-SIGTERM path of
:func:`~repro.serve.serve` itself.
"""

from __future__ import annotations

import io
import json
import os
import signal
import threading
import urllib.error
import urllib.request

import pytest

from repro.check import check_program
from repro.lang.parser import parse_program
from repro.lang.prelude import prelude_source
from repro.obs import RingBufferSink, Tracer, activate
from repro.obs.events import validate_trace
from repro.robust import faults
from repro.robust.faults import FaultPlan, StageFault
from repro.robust.resilience import ResiliencePolicy, RetryPolicy
from repro.serve import (
    AnalysisService,
    _InFlight,
    make_server,
    request_digest,
    serve,
)

APPEND = prelude_source(["append"], "append [1, 2] [3]")
REV = prelude_source(["append", "rev"], "rev [1, 2, 3]")


@pytest.fixture
def service(tmp_path):
    return AnalysisService(
        store_root=str(tmp_path / "store"), default_deadline_ms=5000.0
    )


# ---------------------------------------------------------------------------
# the service: answers
# ---------------------------------------------------------------------------


def test_analyze_exact(service):
    status, doc = service.handle("analyze", {"source": APPEND})
    assert status == 200 and doc["ok"] and not doc["degraded"]
    assert doc["exit_code"] == 0 and doc["results"]
    assert all("result" in r or "error" in r for r in doc["results"])
    assert "stats" in doc


def test_analyze_function_filter(service):
    status, doc = service.handle("analyze", {"source": REV, "function": "rev"})
    assert status == 200
    assert {r["function"] for r in doc["results"]} == {"rev"}


def test_analyze_starved_deadline_degrades_not_fails(service):
    status, doc = service.handle(
        "analyze", {"source": APPEND, "deadline_ms": 0.0001}
    )
    assert status == 200 and doc["ok"]
    assert doc["degraded"] and doc["exit_code"] == 3
    assert any(r.get("degraded") for r in doc["results"])
    reasons = {
        r["degradation"]["reason"] for r in doc["results"] if r.get("degraded")
    }
    assert "deadline" in "".join(reasons)


def test_check_clean_program(service):
    status, doc = service.handle("check", {"source": APPEND})
    assert status == 200 and doc["ok"] and doc["exit_code"] == 0
    assert doc["counts"]["error"] == 0


def test_optimize_returns_auditable_program(service):
    status, doc = service.handle("optimize", {"source": APPEND})
    assert status == 200 and doc["ok"]
    assert any("reuse" in step for step in doc["applied"])
    audited = check_program(parse_program(doc["program"]), passes=["audit"])
    assert audited.counts()["error"] == 0


def test_optimize_starved_deadline_returns_original_program(service):
    status, doc = service.handle(
        "optimize", {"source": APPEND, "deadline_ms": 0.0001}
    )
    assert status == 200 and doc["ok"] and doc["degraded"]
    assert doc["exit_code"] == 3 and doc["degradations"]
    # still a parseable, auditable program — degraded means less optimized,
    # never broken
    assert check_program(
        parse_program(doc["program"]), passes=["audit"]
    ).counts()["error"] == 0


# ---------------------------------------------------------------------------
# the service: refusals (still structured answers)
# ---------------------------------------------------------------------------


def test_unknown_endpoint_is_404(service):
    status, doc = service.handle("bogus", {"source": APPEND})
    assert status == 404 and not doc["ok"]


def test_missing_source_is_400(service):
    status, doc = service.handle("analyze", {})
    assert status == 400 and not doc["ok"] and doc["exit_code"] == 1


def test_parse_error_is_400_with_formatted_error(service):
    status, doc = service.handle("analyze", {"source": "letrec ( in 3"})
    assert status == 400 and not doc["ok"]
    assert "expected" in doc["error"] or "parse" in doc["error"].lower()


def test_injected_fault_is_500_with_json_body(service):
    with faults.inject(FaultPlan(stage_faults=(StageFault("serve", at=1),))):
        status, doc = service.handle("analyze", {"source": APPEND})
    assert status == 500 and not doc["ok"] and "error" in doc


# ---------------------------------------------------------------------------
# the service: breaker and coalescing
# ---------------------------------------------------------------------------


def test_breaker_short_circuits_failing_digest_to_degraded():
    service = AnalysisService(
        policy=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1), breaker_threshold=2
        )
    )
    plan = FaultPlan(
        stage_faults=(StageFault("serve", at=1), StageFault("serve", at=2))
    )
    with faults.inject(plan):
        for _ in range(2):
            status, doc = service.handle("analyze", {"source": APPEND})
            assert status == 500
    # circuit is open for this digest: immediate sound degraded answer,
    # no execution at all (no fault left to fire anyway)
    status, doc = service.handle("analyze", {"source": APPEND})
    assert status == 200 and doc["ok"] and doc["degraded"]
    assert doc["exit_code"] == 3 and doc["circuit"] == "open"
    # a different question is a different target: unaffected
    status, doc = service.handle("analyze", {"source": REV})
    assert status == 200 and not doc.get("circuit")


def test_followers_coalesce_onto_the_leader(service):
    payload = {"source": APPEND}
    key = request_digest("analyze", payload)
    entry = _InFlight()
    service._inflight[key] = entry  # a leader is mid-flight

    follower: dict = {}

    def follow():
        follower["status"], follower["doc"] = service.handle("analyze", payload)

    thread = threading.Thread(target=follow)
    thread.start()
    thread.join(0.2)
    assert thread.is_alive()  # parked on the leader's event
    entry.status, entry.doc = 200, {"ok": True, "degraded": False, "exit_code": 0}
    del service._inflight[key]
    entry.event.set()
    thread.join(5.0)
    assert follower["status"] == 200
    assert follower["doc"]["coalesced"] is True and follower["doc"]["ok"]
    # the leader's stored doc was copied, not mutated
    assert "coalesced" not in entry.doc


def test_leader_cleans_up_inflight_table(service):
    service.handle("analyze", {"source": APPEND})
    assert service._inflight == {}


def test_requests_emit_schema_valid_events_and_metrics(service):
    ring = RingBufferSink(capacity=None)
    with activate(Tracer(sinks=[ring])):
        service.handle("analyze", {"source": APPEND})
        service.handle("bogus", {"source": APPEND})
    requests = [e for e in ring.events if e["type"] == "serve_request"]
    assert [(e["endpoint"], e["status"]) for e in requests] == [
        ("analyze", 200),
        ("bogus", 404),
    ]
    validate_trace(ring.events)
    text = service.metrics_text()
    assert 'serve.requests{endpoint=analyze,status=200} 1' in text
    assert "serve.uptime_s" in text
    assert "serve.store_hits" in text  # store counters fold into the scrape


# ---------------------------------------------------------------------------
# the service: trace context, flight recorder, latency percentiles
# ---------------------------------------------------------------------------


def test_every_response_echoes_a_trace_id(service):
    status, doc = service.handle("analyze", {"source": APPEND})
    assert status == 200
    assert len(doc["trace_id"]) == 32
    # A second request is a different causal chain.
    _, again = service.handle("analyze", {"source": REV})
    assert again["trace_id"] != doc["trace_id"]


def test_traceparent_header_joins_the_callers_trace(service):
    from repro.obs.context import TraceContext

    caller = TraceContext.mint()
    status, doc = service.handle(
        "analyze", {"source": APPEND}, traceparent=caller.to_traceparent()
    )
    assert status == 200
    assert doc["trace_id"] == caller.trace_id


def test_malformed_traceparent_mints_a_fresh_trace(service):
    status, doc = service.handle(
        "analyze", {"source": APPEND}, traceparent="00-zzz-bad-header"
    )
    assert status == 200
    assert len(doc["trace_id"]) == 32


def test_request_events_are_stamped_with_the_request_trace(service):
    ring = RingBufferSink(capacity=None)
    with activate(Tracer(sinks=[ring])):
        _, doc = service.handle("analyze", {"source": APPEND})
    stamped = [e for e in ring.events if e.get("trace_id") == doc["trace_id"]]
    assert stamped
    assert {e["type"] for e in stamped} >= {"serve_request"}


def test_flight_doc_snapshots_a_validated_black_box(service):
    with activate(Tracer(sinks=[service.flight])):
        service.handle("analyze", {"source": APPEND, "deadline_ms": 0.0001})
    doc = service.flight_doc()
    assert doc["ok"] and doc["captured"] > 0
    assert doc["triggers"] >= 1  # the starved deadline degraded
    validate_trace(doc["events"])
    assert doc["events"][0]["type"] == "flight_dump"


def test_metrics_expose_latency_percentiles(service):
    for _ in range(3):
        service.handle("analyze", {"source": APPEND})
    text = service.metrics_text()
    for quantile in ("p50", "p95", "p99"):
        assert f"serve.latency_s.{quantile}{{endpoint=analyze}}" in text
    # The scrape is byte-stable: keys arrive sorted.
    keys = [line.split(" ")[0] for line in text.splitlines() if " " in line]
    assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# over the wire
# ---------------------------------------------------------------------------


@pytest.fixture
def http_server(service):
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(5.0)


def _post(base, endpoint, body: bytes):
    request = urllib.request.Request(
        f"{base}/{endpoint}", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_analyze_roundtrip(http_server):
    status, doc = _post(http_server, "analyze", json.dumps({"source": APPEND}).encode())
    assert status == 200 and doc["ok"] and doc["exit_code"] == 0


def test_http_bad_json_body_is_400(http_server):
    status, doc = _post(http_server, "analyze", b"{not json")
    assert status == 400 and "bad JSON body" in doc["error"]


def test_http_healthz_metrics_and_unknown_route(http_server):
    with urllib.request.urlopen(f"{http_server}/healthz", timeout=30) as response:
        assert response.status == 200 and json.loads(response.read())["ok"]
    with urllib.request.urlopen(f"{http_server}/metrics", timeout=30) as response:
        assert response.status == 200
        assert b"serve.uptime_s" in response.read()
    try:
        urllib.request.urlopen(f"{http_server}/nope", timeout=30)
        assert False, "expected 404"
    except urllib.error.HTTPError as error:
        assert error.code == 404


def test_http_traceparent_and_debug_flight(http_server):
    from repro.obs.context import TraceContext

    caller = TraceContext.mint()
    request = urllib.request.Request(
        f"{http_server}/analyze",
        data=json.dumps({"source": APPEND}).encode(),
        headers={
            "Content-Type": "application/json",
            "traceparent": caller.to_traceparent(),
        },
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        doc = json.loads(response.read())
    assert doc["trace_id"] == caller.trace_id

    with urllib.request.urlopen(f"{http_server}/debug/flight", timeout=30) as response:
        assert response.status == 200
        flight = json.loads(response.read())
    assert flight["ok"]
    validate_trace(flight["events"])


def test_serve_shuts_down_gracefully_on_sigterm(tmp_path):
    stream = io.StringIO()
    timer = threading.Timer(0.5, os.kill, [os.getpid(), signal.SIGTERM])
    timer.start()
    try:
        code = serve(
            host="127.0.0.1",
            port=0,
            store_root=str(tmp_path / "store"),
            ready_stream=stream,
        )
    finally:
        timer.cancel()
    assert code == 0
    output = stream.getvalue()
    assert "listening on http://127.0.0.1:" in output
    assert "shut down cleanly" in output
    # the previous signal disposition is restored
    assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
