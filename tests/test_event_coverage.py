"""Schema exhaustiveness and cross-process round-trips.

Two guarantees the observability layer rests on:

* every ``emit("<type>", ...)`` call site anywhere in ``src/`` names an
  event type registered in :data:`repro.obs.events.EVENT_FIELDS` — a new
  instrumentation point cannot silently emit events ``validate_trace``
  would reject (found by scanning the source, so the check covers call
  sites no test happens to execute);
* a traced parallel batch run (``--jobs N``) stamps worker-side events
  with the originating file's trace_id, and the merged shards form one
  schema-valid, causally ordered trace.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.batch import run_batch
from repro.cli import main
from repro.lang.prelude import prelude_source
from repro.obs import JsonlSink, Tracer, activate
from repro.obs.context import merge_traces
from repro.obs.events import EVENT_FIELDS, validate_trace
from repro.obs.sinks import read_trace

SRC = Path(__file__).resolve().parent.parent / "src"

#: ``emit("type", ...)`` / ``tracer.emit('type', ...)`` call sites;
#: ``\s*`` spans newlines, so wrapped calls with the type on the next
#: line are matched too.
EMIT_CALL = re.compile(r"\bemit\(\s*(['\"])([a-z_]+)\1")


def _emit_sites():
    """Every (file, line, event type) emitted anywhere under src/."""
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for match in EMIT_CALL.finditer(text):
            lineno = text.count("\n", 0, match.start()) + 1
            sites.append((path.relative_to(SRC), lineno, match.group(2)))
    return sites


class TestEmitExhaustiveness:
    def test_scan_finds_the_instrumentation(self):
        # Guard the guard: if the regex ever stops matching real call
        # sites, this test must fail loudly rather than pass vacuously.
        types = {etype for _, _, etype in _emit_sites()}
        assert len(types) >= 20
        assert {"degradation", "quarantine", "worker_restart", "decision"} <= types

    def test_every_emit_site_names_a_schema_event(self):
        unknown = [
            f"{path}:{lineno}: emit({etype!r})"
            for path, lineno, etype in _emit_sites()
            if etype not in EVENT_FIELDS
        ]
        assert not unknown, (
            "emit() call sites with event types missing from "
            "repro.obs.events.EVENT_FIELDS:\n" + "\n".join(unknown)
        )

    def test_dynamic_emit_types_are_not_used(self):
        # The exhaustiveness scan only works if event types are string
        # literals at the call site; reject emit(variable, ...) in src/.
        dynamic = []
        call = re.compile(r"\bobs\.emit\(\s*([A-Za-z_][A-Za-z0-9_.]*)\s*[,)]")
        for path in sorted(SRC.rglob("*.py")):
            text = path.read_text()
            for match in call.finditer(text):
                lineno = text.count("\n", 0, match.start()) + 1
                dynamic.append(
                    f"{path.relative_to(SRC)}:{lineno}: {match.group(0)}"
                )
        assert not dynamic, "non-literal obs.emit() types:\n" + "\n".join(dynamic)


APPEND = prelude_source(["append"], "append [1, 2] [3]")
REV = prelude_source(["append", "rev"], "rev [1, 2, 3]")


@pytest.fixture
def corpus(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "append.nml").write_text(APPEND)
    (root / "rev.nml").write_text(REV)
    return root


class TestContextRoundTrip:
    def test_parallel_workers_stamp_events_with_file_traces(
        self, corpus, tmp_path
    ):
        shard_dir = tmp_path / "shards"
        driver_shard = shard_dir / "driver.jsonl"
        shard_dir.mkdir()
        jsonl = JsonlSink.open(driver_shard)
        try:
            with activate(Tracer(sinks=[jsonl])):
                report = run_batch(
                    [corpus],
                    store_root=None,
                    jobs=2,
                    timeout_s=30.0,
                    trace_dir=shard_dir,
                )
        finally:
            jsonl.close()
        assert report.ok
        trace_ids = {r.path: r.trace_id for r in report.reports}
        assert all(trace_ids.values())
        assert len(set(trace_ids.values())) == len(trace_ids)

        worker_shards = sorted(shard_dir.glob("worker-*.jsonl"))
        assert worker_shards  # the supervised path actually forked workers
        worker_events = [e for p in worker_shards for e in read_trace(p)]
        assert worker_events
        # Every worker-side event carries the originating file's trace_id
        # at hop 1 (driver hop 0 → worker hop 1 across the Pipe).
        for event in worker_events:
            assert event["trace_id"] in trace_ids.values()
            assert event["hop"] == 1
        # Worker solve events exist for both files' traces.
        solved_traces = {
            e["trace_id"]
            for e in worker_events
            if e["type"] in ("transfer_eval", "scc_solve_finish", "ir_lower")
        }
        assert solved_traces == set(trace_ids.values())

        shards = [list(read_trace(p)) for p in [driver_shard, *worker_shards]]
        merged = merge_traces(shards)
        validate_trace(merged)
        # Causal order: within one trace, hops never decrease.
        last_hop: dict[str, int] = {}
        for event in merged:
            trace_id = event.get("trace_id")
            if not trace_id:
                continue
            assert event["hop"] >= last_hop.get(trace_id, 0)
            last_hop[trace_id] = event["hop"]

    def test_cli_batch_trace_merges_shards_and_reports_trace_ids(
        self, corpus, tmp_path, capsys
    ):
        out = tmp_path / "merged.jsonl"
        code = main(
            [
                "batch",
                str(corpus),
                "--no-store",
                "--jobs",
                "2",
                "--timeout-ms",
                "30000",
                "--trace",
                str(out),
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        merged = list(read_trace(out))
        validate_trace(merged)
        # A clean supervised run emits only inside the workers (the
        # driver speaks up on retries/restarts), so worker shards must
        # dominate the merged trace.
        shards = {e["shard"] for e in merged}
        assert any(s.startswith("worker") for s in shards)
        merged_traces = {e.get("trace_id") for e in merged}
        for entry in doc["files"]:
            assert entry["trace_id"] in merged_traces

    def test_cli_batch_profile_adds_per_file_summaries(
        self, corpus, tmp_path, capsys
    ):
        code = main(
            ["batch", str(corpus), "--no-store", "--profile", "--json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        for entry in doc["files"]:
            assert entry["profile"]["iterations"] > 0
            assert entry["profile"]["eval_steps"] > 0
        # The merged-trace profile report lands on stderr.
        assert "profile" in captured.err or "span" in captured.err
