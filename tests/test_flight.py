"""The crash flight recorder (:mod:`repro.obs.flight`): ring bounds,
trigger-driven dumps, dump validity, and the chaos acceptance story — a
seeded chaos batch run leaves a black box that ``validate_trace``
accepts and ``repro explain`` can reconstruct the degraded query from."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lang.prelude import prelude_source
from repro.obs import Tracer, activate, emit
from repro.obs.events import validate_trace, validate_trace_file
from repro.obs.explain import explain_binding
from repro.obs.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_DIR_ENV,
    FlightRecorder,
    dump_dir_from_env,
    install,
    recorder,
)


def _event(seq, etype, **fields):
    return {"seq": seq, "ts": float(seq), "type": etype, **fields}


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        flight = FlightRecorder(capacity=4)
        for seq in range(10):
            flight.write(_event(seq, "store_reap", count=seq))
        assert flight.total == 10
        window = flight.snapshot()
        assert len(window) == 4
        assert [e["count"] for e in window] == [6, 7, 8, 9]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_CAPACITY

    def test_trigger_dumps_to_dir(self, tmp_path):
        flight = FlightRecorder(dump_dir=tmp_path)
        flight.write(_event(0, "store_reap", count=0))
        flight.write(_event(1, "degradation", reason="deadline", stage="solve"))
        assert flight.triggers == 1
        assert len(flight.dumps) == 1
        dump = flight.dumps[0]
        assert dump.parent == tmp_path
        assert "degradation" in dump.name
        validate_trace_file(dump)

    def test_no_dump_dir_still_counts_triggers(self):
        flight = FlightRecorder()
        flight.write(_event(0, "quarantine", key="x", attempts=3, reason="boom"))
        assert flight.triggers == 1
        assert flight.dumps == []

    def test_max_dumps_cap(self, tmp_path):
        flight = FlightRecorder(dump_dir=tmp_path, max_dumps=2)
        for seq in range(5):
            flight.write(
                _event(seq, "worker_restart", key="f", attempt=seq, cause="crash")
            )
        assert flight.triggers == 5
        assert len(flight.dumps) == 2

    def test_checker_error_is_a_trigger_warning_is_not(self, tmp_path):
        flight = FlightRecorder(dump_dir=tmp_path)
        flight.write(
            _event(0, "check_rule_fired", rule="r", severity="warning", **{"pass": "lint"})
        )
        assert flight.triggers == 0
        flight.write(
            _event(1, "check_rule_fired", rule="r", severity="error", **{"pass": "audit"})
        )
        assert flight.triggers == 1
        assert "checker_error" in flight.dumps[0].name

    def test_dump_events_validate_with_header(self):
        flight = FlightRecorder()
        flight.write(_event(0, "store_reap", count=1))
        flight.write(_event(1, "degradation", reason="deadline", stage="solve"))
        events = flight.dump_events("manual")
        validate_trace(events)
        header = events[0]
        assert header["type"] == "flight_dump"
        assert header["reason"] == "manual"
        assert header["captured"] == 2
        assert header["total"] == 2
        # Captured events are re-sequenced after the header, originals kept.
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert [e["src_seq"] for e in events[1:]] == [0, 1]

    def test_install_and_env_dir(self, tmp_path, monkeypatch):
        flight = FlightRecorder()
        assert install(flight) is flight
        assert recorder() is flight
        monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)
        assert dump_dir_from_env() is None
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        assert dump_dir_from_env() == tmp_path

    def test_recorder_captures_via_tracer(self):
        flight = FlightRecorder()
        with activate(Tracer(sinks=[flight])):
            emit("store_reap", count=3)
        assert flight.total == 1
        assert flight.snapshot()[0]["count"] == 3


APPEND = prelude_source(["append"], "append [1, 2] [3]")
REV = prelude_source(["append", "rev"], "rev [1, 2, 3]")


class TestChaosAcceptance:
    """The acceptance story: a seeded chaos run (injected worker crash +
    budget degradation) must leave a validated black box from which the
    degraded query's causal chain can be reconstructed."""

    @pytest.fixture
    def corpus(self, tmp_path):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "append.nml").write_text(APPEND)
        (root / "rev.nml").write_text(REV)
        return root

    def test_chaos_run_leaves_an_explainable_black_box(self, corpus, tmp_path):
        from repro.batch import run_batch
        from repro.robust.faults import FaultPlan
        from repro.robust.resilience import RetryPolicy

        box = tmp_path / "black-box"
        flight = FlightRecorder(dump_dir=box)
        plan = FaultPlan(worker_crash_at=1)
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, seed=7)
        with activate(Tracer(sinks=[flight])):
            report = run_batch(
                [corpus],
                store_root=None,
                jobs=1,
                deadline_ms=0.0001,
                retry=retry,
                fault_plan=plan,
                trace=True,
            )
        # The injected crash was retried and the tiny deadline degraded
        # every solve — both are flight triggers.
        assert flight.triggers >= 1
        assert report.degraded_files
        assert report.exit_code() == 3
        assert flight.dumps

        # Every dump is a schema-valid trace in its own right.
        for dump in flight.dumps:
            validate_trace_file(dump)

        # And the black box alone reconstructs the degraded query's
        # causal chain: the binding was found, its degradation recorded.
        events = [
            json.loads(line)
            for line in flight.dumps[-1].read_text().splitlines()
        ]
        degraded = next(r for r in report.reports if r.degraded)
        binding = "rev" if "rev" in degraded.path else "append"
        explanation = explain_binding(events, binding)
        assert explanation.found
        assert explanation.degradations
        assert degraded.trace_id in explanation.trace_ids

        # The CLI agrees: `repro explain` on the dump file exits 0 and
        # renders the degradation chain.
        assert main(["explain", str(flight.dumps[-1]), "--binding", binding]) == 0

    def test_cli_batch_degradation_dumps_with_flight_dir(
        self, corpus, tmp_path, capsys
    ):
        box = tmp_path / "box"
        code = main(
            [
                "--flight-dir",
                str(box),
                "batch",
                str(corpus),
                "--no-store",
                "--deadline-ms",
                "0.0001",
            ]
        )
        assert code == 3
        dumps = sorted(box.glob("*.jsonl"))
        assert dumps
        for dump in dumps:
            validate_trace_file(dump)

    def test_cli_no_flight_dir_writes_nothing(self, corpus, tmp_path, monkeypatch):
        monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        code = main(["batch", str(corpus), "--no-store", "--deadline-ms", "0.0001"])
        assert code == 3
        assert list(tmp_path.glob("*.jsonl")) == []
