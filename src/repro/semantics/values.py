"""Runtime values of the standard semantics.

Lists are *not* Python lists: a non-empty list is a reference to a cons cell
in the instrumented heap (:mod:`repro.semantics.heap`), so aliasing, sharing
and destructive reuse behave exactly as in the stack-and-heap implementation
the paper's analysis targets (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.lang.ast import Expr, Lambda, Prim
from repro.lang.errors import EvalError

if TYPE_CHECKING:  # pragma: no cover
    from repro.semantics.heap import Cell


class Value:
    """Base class of runtime values."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class VInt(Value):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class VBool(Value):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True, slots=True)
class VNil(Value):
    def __str__(self) -> str:
        return "nil"


NIL = VNil()
TRUE = VBool(True)
FALSE = VBool(False)


@dataclass(frozen=True, slots=True)
class VCons(Value):
    """A non-empty list: a pointer to a heap cell.

    ``version`` snapshots the cell's reuse generation at the moment this
    reference was created.  ``dcons`` bumps the cell's generation, so a
    read through a reference older than the cell is a *use-after-reuse* —
    the storage-safety sanitizer's tripwire for an unsound DCONS.
    """

    cell: "Cell"
    version: int = -1

    def __post_init__(self) -> None:
        if self.version < 0:
            object.__setattr__(self, "version", self.cell.version)

    def __str__(self) -> str:
        return f"#<cons {self.cell.id}>"


@dataclass(frozen=True, slots=True)
class VTuple(Value):
    """A pair (the tuple extension of §7).

    Tuples are immutable aggregates with no spine structure — Definition 1
    defines spines via car/cdr only — so the analysis treats them as
    indivisible objects whose *contents* still flow through fst/snd.
    """

    fst: Value
    snd: Value

    def __str__(self) -> str:
        return f"({self.fst}, {self.snd})"


class Env:
    """A persistent environment: an immutable chain of frames.

    ``bind`` is O(1); lookup walks outward.  Frames are also the GC roots —
    :meth:`values` yields every bound value reachable from this environment.
    """

    __slots__ = ("parent", "frame")

    def __init__(self, parent: "Env | None" = None, frame: dict[str, Value] | None = None):
        self.parent = parent
        # `frame if frame is not None` (not `frame or {}`): letrec shares an
        # initially-empty frame dict and fills it afterwards.
        self.frame = frame if frame is not None else {}

    def bind(self, name: str, value: Value) -> "Env":
        return Env(self, {name: value})

    def bind_many(self, frame: dict[str, Value]) -> "Env":
        return Env(self, dict(frame))

    def lookup(self, name: str) -> Value:
        env: Env | None = self
        while env is not None:
            if name in env.frame:
                return env.frame[name]
            env = env.parent
        raise EvalError(f"unbound identifier {name!r} at run time")

    def values(self) -> Iterator[Value]:
        env: Env | None = self
        while env is not None:
            yield from env.frame.values()
            env = env.parent


@dataclass(frozen=True, slots=True)
class VClosure(Value):
    """A function value: a lambda plus its captured environment."""

    lam: Lambda
    env: Env
    name: str = ""  # the letrec binding it came from, for error messages

    def __str__(self) -> str:
        label = self.name or "lambda"
        return f"#<closure {label}({self.lam.param})>"


@dataclass(frozen=True, slots=True)
class VPrim(Value):
    """A (possibly partially applied) primitive.

    Carries the originating AST node so the allocation performed when the
    last argument arrives can honour the optimizer's per-site annotations
    (``node.annotations['alloc']``).
    """

    prim: Prim
    args: tuple[Value, ...] = ()

    def __str__(self) -> str:
        return f"#<prim {self.prim.name}/{len(self.args)}>"


def expect_int(value: Value, context: str, node: Expr | None = None) -> int:
    if not isinstance(value, VInt):
        raise EvalError(f"{context}: expected an int, got {value}", node.span if node else None)
    return value.value


def expect_bool(value: Value, context: str, node: Expr | None = None) -> bool:
    if not isinstance(value, VBool):
        raise EvalError(f"{context}: expected a bool, got {value}", node.span if node else None)
    return value.value


def expect_list(value: Value, context: str, node: Expr | None = None) -> Value:
    if not isinstance(value, (VNil, VCons)):
        raise EvalError(f"{context}: expected a list, got {value}", node.span if node else None)
    return value
