"""Spine bookkeeping: the ``car^s`` annotation and per-program ``d``.

§3.4 assumes every ``car`` in the program is annotated as ``car^s`` where
``s`` is the number of spines of its argument list — "statically determined
by type inference".  After :func:`repro.types.infer.infer_program` has run,
these helpers read the annotation off the node types.
"""

from __future__ import annotations

from repro.lang.ast import App, Expr, Prim, Program, walk
from repro.lang.errors import AnalysisError
from repro.types.types import TFun, TList, Type, max_spines_in, spines


def car_spine_count(prim: Prim) -> int:
    """The ``s`` of a ``car^s`` (or ``cdr^s``) occurrence.

    Reads the instantiated primitive type ``τ list → ...`` placed on the
    node by inference and returns ``spines(τ list)``.
    """
    if prim.name not in ("car", "cdr"):
        raise AnalysisError(f"car_spine_count on {prim.name!r}")
    if prim.ty is None:
        raise AnalysisError("primitive is not type-annotated; run infer_program first", prim.span)
    assert isinstance(prim.ty, TFun) and isinstance(prim.ty.arg, TList)
    return spines(prim.ty.arg)


def cons_result_spines(prim: Prim) -> int:
    """Spine count of the list a ``cons``/``dcons`` occurrence builds."""
    if prim.name not in ("cons", "dcons"):
        raise AnalysisError(f"cons_result_spines on {prim.name!r}")
    if prim.ty is None:
        raise AnalysisError("primitive is not type-annotated; run infer_program first", prim.span)
    args_ty = prim.ty
    while isinstance(args_ty, TFun):
        args_ty = args_ty.result
    return spines(args_ty)


def program_spine_bound(program: Program) -> int:
    """The program constant ``d``: the deepest spine count of any list type
    appearing anywhere in the (type-annotated) program.

    The ``B_e`` chain for the program is ⟨0,0⟩ ⊑ ⟨1,0⟩ ⊑ … ⊑ ⟨1,d⟩.  We
    floor it at 1 so even list-free programs get a non-degenerate chain.
    """
    deepest = 1
    for node in walk(program.letrec):
        if node.ty is not None:
            deepest = max(deepest, max_spines_in(node.ty))
    return deepest


def annotate_cars(program: Program) -> dict[int, int]:
    """Map node uid → ``s`` for every ``car``/``cdr`` occurrence, and also
    stamp it into ``node.annotations['spines']`` for tooling."""
    table: dict[int, int] = {}
    for node in walk(program.letrec):
        if isinstance(node, Prim) and node.name in ("car", "cdr") and node.ty is not None:
            s = car_spine_count(node)
            node.annotations["spines"] = s
            table[node.uid] = s
    return table


def argument_spines(fn_type: Type, n_args: int) -> list[int]:
    """Spine counts ``s_i`` of the first ``n_args`` parameters of a function
    type (0 for non-list parameters), per §4.1."""
    result: list[int] = []
    ty = fn_type
    for _ in range(n_args):
        if not isinstance(ty, TFun):
            raise AnalysisError(f"type {fn_type} does not take {n_args} arguments")
        result.append(spines(ty.arg))
        ty = ty.result
    return result


def cons_sites(program: Program) -> list[App]:
    """All saturated ``cons`` applications in the program (allocation sites)."""
    sites: list[App] = []
    for node in walk(program.letrec):
        if (
            isinstance(node, App)
            and isinstance(node.fn, App)
            and isinstance(node.fn.fn, Prim)
            and node.fn.fn.name == "cons"
        ):
            sites.append(node)
    return sites
