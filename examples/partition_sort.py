"""The paper's Appendix A, end to end: analyze the partition-sort program,
print the analysis report, then apply and measure every optimization.

Run with:  python examples/partition_sort.py
"""

from repro import analysis_report, paper_partition_sort, run_program
from repro.bench.tables import render_table
from repro.opt.pipeline import (
    paper_block_allocated,
    paper_ps_double_prime,
    paper_ps_prime,
    paper_stack_allocated,
)


def main() -> None:
    program = paper_partition_sort()

    # A.1/A.2: the analysis report (global escape table + sharing facts).
    print(analysis_report(program))

    # A.3: the three storage optimizations, measured.
    rows = []
    baseline_result, baseline = run_program(program)
    rows.append(["PS (baseline)", baseline.heap_allocs, 0, 0, 0])

    prime = paper_ps_prime()
    result, metrics = run_program(prime.program)
    assert result == baseline_result
    rows.append(["PS' (reuse via APPEND')", metrics.heap_allocs, metrics.reused, 0, 0])

    double = paper_ps_double_prime()
    result, metrics = run_program(double.program)
    assert result == baseline_result
    rows.append(["PS'' (reuse own spine)", metrics.heap_allocs, metrics.reused, 0, 0])

    stack = paper_stack_allocated()
    result, metrics = run_program(stack.program)
    assert result == baseline_result
    rows.append(
        ["PS + stack-allocated literal", metrics.heap_allocs, 0, metrics.stack_reclaimed, 0]
    )

    block = paper_block_allocated(6)
    result, metrics = run_program(block.program)
    rows.append(
        ["PS (create_list 6) + block", metrics.heap_allocs, 0, 0, metrics.block_reclaimed]
    )

    print(
        render_table(
            ["variant", "heap cells", "reused", "stack-freed", "block-freed"],
            rows,
            title="=== storage behaviour of the A.3 optimizations ===",
        )
    )


if __name__ == "__main__":
    main()
