"""Differential properties between the two fixpoint engines.

The legacy AST-walking evaluator is kept as the oracle for the worklist
engine: the least fixpoint of a monotone system does not depend on the
order the equations are applied, so on the *same* program both engines
must produce bit-identical per-binding lattice fingerprints — and with
them identical escape decisions and identical ``repro check`` findings.
Any divergence on a hypothesis-generated program is a bug in one engine.
"""

from hypothesis import HealthCheck, given, settings

from repro.check import check_program
from repro.escape.abstract import fingerprint
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.engine import use_engine
from repro.lang.prelude import paper_map_pair, paper_partition_sort
from repro.types.types import arity

from .strategies import list_function_program

RELAXED = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _engine_facts(program, engine):
    """(per-binding fingerprint strings, per-function decision strings)."""
    analysis = EscapeAnalysis(program, engine=engine)
    solved = analysis.solve(None)
    chain = solved.evaluator.chain
    fingerprints = {}
    decisions = {}
    for name in program.binding_names():
        ty = analysis.binding_type(name, solved)
        fingerprints[name] = str(fingerprint(solved.env[name], ty, chain))
        if arity(analysis.scheme(name).body):
            decisions[name] = [str(r.result) for r in analysis.global_all(name)]
    return fingerprints, decisions


def _check_facts(program, engine):
    """The findings of ``repro check`` run under ``engine``."""
    with use_engine(engine):
        report = check_program(program)
    return sorted(d.format() for d in report.diagnostics), report.pass_errors


class TestEngineEquivalence:
    @RELAXED
    @given(case=list_function_program())
    def test_fingerprints_and_decisions_agree(self, case):
        program, _ = case
        legacy = _engine_facts(program, "legacy")
        worklist = _engine_facts(program, "worklist")
        assert worklist == legacy

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(case=list_function_program())
    def test_check_findings_agree(self, case):
        program, _ = case
        assert _check_facts(program, "worklist") == _check_facts(program, "legacy")

    def test_paper_programs_agree(self):
        for build in (paper_partition_sort, paper_map_pair):
            legacy = _engine_facts(build(), "legacy")
            worklist = _engine_facts(build(), "worklist")
            assert worklist == legacy

    def test_paper_check_findings_agree(self):
        program = paper_partition_sort()
        assert _check_facts(program, "worklist") == _check_facts(program, "legacy")
