"""Mark-sweep GC tests, including interplay with regions and auto-GC."""

from repro.lang.parser import parse_program
from repro.lang.prelude import prelude_program
from repro.semantics.gc import MarkSweepGC
from repro.semantics.heap import AllocKind, Heap
from repro.semantics.interp import Interpreter
from repro.semantics.values import NIL, Env, VCons, VInt


def alloc_list(heap, values):
    result = NIL
    for v in reversed(values):
        result = VCons(heap.allocate(VInt(v), result))
    return result


class TestCollect:
    def test_unreachable_cells_swept(self):
        heap = Heap()
        alloc_list(heap, [1, 2, 3])  # garbage
        keep = alloc_list(heap, [4])
        stats = MarkSweepGC(heap).collect([keep])
        assert stats.swept == 3
        assert stats.marked == 1
        assert heap.metrics.gc_swept == 3

    def test_reachable_cells_survive(self):
        heap = Heap()
        keep = alloc_list(heap, [1, 2])
        MarkSweepGC(heap).collect([keep])
        assert len(heap.reachable_cells(keep)) == 2

    def test_roots_through_env(self):
        heap = Heap()
        lst = alloc_list(heap, [1, 2])
        env = Env().bind("x", lst)
        stats = MarkSweepGC(heap).collect([env])
        assert stats.swept == 0

    def test_collect_with_no_roots_sweeps_everything(self):
        heap = Heap()
        alloc_list(heap, [1, 2, 3, 4])
        stats = MarkSweepGC(heap).collect([])
        assert stats.swept == 4
        assert stats.live_after == 0

    def test_swept_cells_are_marked_freed(self):
        heap = Heap()
        lst = alloc_list(heap, [1])
        cell = lst.cell
        MarkSweepGC(heap).collect([])
        assert cell.freed

    def test_region_cells_not_swept(self):
        heap = Heap()
        heap.open_region(AllocKind.BLOCK)
        from repro.lang.ast import Prim

        prim = Prim(name="cons")
        prim.annotations["alloc"] = "region"
        heap.allocate(VInt(1), NIL, site=prim)
        stats = MarkSweepGC(heap).collect([])
        assert stats.swept == 0  # region owns its cells

    def test_gc_runs_counted(self):
        heap = Heap()
        gc = MarkSweepGC(heap)
        gc.collect([])
        gc.collect([])
        assert heap.metrics.gc_runs == 2


class TestSharedSpineMarkWork:
    """Regression: the mark loop must deduplicate at *push* time — a cell
    shared by several parents (diamond sharing) costs one push and one
    unit of mark work, not one per incoming edge."""

    def test_diamond_shared_tail_counted_once(self):
        heap = Heap()
        tail = alloc_list(heap, [1, 2])
        left = VCons(heap.allocate(VInt(0), tail))
        right = VCons(heap.allocate(VInt(9), tail))
        gc = MarkSweepGC(heap)
        stats = gc.collect([left, right])
        assert stats.marked == 4  # 2 heads + 2 shared tail cells
        assert gc.mark_pushes == 4
        assert stats.swept == 0

    def test_wide_diamond_mark_work_is_linear_in_distinct_cells(self):
        heap = Heap()
        shared = alloc_list(heap, list(range(50)))
        roots = [VCons(heap.allocate(VInt(i), shared)) for i in range(10)]
        gc = MarkSweepGC(heap)
        stats = gc.collect(roots)
        assert stats.marked == 60  # 50 shared + 10 heads, never re-pushed
        assert gc.mark_pushes == 60

    def test_copying_evacuation_also_dedups_shared_cells(self):
        from repro.semantics.gc import CopyingGC

        heap = Heap()
        tail = alloc_list(heap, [1, 2, 3])
        roots = [
            VCons(heap.allocate(VInt(0), tail)),
            VCons(heap.allocate(VInt(9), tail)),
        ]
        gc = CopyingGC(heap)
        stats = gc.collect(roots)
        assert stats.marked == 5
        assert gc.mark_pushes == 5


class TestThreshold:
    def test_maybe_collect_below_threshold_is_noop(self):
        heap = Heap()
        alloc_list(heap, [1, 2])
        assert MarkSweepGC(heap, threshold=100).maybe_collect([]) is None

    def test_maybe_collect_above_threshold_runs(self):
        heap = Heap()
        alloc_list(heap, [1, 2, 3, 4, 5])
        stats = MarkSweepGC(heap, threshold=3).maybe_collect([])
        assert stats is not None and stats.swept == 5


class TestAutoGcInInterpreter:
    def test_auto_gc_collects_garbage_during_run(self):
        # rev allocates a quadratic amount of garbage; with a low threshold
        # the collector must run and the result must still be correct.
        program = prelude_program(["rev", "iota"], "rev (iota 30)")
        interp = Interpreter(auto_gc=True, gc_threshold=50)
        value = interp.run(program)
        assert interp.to_python(value) == list(range(1, 31))
        assert interp.metrics.gc_runs >= 1
        assert interp.metrics.gc_swept > 0

    def test_auto_gc_never_frees_live_data(self):
        program = prelude_program(["ps"], "ps [5, 2, 7, 1, 3, 4, 9, 0]")
        interp = Interpreter(auto_gc=True, gc_threshold=10)
        value = interp.run(program)
        assert interp.to_python(value) == [0, 1, 2, 3, 4, 5, 7, 9]

    def test_gc_work_scales_with_live_data(self):
        small = Interpreter(auto_gc=True, gc_threshold=20)
        small.run(prelude_program(["rev", "iota"], "rev (iota 10)"))
        large = Interpreter(auto_gc=True, gc_threshold=20)
        large.run(prelude_program(["rev", "iota"], "rev (iota 40)"))
        assert large.metrics.gc_marked > small.metrics.gc_marked
