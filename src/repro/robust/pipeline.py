"""The hardened optimization pipeline.

:func:`harden_optimize` surveys a program and applies every licensed
storage optimization under a budget, with the robustness contract the
tentpole demands: **the pipeline always yields a correct (possibly
unoptimized) program plus a degradation report, never a partial
transform.**  Each step — every reuse specialization, the stack rewrite,
each block rewrite — is applied atomically (the underlying transformations
build fresh programs or raise); a step that fails, breaches the budget, or
hits an injected fault is *skipped and recorded* as a
:class:`~repro.robust.errors.Degradation`, and the pipeline continues from
the last good program.

With ``validate=True`` the transformed program is executed against the
original on the instrumented heap; any divergence or runtime tripwire
(:class:`~repro.lang.errors.UseAfterFreeError`) discards *all*
optimizations and records why — the optimized program is never returned
unless it observably behaves like the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import Program
from repro.obs import tracer as obs
from repro.robust import faults
from repro.robust.budget import AnalysisBudget, BudgetMeter
from repro.robust.errors import Degradation, Severity, classify, reason_for
from repro.opt.driver import (
    Decision,
    apply_block_decision,
    apply_reuse_decision,
    apply_stack_decision,
    plan_optimizations,
)


@dataclass
class HardenedPipelineResult:
    """What the hardened pipeline produced.

    ``program`` is always valid: the fully optimized program when every
    step landed, the input program when nothing could be (or validation
    rejected the transforms), or anything in between — with every skipped
    step accounted for in ``degradations``.
    """

    program: Program
    applied: list[str] = field(default_factory=list)
    degradations: list[Degradation] = field(default_factory=list)
    decisions: list[Decision] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def summary(self) -> str:
        lines = [f"applied: {step}" for step in self.applied]
        lines += [str(d) for d in self.degradations]
        if not lines:
            lines = ["no storage optimization is licensed by the analysis"]
        return "\n".join(lines) + "\n"


def _degradation(
    error: BaseException, stage: str, meter: BudgetMeter
) -> Degradation:
    obs.emit("degradation", reason=reason_for(error), stage=stage)
    return Degradation(
        reason=reason_for(error),
        stage=stage,
        message=str(error),
        spent=meter.spent(),
        error=error,
    )


def harden_optimize(
    program: Program,
    budget: AnalysisBudget | None = None,
    validate: bool = False,
    collector: "str | None" = None,
) -> HardenedPipelineResult:
    """Plan and apply every licensed optimization, degrading soundly.

    Fatal errors (untypeable program, tripped soundness tripwires outside
    the validation run) propagate; everything else is recorded and skipped.

    With ``collector`` set, the validation run executes the optimized
    program under that zoo member (:mod:`repro.semantics.gc`) with the GC
    armed — a collector-induced misbehaviour (wrong result, sanitizer
    halt) discards the transforms exactly like any other validation
    failure.
    """
    meter = (budget or AnalysisBudget()).start()
    result = HardenedPipelineResult(program=program)

    # -- survey ------------------------------------------------------------
    try:
        faults.check_stage("plan")
        meter.check_deadline()
        plan = plan_optimizations(program, meter=meter)
    except Exception as error:
        if classify(error) is Severity.FATAL:
            raise
        result.degradations.append(_degradation(error, "plan", meter))
        return result
    result.decisions = list(plan.decisions)

    # -- apply, step by step ----------------------------------------------
    current = program
    stack_done = False
    for decision in plan.decisions:
        stage = f"{decision.kind}:{decision.function}"
        if decision.kind == "stack" and stack_done:
            continue
        try:
            faults.check_stage(decision.kind)
            meter.check_deadline()
            if decision.kind == "reuse":
                current, step_log = apply_reuse_decision(current, decision)
            elif decision.kind == "stack":
                current, step_log = apply_stack_decision(current)
                stack_done = True
            else:
                current, step_log = apply_block_decision(current, decision)
            result.applied.extend(step_log)
            obs.emit(
                "transform_applied", kind=decision.kind, detail="; ".join(step_log)
            )
        except Exception as error:
            if classify(error) is Severity.FATAL:
                raise
            obs.emit(
                "transform_skipped", kind=decision.kind, reason=reason_for(error)
            )
            # Skip and record; `current` is still the last good program.
            result.degradations.append(_degradation(error, stage, meter))

    # -- optional end-to-end validation -----------------------------------
    if validate and current is not program:
        from repro.semantics.interp import run_program

        faults.check_stage("validate")
        run_kwargs: dict = {"sanitize": True}
        if collector is not None:
            run_kwargs.update(auto_gc=True, gc_threshold=64, collector=collector)
            if collector == "liveness":
                from repro.analysis.heap_liveness import analyze_program

                facts = analyze_program(current)
                run_kwargs["liveness"] = (
                    None if facts.degraded else facts.budget_map()
                )
        baseline, _ = run_program(program)  # failures here are the program's own
        try:
            optimized, _ = run_program(current, **run_kwargs)
        except Exception as error:
            # Anything wrong with the *transformed* program — including a
            # tripped UseAfterFreeError — discards the transforms.
            result.degradations.append(_degradation(error, "validate", meter))
            result.program = program
            result.applied = []
            return result
        if optimized != baseline:
            result.degradations.append(
                _degradation(
                    ValueError(
                        f"optimized program computed {optimized!r}, "
                        f"original computed {baseline!r}"
                    ),
                    "validate",
                    meter,
                )
            )
            result.program = program
            result.applied = []
            return result

    result.program = current
    return result
