"""Polymorphic invariance (Theorem 1) tests."""

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.poly import DEFAULT_FILLERS, check_invariance
from repro.lang.errors import AnalysisError
from repro.lang.prelude import prelude_program
from repro.types.types import BOOL, INT, TList

POLY_FUNCTIONS = [
    "append",
    "rev",
    "length",
    "copy",
    "take",
    "drop",
    "last",
    "map",
    "filter",
    "snoc",
    "interleave",
    "rev_acc",
    "concat",
]


@pytest.mark.parametrize("name", POLY_FUNCTIONS)
def test_invariance_holds(name):
    deps = [name]
    analysis = EscapeAnalysis(prelude_program(deps))
    report = check_invariance(analysis, name)
    assert report.holds, f"Theorem 1 violated for {name}: {report.rows}"


def test_report_contains_all_params():
    analysis = EscapeAnalysis(prelude_program(["append"]))
    report = check_invariance(analysis, "append")
    assert {row.param_index for row in report.rows} == {1, 2}
    assert len(report.rows_for_param(1)) >= 4


def test_invariant_quantity_for_append():
    analysis = EscapeAnalysis(prelude_program(["append"]))
    report = check_invariance(analysis, "append")
    # s_i - k is 1 for the first parameter at every instance, 0 for the
    # second (which escapes entirely).
    assert {row.non_escaping for row in report.rows_for_param(1)} == {1}
    assert {row.non_escaping for row in report.rows_for_param(2)} == {0}


def test_spine_counts_differ_across_instances():
    analysis = EscapeAnalysis(prelude_program(["rev"]))
    report = check_invariance(analysis, "rev")
    spine_counts = {row.param_spines for row in report.rows_for_param(1)}
    assert len(spine_counts) >= 2  # instances genuinely differ


def test_monomorphic_function_rejected():
    analysis = EscapeAnalysis(prelude_program(["create_list"]))
    with pytest.raises(AnalysisError):
        check_invariance(analysis, "create_list")


def test_custom_fillers():
    analysis = EscapeAnalysis(prelude_program(["copy"]))
    report = check_invariance(analysis, "copy", fillers=[INT, TList(TList(INT))])
    assert report.holds
    assert len({str(row.instance) for row in report.rows}) == 2


def test_too_few_instances_raises():
    analysis = EscapeAnalysis(prelude_program(["copy"]))
    with pytest.raises(AnalysisError):
        check_invariance(analysis, "copy", fillers=[INT])


def test_nothing_escapes_is_instance_independent():
    analysis = EscapeAnalysis(prelude_program(["length"]))
    report = check_invariance(analysis, "length")
    assert all(row.nothing_escapes for row in report.rows)
