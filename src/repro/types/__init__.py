"""nml type system: monotypes, schemes, unification, HM inference, spine
bookkeeping, and monomorphic instantiation."""

from repro.types.infer import (
    InferenceResult,
    default_instance,
    infer_expr,
    infer_program,
    prim_scheme,
)
from repro.types.instantiate import (
    instantiate_scheme,
    simplest_instance,
    uniform_instances,
)
from repro.types.spines import (
    annotate_cars,
    argument_spines,
    car_spine_count,
    cons_result_spines,
    cons_sites,
    program_spine_bound,
)
from repro.types.types import (
    BOOL,
    INT,
    TBool,
    TFun,
    TInt,
    TList,
    TProd,
    TVar,
    Type,
    TypeScheme,
    arity,
    contains_function,
    fresh_tvar,
    free_type_vars,
    fun_args,
    is_list_type,
    list_of,
    max_spines_in,
    spines,
)
from repro.types.unify import Substitution, unify

__all__ = [
    "InferenceResult", "default_instance", "infer_expr", "infer_program",
    "prim_scheme", "instantiate_scheme", "simplest_instance",
    "uniform_instances", "annotate_cars", "argument_spines",
    "car_spine_count", "cons_result_spines", "cons_sites",
    "program_spine_bound", "BOOL", "INT", "TBool", "TFun", "TInt", "TList",
    "TProd", "TVar", "Type", "TypeScheme", "arity", "contains_function", "fresh_tvar",
    "free_type_vars", "fun_args", "is_list_type", "list_of", "max_spines_in",
    "spines", "Substitution", "unify",
]
