"""Analysis report rendering tests."""

from repro.escape.report import analysis_report, global_table
from repro.lang.prelude import paper_partition_sort, prelude_program


class TestAnalysisReport:
    def test_report_contains_paper_table(self, partition_sort):
        report = analysis_report(partition_sort)
        for fact in [
            "G(append, 1) = <1,0>",
            "G(append, 2) = <1,1>",
            "G(split, 1) = <0,0>",
            "G(split, 2) = <1,0>",
            "G(split, 3) = <1,1>",
            "G(split, 4) = <1,1>",
            "G(ps, 1) = <1,0>",
        ]:
            assert fact in report

    def test_report_contains_sharing_facts(self, partition_sort):
        report = analysis_report(partition_sort)
        assert "top 1 spine(s) of ps's result are unshared" in report
        assert "top 1 spine(s) of split's result are unshared" in report

    def test_report_shows_spine_bound(self, partition_sort):
        assert "d = 2" in analysis_report(partition_sort)

    def test_report_shows_convergence(self, partition_sort):
        report = analysis_report(partition_sort)
        assert "converged" in report
        assert "WIDENED" not in report

    def test_report_without_sharing(self, partition_sort):
        report = analysis_report(partition_sort, include_sharing=False)
        assert "sharing" not in report

    def test_non_function_bindings_skipped(self):
        from repro.lang.parser import parse_program

        report = analysis_report(parse_program("x = 1; f y = y; f x"))
        assert "not a function; skipped" in report
        assert "G(f, 1)" in report


class TestGlobalTable:
    def test_rows_cover_all_params(self, partition_sort):
        rows = global_table(partition_sort)
        assert len(rows) == 7  # append:2 + split:4 + ps:1

    def test_rows_are_global(self, partition_sort):
        assert all(r.kind == "global" for r in global_table(partition_sort))
