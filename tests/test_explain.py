"""``repro explain`` (:mod:`repro.obs.explain`): reconstructing a
binding's causal chain — resolution, lowering, worklist activity,
fixpoint ascent, decisions, audit — from a trace alone."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.parser import parse_program
from repro.lang.prelude import prelude_source
from repro.obs import RingBufferSink, Tracer, activate
from repro.obs.explain import (
    EXPLANATION_KEYS,
    explain_binding,
    format_explanation,
    known_bindings,
)

REV = prelude_source(["append", "rev"], "rev [1, 2, 3]")


def _trace_of(program_source, store=None, queries=1):
    """Run ``global_all`` on every binding under a tracer; the events."""
    program = parse_program(program_source)
    ring = RingBufferSink()
    with activate(Tracer(sinks=[ring])):
        for _ in range(queries):
            analysis = EscapeAnalysis(program, store=store)
            for name in program.binding_names():
                analysis.global_all(name)
    return ring.events


class TestExplainBinding:
    def test_fresh_solve_chain(self):
        events = _trace_of(REV)
        explanation = explain_binding(events, "rev")
        assert explanation.found
        assert {"via": "solve"} == {
            k: v for step in explanation.resolution for k, v in step.items()
            if k == "via" and v == "solve"
        }
        assert explanation.lowering is not None
        assert explanation.lowering["instructions"] > 0
        assert explanation.worklist["pushes"] >= 1
        assert explanation.worklist["transfer_evals"] > 0
        # Hottest instructions first.
        counts = [c["count"] for c in explanation.worklist["instructions"]]
        assert counts == sorted(counts, reverse=True)
        assert explanation.fixpoint is not None
        assert explanation.fixpoint["converged"]
        assert explanation.fixpoint["final"] == explanation.fixpoint["values"][-1]

    def test_memory_cache_hit_resolution(self):
        # A pinned local test after the global solve re-walks the SCC DAG
        # and finds every fixpoint already in the in-memory tier.
        program = parse_program(REV)
        ring = RingBufferSink()
        with activate(Tracer(sinks=[ring])):
            analysis = EscapeAnalysis(program)
            analysis.global_all("rev")
            analysis.local_test("append [1, 2] [3]")
        explanation = explain_binding(ring.events, "rev")
        assert {"via": "memory", "outcome": "hit"} in explanation.resolution

    def test_store_hit_resolution(self, tmp_path):
        from repro.store import AnalysisStore

        _trace_of(REV, store=AnalysisStore(tmp_path / "store"))
        warm = _trace_of(REV, store=AnalysisStore(tmp_path / "store"))
        explanation = explain_binding(warm, "rev")
        store_steps = [s for s in explanation.resolution if s["via"] == "store"]
        assert any(s["outcome"] == "hit" for s in store_steps)
        assert all(s["digest"] for s in store_steps)

    def test_unknown_binding_not_found(self):
        events = _trace_of(REV)
        explanation = explain_binding(events, "nosuch")
        assert not explanation.found
        assert explanation.lowering is None
        assert explanation.fixpoint is None

    def test_known_bindings_lists_trace_names(self):
        events = _trace_of(REV)
        names = known_bindings(events)
        assert "rev" in names and "append" in names
        assert "nosuch" not in names

    def test_degradation_names_its_query(self):
        from repro.robust.budget import AnalysisBudget
        from repro.robust.engine import HardenedAnalysis

        program = parse_program(REV)
        ring = RingBufferSink()
        with activate(Tracer(sinks=[ring])):
            engine = HardenedAnalysis(program, budget=AnalysisBudget(deadline_s=0.0))
            for robust in engine.global_all("rev"):
                assert robust.degraded
        explanation = explain_binding(ring.events, "rev")
        assert explanation.found
        assert explanation.degradations
        assert explanation.degradations[0]["function"] == "rev"
        assert explanation.degradations[0]["reason"] == "deadline-exceeded"

    def test_decisions_and_audit_from_synthetic_events(self):
        events = [
            {
                "seq": 0,
                "ts": 0.0,
                "type": "decision",
                "kind": "reuse",
                "function": "rev",
                "param": 1,
                "justification": "G(rev, 1) = E0",
                "trace_id": "t1",
            },
            {
                "seq": 1,
                "ts": 0.1,
                "type": "transform_applied",
                "kind": "reuse",
                "detail": "rev_reuse1 recycles parameter 1",
            },
            {
                "seq": 2,
                "ts": 0.2,
                "type": "check_rule_fired",
                "rule": "A001",
                "severity": "error",
                "pass": "audit",
                "message": "reuse of rev parameter 1 is unsound",
                "span": "3:1-3:9",
                "context": "rev",
            },
        ]
        explanation = explain_binding(events, "rev")
        assert explanation.found
        assert explanation.decisions == [
            {"kind": "reuse", "param": 1, "justification": "G(rev, 1) = E0"}
        ]
        assert explanation.transforms[0]["outcome"] == "applied"
        assert explanation.audit[0]["rule"] == "A001"
        assert explanation.trace_ids == ["t1"]


class TestExplanationRendering:
    def test_json_schema_is_stable(self):
        events = _trace_of(REV)
        doc = explain_binding(events, "rev").to_json()
        assert tuple(doc) == EXPLANATION_KEYS

    def test_text_rendering_mentions_the_chain(self):
        events = _trace_of(REV)
        text = format_explanation(explain_binding(events, "rev"))
        assert "=== explain: rev ===" in text
        assert "fresh solve" in text
        assert "lowered to IR" in text
        assert "worklist:" in text
        assert "fixpoint ascent" in text
        assert "final fingerprint" in text

    def test_not_found_rendering(self):
        text = format_explanation(explain_binding([], "ghost"))
        assert "no events mention binding 'ghost'" in text


class TestExplainCli:
    @pytest.fixture
    def trace_file(self, tmp_path):
        source = tmp_path / "rev.nml"
        source.write_text(REV)
        out = tmp_path / "trace.jsonl"
        assert main(["trace", str(source), "--out", str(out)]) == 0
        return out

    def test_text_output(self, trace_file, capsys):
        assert main(["explain", str(trace_file), "--binding", "rev"]) == 0
        out = capsys.readouterr().out
        assert "=== explain: rev ===" in out
        assert "final fingerprint" in out

    def test_json_output(self, trace_file, capsys):
        assert main(["explain", str(trace_file), "--binding", "rev", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # The CLI serializes canonically (sorted keys); the full schema is
        # still exactly EXPLANATION_KEYS, order pinned on to_json() itself.
        assert tuple(doc) == tuple(sorted(EXPLANATION_KEYS))
        assert doc["found"] is True
        assert doc["binding"] == "rev"

    def test_unknown_binding_exits_nonzero_with_hint(self, trace_file, capsys):
        assert main(["explain", str(trace_file), "--binding", "nosuch"]) == 1
        captured = capsys.readouterr()
        assert "no events mention" in captured.out
        assert "rev" in captured.err  # the known-bindings hint

    def test_invalid_trace_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq": 0, "ts": 0.0, "type": "nope"}\n')
        assert main(["explain", str(bad), "--binding", "rev"]) == 1
        assert "invalid trace" in capsys.readouterr().err
