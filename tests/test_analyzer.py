"""EscapeAnalysis orchestration edge cases: overrides, solve reuse,
helpers, and error paths."""

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_program
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.types.types import INT, TFun, TList


class TestConfiguration:
    def test_d_override_widens_the_chain(self, partition_sort):
        analysis = EscapeAnalysis(partition_sort, d=5)
        solved = analysis.solve(None)
        assert solved.d == 5
        assert solved.evaluator.chain.d == 5
        # results unaffected by a larger chain
        assert str(analysis.global_test("ps", 1).result) == "<1,0>"

    def test_max_iterations_cap_widens(self, partition_sort):
        analysis = EscapeAnalysis(partition_sort, max_iterations=1)
        analysis.solve(None)
        assert analysis.last_solved is not None
        assert all(t.widened for t in analysis.last_solved.traces)
        # widened results are safe: everything may escape
        assert str(analysis.global_test("ps", 1).result) == "<1,1>"

    def test_default_d_from_program(self, partition_sort):
        analysis = EscapeAnalysis(partition_sort)
        assert analysis.solve(None).d == 2


class TestHelpers:
    def test_function_names(self, ps_analysis):
        assert ps_analysis.function_names() == ("append", "split", "ps")

    def test_syntactic_arity(self, ps_analysis):
        assert ps_analysis.syntactic_arity("split") == 4
        assert ps_analysis.syntactic_arity("ps") == 1

    def test_syntactic_arity_unknown(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.syntactic_arity("nope")

    def test_escaping_spines_vector(self, ps_analysis):
        assert ps_analysis.escaping_spines("split") == [0, 0, 1, 1]

    def test_arg_spine_counts(self, ps_analysis):
        assert ps_analysis.arg_spine_counts("split") == [0, 1, 1, 1]

    def test_scheme_lookup(self, ps_analysis):
        assert "int list" in str(ps_analysis.scheme("ps"))

    def test_trace_lookup(self, ps_analysis):
        ps_analysis.solve(None)
        assert ps_analysis.last_solved.trace("append").converged
        with pytest.raises(AnalysisError):
            ps_analysis.last_solved.trace("ghost")


class TestSolvedProgram:
    def test_solve_returns_converged_env(self, ps_analysis):
        solved = ps_analysis.solve(None)
        assert set(solved.env) == {"append", "split", "ps"}

    def test_re_solving_is_consistent(self, ps_analysis):
        first = str(ps_analysis.global_test("append", 1).result)
        second = str(ps_analysis.global_test("append", 1).result)
        assert first == second == "<1,0>"

    def test_interleaved_instances_do_not_contaminate(self):
        analysis = EscapeAnalysis(prelude_program(["append"]))
        deep = TFun(TList(TList(INT)), TFun(TList(TList(INT)), TList(TList(INT))))
        deep_result = analysis.global_test("append", 1, instance=deep)
        shallow_result = analysis.global_test("append", 1)
        assert str(deep_result.result) == "<1,1>"
        assert str(shallow_result.result) == "<1,0>"
        # and the invariant quantity matches across the two queries
        assert deep_result.non_escaping_spines == shallow_result.non_escaping_spines == 1


class TestErrorPaths:
    def test_program_without_functions(self):
        analysis = EscapeAnalysis(parse_program("1 + 2"))
        with pytest.raises(AnalysisError):
            analysis.global_test("f", 1)

    def test_local_test_head_must_apply(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.local_test("append")

    def test_pinning_incompatible_instance(self):
        analysis = EscapeAnalysis(paper_partition_sort())
        from repro.lang.errors import TypeInferenceError

        bad = TFun(INT, INT)  # ps is int list -> int list; cannot be int -> int
        with pytest.raises(TypeInferenceError):
            analysis.global_test("ps", 1, instance=bad)
