"""Block allocation / reclamation (§A.3.3) tests."""

import pytest

from repro.lang.errors import OptimizationError
from repro.lang.prelude import prelude_program
from repro.opt.block_alloc import block_allocate_producer
from repro.semantics.interp import Interpreter, run_program


class TestPaperScenario:
    def _program(self, n=10):
        return prelude_program(["ps", "create_list"], f"ps (create_list {n})")

    def test_producer_specialized(self):
        result = block_allocate_producer(self._program(), "create_list")
        assert result.new_name == "create_list_block"
        assert result.new_name in result.program.binding_names()
        assert result.annotated_sites == 1
        assert result.consumer_prefix == 1

    def test_result_unchanged(self):
        program = self._program(8)
        optimized = block_allocate_producer(program, "create_list")
        assert run_program(optimized.program)[0] == run_program(program)[0]

    def test_spine_cells_block_reclaimed(self):
        n = 12
        program = self._program(n)
        optimized = block_allocate_producer(program, "create_list")
        _, metrics = run_program(optimized.program)
        assert metrics.region_allocs == n
        assert metrics.block_reclaimed == n
        _, baseline = run_program(program)
        assert metrics.heap_allocs == baseline.heap_allocs - n

    def test_block_cells_exempt_from_gc_sweep(self):
        # With auto-GC on, the block's cells are never swept individually.
        n = 15
        optimized = block_allocate_producer(self._program(n), "create_list")
        interp = Interpreter(auto_gc=True, gc_threshold=10)
        value = interp.run(optimized.program)
        assert interp.to_python(value) == list(range(1, n + 1))
        assert interp.metrics.block_reclaimed == n

    def test_original_producer_still_available(self):
        result = block_allocate_producer(self._program(), "create_list")
        assert "create_list" in result.program.binding_names()


class TestOtherProducers:
    def test_iota_producer(self):
        program = prelude_program(["ps", "iota"], "ps (iota 7)")
        result = block_allocate_producer(program, "iota")
        output, metrics = run_program(result.program)
        assert output == list(range(1, 8))
        assert metrics.block_reclaimed == 7

    def test_replicate_producer_with_sum(self):
        program = prelude_program(["sum", "replicate"], "sum (replicate 5 3)")
        result = block_allocate_producer(program, "replicate")
        output, metrics = run_program(result.program)
        assert output == 15
        assert metrics.block_reclaimed == 5


class TestRefusals:
    def test_consumer_keeps_spine_refused(self):
        # drop returns the produced cells: freeing the block would free
        # live data, so the optimizer must refuse.
        program = prelude_program(["drop", "create_list"], "drop 1 (create_list 5)")
        with pytest.raises(OptimizationError):
            block_allocate_producer(program, "create_list")

    def test_unknown_producer(self):
        program = prelude_program(["ps", "create_list"], "ps (create_list 3)")
        with pytest.raises(OptimizationError):
            block_allocate_producer(program, "ghost")

    def test_producer_not_in_body(self):
        program = prelude_program(["ps", "create_list"], "ps [1, 2]")
        with pytest.raises(OptimizationError):
            block_allocate_producer(program, "create_list")

    def test_non_application_body(self):
        program = prelude_program(["create_list"], "")
        with pytest.raises(OptimizationError):
            block_allocate_producer(program, "create_list")

    def test_name_collision(self):
        program = prelude_program(["ps", "create_list"], "ps (create_list 3)")
        with pytest.raises(OptimizationError):
            block_allocate_producer(program, "create_list", new_name="ps")
