"""SA1 — the static optimization auditor, both directions.

Soundness direction: every transformed paper artifact — ``APPEND'``,
``PS'``, ``PS''``, ``REV'`` — is *certified*: the auditor independently
re-derives (escape lattice on the dcons-erased program, Theorem-2 sharing,
liveness) a justification for every ``dcons`` footprint, with zero
error-severity findings.

Detection direction: a fault-injected compiler bug — the reuse gate
skipped, recycling ``append``'s *second* parameter, whose spine escapes
into the result — is caught **statically**: an error-severity ``AUD003``
diagnostic at the original cons site's source span, with the program never
executed (running it would corrupt live storage).

The acceptance gate asserted here is exported to ``BENCH_check.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.tables import print_table
from repro.check import CheckSeverity, check_program
from repro.lang.ast import App, Prim, uncurry_app, walk
from repro.lang.errors import NO_SPAN
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.opt.pipeline import (
    paper_ps_double_prime,
    paper_ps_prime,
    paper_rev_prime,
)
from repro.opt.reuse import make_reuse_specialization
from repro.robust.faults import FaultPlan, inject


def _paper_append_prime():
    program = prelude_program(["append"], "append [1, 2] [3]")
    return make_reuse_specialization(
        program, "append", 1, new_name="append_reuse"
    ).program


ARTIFACTS = {
    "APPEND'": _paper_append_prime,
    "PS'": lambda: paper_ps_prime().program,
    "PS''": lambda: paper_ps_double_prime().program,
    "REV'": lambda: paper_rev_prime().program,
}


def _dcons_sites(root):
    """Saturated dcons applications under a Program or a bare expression."""
    return [
        node
        for node in walk(getattr(root, "letrec", root))
        if isinstance(node, App)
        and isinstance(uncurry_app(node)[0], Prim)
        and uncurry_app(node)[0].name == "dcons"
        and len(uncurry_app(node)[1]) == 3
    ]


def test_sa1_static_audit(benchmark):
    # -- soundness: every paper artifact certifies --------------------------
    rows = []
    certified: dict[str, dict] = {}
    for label, build in ARTIFACTS.items():
        program = build()
        report = check_program(program)
        errors = report.errors
        assert errors == [], f"{label}: {[d.format() for d in errors]}"
        assert not report.pass_errors
        counts = report.counts()
        certified[label] = {
            "counts": counts,
            "dcons_sites": len(_dcons_sites(program)),
        }
        rows.append(
            [label, len(_dcons_sites(program)), counts["error"],
             counts["warning"], counts["hint"]]
        )
    # every artifact actually carries the footprint being audited
    assert all(entry["dcons_sites"] >= 1 for entry in certified.values())

    # -- detection: the injected unsound DCONS is caught statically ---------
    program = paper_partition_sort()
    with inject(FaultPlan(unsound_reuse_at=1)) as injector:
        bad = make_reuse_specialization(
            program, "append", 2, new_name="append_bad"
        ).program
    assert injector.fired == ["unsound_reuse@1"]
    [site] = _dcons_sites(bad.binding("append_bad").expr)

    bad_report = benchmark(check_program, bad)
    bad_errors = bad_report.errors
    assert [d.rule.id for d in bad_errors] == ["AUD003"]
    [caught] = bad_errors
    assert caught.span == site.span and caught.span != NO_SPAN
    assert caught.context == "append_bad"
    assert caught.severity is CheckSeverity.ERROR

    rows.append(
        ["APPEND-bad (injected)", 1, bad_report.counts()["error"],
         bad_report.counts()["warning"], bad_report.counts()["hint"]]
    )
    print_table(
        ["artifact", "dcons sites", "errors", "warnings", "hints"],
        rows,
        title="SA1: static audit of the paper's transformed programs",
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_check.json"
    out.write_text(
        json.dumps(
            {
                "certified": certified,
                "injected_unsound": {
                    "rule": caught.rule.id,
                    "severity": caught.severity.value,
                    "span": str(caught.span),
                    "context": caught.context,
                    "fault_fired": injector.fired,
                },
                "pass_timings": {
                    name: round(seconds, 6)
                    for name, seconds in bad_report.pass_timings.items()
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
