"""Heap, region, and value-plumbing tests."""

import pytest

from repro.lang.ast import Prim
from repro.lang.errors import EvalError, UseAfterFreeError
from repro.semantics.heap import AllocKind, Heap
from repro.semantics.values import NIL, Env, VCons, VInt


def alloc_list(heap, values):
    result = NIL
    for v in reversed(values):
        result = VCons(heap.allocate(VInt(v), result))
    return result


class TestAllocation:
    def test_allocate_counts_heap(self):
        heap = Heap()
        heap.allocate(VInt(1), NIL)
        assert heap.metrics.heap_allocs == 1
        assert heap.metrics.region_allocs == 0

    def test_cells_get_unique_ids(self):
        heap = Heap()
        a = heap.allocate(VInt(1), NIL)
        b = heap.allocate(VInt(2), NIL)
        assert a.id != b.id

    def test_site_uid_recorded(self):
        heap = Heap()
        prim = Prim(name="cons")
        cell = heap.allocate(VInt(1), NIL, site=prim)
        assert cell.site_uid == prim.uid

    def test_annotated_site_without_region_goes_to_heap(self):
        heap = Heap()
        prim = Prim(name="cons")
        prim.annotations["alloc"] = "region"
        cell = heap.allocate(VInt(1), NIL, site=prim)
        assert cell.kind is AllocKind.HEAP

    def test_annotated_site_with_open_region(self):
        heap = Heap()
        region = heap.open_region(AllocKind.STACK, "act")
        prim = Prim(name="cons")
        prim.annotations["alloc"] = "region"
        cell = heap.allocate(VInt(1), NIL, site=prim)
        assert cell.kind is AllocKind.STACK
        assert cell in region.cells
        assert heap.metrics.region_allocs == 1

    def test_unannotated_site_ignores_open_region(self):
        heap = Heap()
        heap.open_region(AllocKind.STACK)
        cell = heap.allocate(VInt(1), NIL, site=Prim(name="cons"))
        assert cell.kind is AllocKind.HEAP


class TestReuse:
    def test_reuse_overwrites_in_place(self):
        heap = Heap()
        cell = heap.allocate(VInt(1), NIL)
        same = heap.reuse(cell, VInt(9), NIL)
        assert same is cell
        assert cell.car == VInt(9)
        assert heap.metrics.reused == 1

    def test_reuse_of_freed_cell_raises(self):
        heap = Heap()
        region = heap.open_region(AllocKind.STACK)
        prim = Prim(name="cons")
        prim.annotations["alloc"] = "region"
        cell = heap.allocate(VInt(1), NIL, site=prim)
        heap.close_region(region)
        with pytest.raises(UseAfterFreeError):
            heap.reuse(cell, VInt(2), NIL)


class TestRegions:
    def _region_cell(self, heap, region_kind):
        region = heap.open_region(region_kind)
        prim = Prim(name="cons")
        prim.annotations["alloc"] = "region"
        cell = heap.allocate(VInt(1), NIL, site=prim)
        return region, cell

    def test_close_stack_region_frees_and_counts(self):
        heap = Heap()
        region, cell = self._region_cell(heap, AllocKind.STACK)
        freed = heap.close_region(region)
        assert freed == 1
        assert cell.freed
        assert heap.metrics.stack_reclaimed == 1

    def test_close_block_region_counts_separately(self):
        heap = Heap()
        region, _ = self._region_cell(heap, AllocKind.BLOCK)
        heap.close_region(region)
        assert heap.metrics.block_reclaimed == 1
        assert heap.metrics.stack_reclaimed == 0

    def test_read_freed_cell_raises(self):
        heap = Heap()
        region, cell = self._region_cell(heap, AllocKind.STACK)
        heap.close_region(region)
        with pytest.raises(UseAfterFreeError):
            heap.read_car(cell)

    def test_escape_check_catches_leak(self):
        heap = Heap()
        region, cell = self._region_cell(heap, AllocKind.STACK)
        with pytest.raises(UseAfterFreeError):
            heap.close_region(region, escaping=VCons(cell))

    def test_escape_check_passes_for_fresh_value(self):
        heap = Heap()
        region, _ = self._region_cell(heap, AllocKind.STACK)
        other = VCons(heap.allocate(VInt(5), NIL))
        heap.close_region(region, escaping=other)  # must not raise

    def test_double_close_is_idempotent(self):
        heap = Heap()
        region, _ = self._region_cell(heap, AllocKind.STACK)
        assert heap.close_region(region) == 1
        assert heap.close_region(region) == 0

    def test_heap_region_rejected(self):
        with pytest.raises(EvalError):
            Heap().open_region(AllocKind.HEAP)

    def test_nested_regions_innermost_wins(self):
        heap = Heap()
        outer = heap.open_region(AllocKind.BLOCK, "outer")
        inner = heap.open_region(AllocKind.STACK, "inner")
        prim = Prim(name="cons")
        prim.annotations["alloc"] = "region"
        cell = heap.allocate(VInt(1), NIL, site=prim)
        assert cell.region is inner
        heap.close_region(inner)
        heap.close_region(outer)


class TestReachability:
    def test_reachable_through_spine(self):
        heap = Heap()
        lst = alloc_list(heap, [1, 2, 3])
        assert len(heap.reachable_cells(lst)) == 3

    def test_reachable_through_env(self):
        heap = Heap()
        lst = alloc_list(heap, [1])
        env = Env().bind("x", lst)
        assert len(heap.reachable_cells(env)) == 1

    def test_nothing_reachable_from_nil(self):
        heap = Heap()
        alloc_list(heap, [1, 2])
        assert heap.reachable_cells(NIL) == set()


class TestSpineMap:
    def test_flat_list_single_level(self):
        heap = Heap()
        lst = alloc_list(heap, [1, 2, 3])
        levels = heap.spine_levels(lst)
        assert set(levels) == {1}
        assert len(levels[1]) == 3

    def test_nested_list_two_levels(self):
        heap = Heap()
        inner1 = alloc_list(heap, [1, 2])
        inner2 = alloc_list(heap, [3])
        spine = VCons(heap.allocate(inner1, VCons(heap.allocate(inner2, NIL))))
        levels = heap.spine_levels(spine)
        assert len(levels[1]) == 2  # outer spine
        assert len(levels[2]) == 3  # element spines

    def test_shared_cell_appears_once_per_level(self):
        heap = Heap()
        shared = alloc_list(heap, [7])
        spine = VCons(heap.allocate(shared, VCons(heap.allocate(shared, NIL))))
        levels = heap.spine_levels(spine)
        assert len(levels[2]) == 1  # the shared inner cell, deduplicated

    def test_nil_has_no_spine(self):
        assert Heap().spine_levels(NIL) == {}
