"""Abstract escape semantics of the constants (§3.2's ``C``, as modified by
§3.4).

The interesting cases::

    C[nil]    = ⊥                                    (nothing contained)
    C[cons]   = ⟨⟨0,0⟩, λx.⟨x₍₁₎, λy. x ⊔ y⟩⟩        (lists collapse to joins)
    C[car^s]  = ⟨⟨0,0⟩, λx. sub^s(x)⟩
    C[cdr]    = ⟨⟨0,0⟩, λx. x⟩                       (same spines may remain)
    C[null]   = ⟨⟨0,0⟩, λx. ⟨⟨0,0⟩, err⟩⟩
    C[+ etc.] = ⟨⟨0,0⟩, λx.⟨x₍₁₎, λy.⟨⟨0,0⟩, err⟩⟩⟩  (partial app holds x)

``sub^s`` implements the paper's case analysis for ``car`` applied to a list
with ``s`` spines: if the list contains exactly the bottom ``s`` spines of
the interesting object, its top spine *is* the object's ``s``-th spine, so
the elements contain one spine fewer; otherwise the containment is
unchanged.

``dcons`` (the destructive cons used by the in-place-reuse optimization,
§6) additionally consumes the donor list whose top-spine cell is recycled;
its result conservatively contains the donor, the head, and the tail.
"""

from __future__ import annotations

from repro.escape.domain import BOTTOM, ERR, EscapeValue, PrimFun
from repro.escape.lattice import Escapement
from repro.lang.ast import Prim
from repro.lang.errors import AnalysisError
from repro.types.spines import car_spine_count


def sub_s(value: EscapeValue, s: int) -> EscapeValue:
    """The paper's ``sub^s``: containment after taking ``car`` of a list
    with ``s`` spines."""
    be = value.be
    if be.escapes == 1 and be.spines == s and s >= 1:
        return EscapeValue(Escapement(1, s - 1), value.fn)
    return value


def _arith_prim(name: str) -> EscapeValue:
    def outer(x: EscapeValue) -> EscapeValue:
        # The partial application (+ x) is a closure containing x, so its
        # contained part is x's; the final result is an int — nothing of
        # the interesting object can be inside it.
        return EscapeValue(x.be, PrimFun((name, "partial", x.be), lambda y: BOTTOM))

    return EscapeValue(Escapement(0, 0), PrimFun((name,), outer))


def _cons_prim(name: str = "cons") -> EscapeValue:
    def outer(x: EscapeValue) -> EscapeValue:
        return EscapeValue(x.be, PrimFun((name, "partial", x), lambda y: x.join(y)))

    return EscapeValue(Escapement(0, 0), PrimFun((name,), outer))


def _car_prim(s: int) -> EscapeValue:
    return EscapeValue(Escapement(0, 0), PrimFun(("car", s), lambda x: sub_s(x, s)))


def _cdr_prim() -> EscapeValue:
    # Under D_e^{τ list} = D_e^τ the tail of a list contains no more and no
    # less of the interesting object than the list itself.
    return EscapeValue(Escapement(0, 0), PrimFun(("cdr",), lambda x: x))


def _null_prim() -> EscapeValue:
    return EscapeValue(Escapement(0, 0), PrimFun(("null",), lambda x: BOTTOM))


def _dcons_prim() -> EscapeValue:
    def take_donor(donor: EscapeValue) -> EscapeValue:
        def take_head(head: EscapeValue) -> EscapeValue:
            def take_tail(tail: EscapeValue) -> EscapeValue:
                return donor.join(head).join(tail)

            return EscapeValue(
                donor.be.join(head.be),
                PrimFun(("dcons", "partial2", donor, head), take_tail),
            )

        return EscapeValue(donor.be, PrimFun(("dcons", "partial1", donor), take_head))

    return EscapeValue(Escapement(0, 0), PrimFun(("dcons",), take_donor))


def _mkpair_prim() -> EscapeValue:
    # Like the list collapse of §3.4, a tuple's abstract value joins its
    # components (the tuple *contains* whatever they contain); fst/snd are
    # then the identity, like cdr.
    def outer(x: EscapeValue) -> EscapeValue:
        return EscapeValue(x.be, PrimFun(("mkpair", "partial", x), lambda y: x.join(y)))

    return EscapeValue(Escapement(0, 0), PrimFun(("mkpair",), outer))


def _proj_prim(name: str) -> EscapeValue:
    return EscapeValue(Escapement(0, 0), PrimFun((name,), lambda x: x))


def abstract_prim(prim: Prim) -> EscapeValue:
    """The abstract value ``C⟦c⟧`` of a primitive occurrence.

    ``car``/``cdr`` need their ``car^s`` annotation, i.e. the occurrence
    must be type-annotated (run :func:`repro.types.infer.infer_program`
    first).
    """
    name = prim.name
    if name in ("+", "-", "*", "/", "==", "<>", "<", "<=", ">", ">="):
        return _arith_prim(name)
    if name == "cons":
        return _cons_prim()
    if name == "car":
        return _car_prim(car_spine_count(prim))
    if name == "cdr":
        return _cdr_prim()
    if name == "null":
        return _null_prim()
    if name == "dcons":
        return _dcons_prim()
    if name == "mkpair":
        return _mkpair_prim()
    if name in ("fst", "snd"):
        return _proj_prim(name)
    raise AnalysisError(f"no abstract semantics for primitive {name!r}", prim.span)
