"""Content-addressed on-disk store for solved SCC fixpoints.

The second cache tier behind :class:`repro.query.AnalysisSession`'s
in-memory SCC cache.  Entries are keyed by the SCC's *provenance digest*
(:func:`repro.query.scc_digest`) — a content hash over the component's
typed bindings fingerprint, the chain bound ``d``, the iteration cap, and
its dependencies' digests — so any process that derives the same digest is
entitled to the stored result, and any analysis-relevant change derives a
different digest (invalidation is automatic; stale entries are simply never
addressed again).

Design points:

* **Layout.**  ``root/<digest[:2]>/<digest>.json``, one entry per file,
  fanned out over 256 subdirectories so corpus-scale stores keep directory
  listings short.
* **Versioned schema.**  Every file carries :data:`SCHEMA_VERSION` and its
  own digest; a version skew or digest mismatch reads as a miss, never as
  a misinterpretation.
* **Atomic writes.**  Payloads land in a same-directory temp file and are
  ``os.replace``\\ d into place, so concurrent batch workers racing on the
  same digest can only ever observe a complete entry (last writer wins;
  both wrote the same content, by content-addressing).
* **Corruption tolerance.**  :meth:`AnalysisStore.read` returns ``None``
  on *any* failure — missing file, bad JSON, schema skew, injected fault —
  and the caller re-solves.  A store can be deleted, truncated, or
  hand-edited at any time without affecting correctness, only warmth.
  Reads run under the ``"store_load"`` fault-injection stage
  (:mod:`repro.robust.faults`) so that degradation path stays tested.
* **Failed writes are silent.**  A full disk or read-only store loses
  warmth, not answers.  Writes run under the ``"store_write"`` stage, and
  the fault plan can *tear* one — a truncated entry plus an orphaned temp
  file, the exact residue of a writer killed between create and rename —
  which the reader shrugs off as a miss.
* **Stale-tmp reaping.**  A writer that dies between ``mkstemp`` and
  ``os.replace`` leaves a ``.*.tmp`` orphan.  Opening a store sweeps temp
  files older than ``reap_age_s`` (old enough that no live writer can
  still own them); :meth:`AnalysisStore.reap_tmp` runs the sweep on demand
  with any age, so a post-crash recovery can force ``max_age_s=0``.

The store never interprets payloads; (de)serialization of abstract values
lives in :mod:`repro.escape.serialize` and the digest derivation in
:mod:`repro.query`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.obs import tracer as obs
from repro.robust import faults

#: Version of the on-disk file schema (the envelope around the payload).
#: Bump on any change to the file layout; the value-graph representation
#: inside the payload is separately versioned by
#: :data:`repro.escape.serialize.CODEC_VERSION`.
SCHEMA_VERSION = 1

#: Temp files older than this at store-open are presumed orphaned by a dead
#: writer and reaped.  Live writers hold a temp file for the milliseconds
#: between ``mkstemp`` and ``os.replace``, so minutes of slack is generous.
DEFAULT_REAP_AGE_S = 300.0


class AnalysisStore:
    """A directory of solved-SCC payloads, addressed by provenance digest."""

    def __init__(
        self,
        root: str | os.PathLike,
        reap: bool = True,
        reap_age_s: float = DEFAULT_REAP_AGE_S,
    ):
        self.root = Path(root)
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._tmp_reaped = 0
        if reap:
            self.reap_tmp(max_age_s=reap_age_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnalysisStore({str(self.root)!r})"

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- reads --------------------------------------------------------------

    def read(self, digest: str) -> dict | None:
        """The payload stored under ``digest``, or ``None``.

        ``None`` covers every failure mode — absent, unreadable, corrupt,
        version-skewed, mis-addressed, or an injected ``"store_load"``
        fault — because the caller's fallback (re-solve) is always correct.
        """
        try:
            faults.check_stage("store_load")
            raw = self._path(digest).read_text(encoding="utf-8")
            doc = json.loads(raw)
            if (
                not isinstance(doc, dict)
                or doc.get("schema") != SCHEMA_VERSION
                or doc.get("digest") != digest
                or not isinstance(doc.get("payload"), dict)
            ):
                return None
            return doc["payload"]
        except Exception:
            return None

    # -- writes -------------------------------------------------------------

    def write(self, digest: str, payload: dict) -> bool:
        """Persist ``payload`` under ``digest``; True if it landed.

        Atomic (temp file + rename) and failure-silent: storage problems
        must never surface as analysis errors.
        """
        path = self._path(digest)
        document = {"schema": SCHEMA_VERSION, "digest": digest, "payload": payload}
        try:
            faults.check_stage("store_write")
            path.parent.mkdir(parents=True, exist_ok=True)
            if faults.take_torn_write():
                self._tear_write(path, digest, document)
                return False
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, sort_keys=True, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return True
        except Exception:
            return False

    def _tear_write(self, path: Path, digest: str, document: dict) -> None:
        """Leave exactly the residue of a writer killed between create and
        rename: a half-written temp file *and* a truncated entry (the torn
        state a crashed ``os.replace``-less writer could expose).  The
        reader treats the truncated entry as a miss; the orphaned temp file
        is what :meth:`reap_tmp` exists to clean up."""
        raw = json.dumps(document, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(raw[: max(1, len(raw) // 2)])
        path.write_text(raw[: max(1, len(raw) // 3)], encoding="utf-8")

    # -- bookkeeping (session-independent store traffic) ---------------------

    def note_hit(self) -> None:
        self._hits += 1

    def note_miss(self) -> None:
        self._misses += 1

    def note_write(self) -> None:
        self._writes += 1

    def counters(self) -> dict[str, int]:
        return {
            "store_hits": self._hits,
            "store_misses": self._misses,
            "store_writes": self._writes,
            "store_tmp_reaped": self._tmp_reaped,
        }

    # -- maintenance ---------------------------------------------------------

    def tmp_files(self) -> list[Path]:
        """Every temp file currently in the store (orphans plus any a live
        writer holds for its microseconds-long window)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/.*.tmp"))

    def reap_tmp(self, max_age_s: float = DEFAULT_REAP_AGE_S) -> int:
        """Delete temp files older than ``max_age_s`` seconds; returns how
        many were reaped.

        Safe against live writers by age: a concurrent writer's temp file
        is younger than any sane ``max_age_s`` (pass ``0`` only when no
        writer can be active, e.g. post-crash recovery or tests).  Errors
        are absorbed like every other storage problem — a temp file that
        vanished first was reaped by a racing opener, which is fine.
        """
        reaped = 0
        try:
            cutoff = time.time() - max_age_s
            for tmp in self.tmp_files():
                try:
                    if tmp.stat().st_mtime <= cutoff:
                        tmp.unlink()
                        reaped += 1
                except OSError:
                    continue
        except Exception:
            pass
        if reaped:
            self._tmp_reaped += reaped
            obs.emit("store_reap", count=reaped)
        return reaped

    def __len__(self) -> int:
        """Number of complete entries on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def digests(self) -> list[str]:
        """All stored digests, sorted (for tooling and tests)."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("??/*.json"))
