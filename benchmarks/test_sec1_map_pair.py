"""E1 — the Section 1 example: the three escape properties of map/pair.

1. pair's top spine does not escape pair;
2. map's list parameter's top spine does not escape map;
3. in (map pair [[1,2],[3,4],[5,6]]), the top two spines of the literal do
   not escape.
"""

from repro.bench.tables import print_table
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import paper_map_pair

CALL = "map pair [[1, 2], [3, 4], [5, 6]]"


def test_sec1_property1_pair(benchmark):
    program = paper_map_pair()
    result = benchmark(lambda: EscapeAnalysis(program).global_test("pair", 1))
    assert result.non_escaping_spines >= 1


def test_sec1_property2_map(benchmark):
    program = paper_map_pair()
    result = benchmark(lambda: EscapeAnalysis(program).global_test("map", 2))
    assert str(result.result) == "<1,0>"
    assert result.non_escaping_spines == 1


def test_sec1_property3_local_call(benchmark):
    program = paper_map_pair()
    result = benchmark(lambda: EscapeAnalysis(program).local_test(CALL, i=2))
    assert result.param_spines == 2
    assert result.non_escaping_spines == 2

    analysis = EscapeAnalysis(program)
    rows = [
        ["1 (pair)", str(analysis.global_test("pair", 1).result), "property 1"],
        ["2 (map, global)", str(analysis.global_test("map", 2).result), "property 2"],
        ["2 (map, local)", str(analysis.local_test(CALL, i=2).result), "property 3"],
    ]
    print_table(["test", "escape value", "paper claim"], rows, title=f"Section 1: {CALL}")
