"""JSON (de)serialization of abstract escape values and solved SCC entries.

The analysis store (:mod:`repro.store`) persists per-SCC fixpoint results
across processes, which requires round-tripping :class:`EscapeValue`s whose
function components are *closures over the program's AST*.  The codec makes
that possible with three representation choices:

* **AST paths, not ASTs.**  A :class:`ClosureFun`'s body is never embedded;
  it is referenced as ``[binding_name, i, j, ...]`` — child indices from the
  named top-level binding's expression.  The store key (the SCC's provenance
  digest, :func:`repro.query.scc_digest`) pins the *typed* fingerprint of
  the component's bindings and — transitively, through the dependency digest
  chain — of every binding a stored value can reference, so the path
  resolves to a structurally and type-identical node in any session that
  looks the entry up.
* **Pruned captured environments.**  A closure's captured environment is
  serialized restricted to the free variables of its body: semantically
  complete (application only ever reads free identifiers) and necessary,
  because the full capture snapshots *every* name in scope, including
  bindings outside the SCC's dependency cone that the digest does not pin.
* **Environment references.**  A value that *is* a dependency's solved
  value is stored as ``{"k": "envref", "name": dep}`` and resolved against
  the loading session's already-solved environment — store loads share the
  session's dependency values exactly as in-memory cache hits do.

Primitives round-trip through their structural ``tag`` (partial
applications re-derive their behaviour by re-applying the base primitive),
worst-case functions through their remaining type, and object graphs are
flattened with an intern table so shared substructure (fixpoint iterates
chain into each other's captured environments) stays linear in size.
Everything the encoder emits is deterministic — dictionaries are written in
sorted key order — so two cold solves of the same program produce
byte-identical payloads, the property the cross-process tests assert.

Any value the codec cannot represent raises :class:`SerializationError`;
callers treat an encode failure as "don't persist" and a decode failure as
a store miss, never as an analysis error.
"""

from __future__ import annotations

from repro.escape.abstract import AbsEnv, FixpointTrace
from repro.escape.domain import (
    BOTTOM,
    ERR,
    AbsFun,
    ClosureFun,
    ErrFun,
    EscapeValue,
    JoinFun,
    PrimFun,
)
from repro.escape.lattice import Escapement
from repro.escape.primitives import (
    _arith_prim,
    _car_prim,
    _cdr_prim,
    _cons_prim,
    _dcons_prim,
    _mkpair_prim,
    _null_prim,
    _proj_prim,
)
from repro.lang.ast import Expr, Program, free_vars
from repro.types.types import TBool, TFun, TInt, TList, TProd, TVar, Type

#: Version of the value-graph representation.  Part of the provenance
#: digest material (:data:`repro.query.DIGEST_VERSION` chains it), so a
#: codec change silently invalidates every previously stored entry instead
#: of misreading it.
#:
#: 2: entries carry the SCC's sharing classes, so a store hit reproduces
#: the complete analysis result (warm and cold snapshots byte-match).
#:
#: 3: entries carry the SCC's heap-liveness summaries
#: (:mod:`repro.analysis.heap_liveness`), so warm solves reproduce the
#: liveness facts the collector zoo and the diff artifacts consume.
CODEC_VERSION = 3


class SerializationError(ValueError):
    """A value (or payload) cannot be (de)serialized.

    Encode side: the value escapes the representable domain (e.g. a closure
    body outside the indexed bindings).  Decode side: the payload is
    corrupt, version-skewed, or references context the loading session does
    not have.  Both are recoverable by construction — skip the write, or
    treat the read as a miss and re-solve.
    """


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def encode_type(ty: Type) -> list:
    """``ty`` as a JSON-friendly tagged list."""
    if isinstance(ty, TInt):
        return ["int"]
    if isinstance(ty, TBool):
        return ["bool"]
    if isinstance(ty, TVar):
        return ["var", ty.id]
    if isinstance(ty, TList):
        return ["list", encode_type(ty.element)]
    if isinstance(ty, TFun):
        return ["fun", encode_type(ty.arg), encode_type(ty.result)]
    if isinstance(ty, TProd):
        return ["prod", encode_type(ty.fst), encode_type(ty.snd)]
    raise SerializationError(f"cannot encode type {type(ty).__name__}")


def decode_type(doc) -> Type:
    try:
        tag = doc[0]
        if tag == "int":
            return TInt()
        if tag == "bool":
            return TBool()
        if tag == "var":
            return TVar(int(doc[1]))
        if tag == "list":
            return TList(decode_type(doc[1]))
        if tag == "fun":
            return TFun(decode_type(doc[1]), decode_type(doc[2]))
        if tag == "prod":
            return TProd(decode_type(doc[1]), decode_type(doc[2]))
    except SerializationError:
        raise
    except Exception as error:
        raise SerializationError(f"malformed type document: {doc!r}") from error
    raise SerializationError(f"unknown type tag {tag!r}")


# ---------------------------------------------------------------------------
# Fingerprints (nested Escapement/tuple trees, cf. repro.escape.abstract)
# ---------------------------------------------------------------------------


def encode_fingerprint(fp) -> list:
    if isinstance(fp, Escapement):
        return ["E", fp.escapes, fp.spines]
    if isinstance(fp, str):
        return ["S", fp]
    if isinstance(fp, tuple):
        return ["T"] + [encode_fingerprint(item) for item in fp]
    raise SerializationError(f"cannot encode fingerprint component {fp!r}")


def decode_fingerprint(doc):
    try:
        tag = doc[0]
        if tag == "E":
            return Escapement(doc[1], doc[2])
        if tag == "S":
            return doc[1]
        if tag == "T":
            return tuple(decode_fingerprint(item) for item in doc[1:])
    except SerializationError:
        raise
    except Exception as error:
        raise SerializationError(f"malformed fingerprint: {doc!r}") from error
    raise SerializationError(f"unknown fingerprint tag {tag!r}")


# ---------------------------------------------------------------------------
# AST node paths
# ---------------------------------------------------------------------------


class NodeIndex:
    """Maps AST nodes (by identity) to ``(binding_name, child_path)``.

    A session registers every program clone it solves on; nodes of the same
    top-level binding get the same path in every clone, so the index can
    span clones without ambiguity.  Registered programs are kept alive so
    ``id()`` keys can never be recycled.
    """

    def __init__(self) -> None:
        self._paths: dict[int, tuple] = {}
        self._programs: list[Program] = []

    def add_program(self, program: Program) -> None:
        self._programs.append(program)
        for binding in program.bindings:
            self._walk(binding.expr, (binding.name,))

    def _walk(self, node: Expr, path: tuple) -> None:
        self._paths[id(node)] = path
        for i, child in enumerate(node.children()):
            self._walk(child, path + (i,))

    def path_of(self, node: Expr) -> tuple:
        try:
            return self._paths[id(node)]
        except KeyError:
            raise SerializationError(
                f"AST node {type(node).__name__} is outside the indexed bindings"
            ) from None


def resolve_path(program: Program, path: list) -> Expr:
    """The node at ``[binding_name, i, j, ...]`` in ``program``."""
    try:
        node: Expr = program.binding(str(path[0])).expr
        for index in path[1:]:
            node = node.children()[index]
        return node
    except SerializationError:
        raise
    except Exception as error:
        raise SerializationError(f"unresolvable AST path {path!r}") from error


# ---------------------------------------------------------------------------
# Value graphs
# ---------------------------------------------------------------------------


class ValueEncoder:
    """Flattens values (and their function components) into an intern table.

    ``objects`` is emitted in dependency order — every reference is an index
    into the prefix — so the decoder can rebuild it in one forward pass.
    ``env_names`` maps ``id(value) -> dependency name`` for values that must
    be stored as environment references rather than structurally.
    """

    def __init__(self, index: NodeIndex, env_names: dict[int, str] | None = None):
        self.index = index
        self.env_names = env_names or {}
        self.objects: list[dict] = []
        self._memo: dict[int, int] = {}
        self._in_progress: set[int] = set()

    def _append(self, obj: dict) -> int:
        self.objects.append(obj)
        return len(self.objects) - 1

    def encode_value(self, value: EscapeValue) -> int:
        key = id(value)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            raise SerializationError("cyclic value graph")
        name = self.env_names.get(key)
        if name is not None:
            idx = self._append({"k": "envref", "name": name})
            self._memo[key] = idx
            return idx
        self._in_progress.add(key)
        try:
            fn_idx = self.encode_fun(value.fn)
            idx = self._append(
                {"k": "val", "be": [value.be.escapes, value.be.spines], "fn": fn_idx}
            )
        finally:
            self._in_progress.discard(key)
        self._memo[key] = idx
        return idx

    def encode_fun(self, fun: AbsFun) -> int:
        key = id(fun)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            raise SerializationError("cyclic value graph")
        self._in_progress.add(key)
        try:
            idx = self._append(self._fun_obj(fun))
        finally:
            self._in_progress.discard(key)
        self._memo[key] = idx
        return idx

    def _fun_obj(self, fun: AbsFun) -> dict:
        if isinstance(fun, ErrFun):
            return {"k": "err"}
        if isinstance(fun, PrimFun):
            return {"k": "prim", "tag": [self._tag_item(x) for x in fun.tag]}
        if isinstance(fun, JoinFun):
            return {"k": "join", "funs": [self.encode_fun(f) for f in fun.funs]}
        if isinstance(fun, ClosureFun):
            path = self.index.path_of(fun.body)
            names = sorted(free_vars(fun.body) - {fun.param})
            env = {
                name: self.encode_value(fun.env[name])
                for name in names
                if name in fun.env
            }
            return {
                "k": "closure",
                "param": fun.param,
                "body": list(path),
                "env": env,
            }
        # WorstFun imported lazily to keep the top-level import graph small.
        from repro.escape.worst import WorstFun

        if isinstance(fun, WorstFun):
            return {
                "k": "worst",
                "remaining": encode_type(fun.remaining),
                "acc": [fun.acc.escapes, fun.acc.spines],
            }
        raise SerializationError(f"cannot encode {type(fun).__name__}")

    def _tag_item(self, item):
        if isinstance(item, str):
            return {"s": item}
        if isinstance(item, bool):
            raise SerializationError(f"cannot encode primitive tag item {item!r}")
        if isinstance(item, int):
            return {"i": item}
        if isinstance(item, Escapement):
            return {"be": [item.escapes, item.spines]}
        if isinstance(item, EscapeValue):
            return {"v": self.encode_value(item)}
        raise SerializationError(f"cannot encode primitive tag item {item!r}")

    def encode_env(self, env: AbsEnv) -> dict[str, int]:
        return {name: self.encode_value(env[name]) for name in sorted(env)}


class ValueDecoder:
    """Rebuilds a value graph against a loading session's context:
    ``program`` resolves AST paths, ``env`` resolves dependency references,
    ``evaluator`` hosts the rebuilt closures."""

    def __init__(self, objects: list, program: Program, env: AbsEnv, evaluator):
        self.program = program
        self.env = env
        self.evaluator = evaluator
        self._decoded: list = []
        try:
            for obj in objects:
                self._decoded.append(self._decode_obj(obj))
        except SerializationError:
            raise
        except Exception as error:
            raise SerializationError(f"malformed value graph: {error}") from error

    # -- references --------------------------------------------------------

    def value(self, idx) -> EscapeValue:
        obj = self._decoded[idx]
        if not isinstance(obj, EscapeValue):
            raise SerializationError(f"object #{idx} is not a value")
        return obj

    def _fun(self, idx) -> AbsFun:
        obj = self._decoded[idx]
        if not isinstance(obj, AbsFun):
            raise SerializationError(f"object #{idx} is not a function")
        return obj

    def env_map(self, doc: dict) -> AbsEnv:
        return {name: self.value(idx) for name, idx in doc.items()}

    # -- objects -----------------------------------------------------------

    def _decode_obj(self, obj: dict):
        kind = obj["k"]
        if kind == "val":
            escapes, spines = obj["be"]
            return EscapeValue(Escapement(escapes, spines), self._fun(obj["fn"]))
        if kind == "envref":
            name = obj["name"]
            value = self.env.get(name)
            if value is None:
                raise SerializationError(
                    f"environment reference {name!r} is not solved yet"
                )
            return value
        if kind == "err":
            return ERR
        if kind == "prim":
            return self._decode_prim(tuple(self._tag_item(x) for x in obj["tag"]))
        if kind == "join":
            return JoinFun(tuple(self._fun(idx) for idx in obj["funs"]))
        if kind == "closure":
            body = resolve_path(self.program, obj["body"])
            env = {name: self.value(idx) for name, idx in obj["env"].items()}
            return ClosureFun(obj["param"], body, env, self.evaluator)
        if kind == "worst":
            from repro.escape.worst import WorstFun

            escapes, spines = obj["acc"]
            return WorstFun(decode_type(obj["remaining"]), Escapement(escapes, spines))
        raise SerializationError(f"unknown object kind {kind!r}")

    def _tag_item(self, item: dict):
        if "s" in item:
            return item["s"]
        if "i" in item:
            return item["i"]
        if "be" in item:
            escapes, spines = item["be"]
            return Escapement(escapes, spines)
        if "v" in item:
            return self.value(item["v"])
        raise SerializationError(f"unknown tag item {item!r}")

    _ARITH = ("+", "-", "*", "/", "==", "<>", "<", "<=", ">", ">=")

    def _decode_prim(self, tag: tuple) -> PrimFun:
        """Reconstruct a primitive's behaviour from its structural tag.

        Base primitives re-derive through the constructors in
        :mod:`repro.escape.primitives`; partial applications re-apply the
        base primitive to the decoded captured values, so the rebuilt
        callable is the one the original closure held.
        """
        name = tag[0]
        if not isinstance(name, str):
            raise SerializationError(f"malformed primitive tag {tag!r}")
        if name == "car" and len(tag) == 2 and isinstance(tag[1], int):
            return self._checked(_car_prim(tag[1]).fn, tag)
        if len(tag) == 1:
            return self._checked(self._base_fun(name), tag)
        marker = tag[1]
        if marker == "partial" and len(tag) == 3 and isinstance(tag[2], Escapement):
            # Arith partials capture only the escapement; their application
            # is constant bottom (cf. primitives._arith_prim).
            if name not in self._ARITH:
                raise SerializationError(f"unknown primitive tag {tag!r}")
            return PrimFun(tag, lambda _y: BOTTOM)
        base = self._base_fun(name)
        if marker in ("partial", "partial1") and len(tag) == 3:
            partial = base.apply(tag[2]).fn
        elif marker == "partial2" and len(tag) == 4:
            partial = base.apply(tag[2]).fn.apply(tag[3]).fn
        else:
            raise SerializationError(f"unknown primitive tag {tag!r}")
        return self._checked(partial, tag)

    def _base_fun(self, name: str) -> PrimFun:
        if name in self._ARITH:
            value = _arith_prim(name)
        elif name == "cons":
            value = _cons_prim()
        elif name == "cdr":
            value = _cdr_prim()
        elif name == "null":
            value = _null_prim()
        elif name == "dcons":
            value = _dcons_prim()
        elif name == "mkpair":
            value = _mkpair_prim()
        elif name in ("fst", "snd"):
            value = _proj_prim(name)
        else:
            raise SerializationError(f"unknown primitive {name!r}")
        assert isinstance(value.fn, PrimFun)
        return value.fn

    @staticmethod
    def _checked(fun, tag: tuple) -> PrimFun:
        if not isinstance(fun, PrimFun) or fun.tag != tag:
            raise SerializationError(f"primitive tag {tag!r} did not reconstruct")
        return fun


# ---------------------------------------------------------------------------
# Solved-SCC entry payloads
# ---------------------------------------------------------------------------


def encode_entry(
    values: dict[str, EscapeValue],
    traces: list[FixpointTrace],
    iterates: list[AbsEnv],
    base_env: AbsEnv,
    iterations: int,
    index: NodeIndex,
    env_names: dict[int, str],
    sharing: "dict[str, list[str]] | None" = None,
    liveness: "dict[str, dict] | None" = None,
) -> dict:
    """A solved SCC (cf. :class:`repro.query._SCCEntry`) as a JSON payload."""
    encoder = ValueEncoder(index, env_names)
    doc = {
        "codec": CODEC_VERSION,
        "sharing": {
            name: sorted(members) for name, members in sorted((sharing or {}).items())
        },
        "liveness": {
            name: summary for name, summary in sorted((liveness or {}).items())
        },
        "values": encoder.encode_env(values),
        "base_env": encoder.encode_env(base_env),
        "iterates": [encoder.encode_env(iterate) for iterate in iterates],
        "iterations": iterations,
        "traces": [
            {
                "name": trace.name,
                "fingerprints": [encode_fingerprint(fp) for fp in trace.fingerprints],
                "converged": trace.converged,
                "widened": trace.widened,
            }
            for trace in traces
        ],
    }
    doc["objects"] = encoder.objects
    return doc


def decode_entry(payload: dict, program: Program, env: AbsEnv, evaluator) -> dict:
    """The inverse of :func:`encode_entry`: plain decoded pieces, keyed
    ``values`` / ``traces`` / ``iterates`` / ``base_env`` / ``iterations``.

    Raises :class:`SerializationError` on *any* malformation — the caller
    treats that as a store miss.
    """
    try:
        if payload.get("codec") != CODEC_VERSION:
            raise SerializationError(
                f"codec version skew: {payload.get('codec')!r} != {CODEC_VERSION}"
            )
        decoder = ValueDecoder(payload["objects"], program, env, evaluator)
        return {
            "sharing": {
                str(name): [str(n) for n in members]
                for name, members in payload.get("sharing", {}).items()
            },
            "liveness": {
                str(name): dict(summary)
                for name, summary in payload.get("liveness", {}).items()
            },
            "values": decoder.env_map(payload["values"]),
            "base_env": decoder.env_map(payload["base_env"]),
            "iterates": [decoder.env_map(doc) for doc in payload["iterates"]],
            "iterations": int(payload["iterations"]),
            "traces": [
                FixpointTrace(
                    name=doc["name"],
                    fingerprints=[
                        decode_fingerprint(fp) for fp in doc["fingerprints"]
                    ],
                    converged=bool(doc["converged"]),
                    widened=bool(doc["widened"]),
                )
                for doc in payload["traces"]
            ],
        }
    except SerializationError:
        raise
    except Exception as error:
        raise SerializationError(f"malformed entry payload: {error}") from error
