"""Lexer unit tests: token kinds, values, spans, comments, errors."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_is_just_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only(self):
        assert kinds("  \t \n ") == [TokenKind.EOF]

    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 42

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_multi_digit_integer(self):
        assert tokenize("123456789")[0].value == 123456789

    def test_identifier(self):
        token = tokenize("foo")[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "foo"

    def test_identifier_with_underscore_digits_prime(self):
        assert tokenize("rev_acc2'")[0].value == "rev_acc2'"

    def test_identifier_starting_with_underscore(self):
        assert tokenize("_tmp")[0].value == "_tmp"

    def test_uppercase_identifier(self):
        assert tokenize("APPEND")[0].value == "APPEND"


class TestKeywords:
    @pytest.mark.parametrize(
        "word,kind",
        [
            ("if", TokenKind.IF),
            ("then", TokenKind.THEN),
            ("else", TokenKind.ELSE),
            ("letrec", TokenKind.LETREC),
            ("let", TokenKind.LET),
            ("in", TokenKind.IN),
            ("lambda", TokenKind.LAMBDA),
            ("true", TokenKind.TRUE),
            ("false", TokenKind.FALSE),
            ("nil", TokenKind.NIL),
            ("and", TokenKind.AND_KW),
        ],
    )
    def test_keyword(self, word, kind):
        assert kinds(word) == [kind, TokenKind.EOF]

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("iffy")[0].kind is TokenKind.IDENT

    def test_nil_inside_identifier(self):
        assert tokenize("nils")[0].kind is TokenKind.IDENT


class TestOperators:
    def test_two_char_operators(self):
        assert texts("== <> <= >= :: ->") == ["==", "<>", "<=", ">=", "::", "->"]

    def test_one_char_operators(self):
        assert texts("( ) [ ] , ; = < > + - * / .") == [
            "(", ")", "[", "]", ",", ";", "=", "<", ">", "+", "-", "*", "/", ".",
        ]

    def test_eq_vs_eqeq(self):
        assert kinds("= ==")[:2] == [TokenKind.EQ, TokenKind.EQEQ]

    def test_maximal_munch_coloncolon(self):
        assert kinds("x::y") == [
            TokenKind.IDENT,
            TokenKind.COLONCOLON,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_minus_then_digit_tokenizes_separately(self):
        assert kinds("-3") == [TokenKind.MINUS, TokenKind.INT, TokenKind.EOF]


class TestComments:
    def test_line_comment(self):
        assert kinds("1 -- a comment\n2") == [TokenKind.INT, TokenKind.INT, TokenKind.EOF]

    def test_line_comment_at_eof(self):
        assert kinds("1 -- trailing") == [TokenKind.INT, TokenKind.EOF]

    def test_block_comment(self):
        assert kinds("1 (* hi *) 2") == [TokenKind.INT, TokenKind.INT, TokenKind.EOF]

    def test_nested_block_comment(self):
        assert kinds("(* outer (* inner *) still *) 7") == [TokenKind.INT, TokenKind.EOF]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("(* never closed")

    def test_paren_star_requires_comment_close(self):
        # "(*)" opens a comment containing ")" — unterminated.
        with pytest.raises(LexError):
            tokenize("(*)")


class TestSpans:
    def test_token_line_and_column(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].span.line, tokens[0].span.column) == (1, 1)
        assert (tokens[1].span.line, tokens[1].span.column) == (2, 3)

    def test_span_end_column(self):
        token = tokenize("hello")[0]
        assert token.span.end_column == 6

    def test_error_carries_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("\n  ?")
        assert exc.value.span.line == 2


class TestErrors:
    @pytest.mark.parametrize("bad", ["?", "@", "#", "$", "&", "!"])
    def test_unexpected_character(self, bad):
        with pytest.raises(LexError):
            tokenize(bad)

    def test_whole_program_lexes(self):
        source = (
            "ps x = if (null x) then nil\n"
            "  else append (ps lo) (cons (car x) (ps hi));\n"
            "ps [5, 2, 7]\n"
        )
        tokens = tokenize(source)
        assert tokens[-1].kind is TokenKind.EOF
        assert len(tokens) > 30
