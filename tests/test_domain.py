"""Abstract value domain tests: EscapeValue, err, joins, primitives'
abstract semantics, and the worst-case functions W^τ."""

import pytest
from hypothesis import given, strategies as st

from repro.escape.domain import (
    BOTTOM,
    ERR,
    ErrFun,
    EscapeValue,
    JoinFun,
    PrimFun,
    join_values,
)
from repro.escape.lattice import Escapement, NONE_ESCAPES
from repro.escape.primitives import abstract_prim, sub_s
from repro.escape.worst import worst_fun, worst_value
from repro.lang.ast import Prim
from repro.types.types import BOOL, INT, TFun, TList, list_of, spines

E10 = EscapeValue(Escapement(1, 0))
E11 = EscapeValue(Escapement(1, 1))
E12 = EscapeValue(Escapement(1, 2))


class TestErr:
    def test_err_is_singleton(self):
        assert ErrFun() is ERR

    def test_applying_err_gives_bottom(self):
        assert ERR.apply(E11) == BOTTOM

    def test_err_join_is_identity(self):
        fn = PrimFun(("t",), lambda x: x)
        assert ERR.join(fn) is fn
        assert fn.join(ERR) is fn


class TestEscapeValue:
    def test_bottom(self):
        assert BOTTOM.be == NONE_ESCAPES
        assert isinstance(BOTTOM.fn, ErrFun)

    def test_join_on_be_components(self):
        assert E10.join(E11).be == Escapement(1, 1)

    def test_join_values_empty(self):
        assert join_values([]) == BOTTOM

    def test_join_values_many(self):
        assert join_values([BOTTOM, E10, E12]).be == Escapement(1, 2)

    def test_join_of_functions_is_pointwise(self):
        f = PrimFun(("f",), lambda x: E10)
        g = PrimFun(("g",), lambda x: E11)
        joined = EscapeValue(NONE_ESCAPES, f).join(EscapeValue(NONE_ESCAPES, g))
        assert joined.apply(BOTTOM).be == Escapement(1, 1)

    def test_join_dedupes_equal_prims(self):
        f1 = PrimFun(("same",), lambda x: E10)
        f2 = PrimFun(("same",), lambda x: E10)
        joined = f1.join(f2)
        assert not isinstance(joined, JoinFun)

    def test_with_be(self):
        assert E10.with_be(Escapement(1, 2)).be == Escapement(1, 2)


class TestSubS:
    """The paper's sub^s case analysis for car."""

    def test_exact_spine_match_decrements(self):
        assert sub_s(E11, 1).be == Escapement(1, 0)

    def test_deeper_container_unchanged(self):
        # list has 2 spines, object occupies bottom 1: car keeps it
        assert sub_s(E11, 2) == E11

    def test_none_unchanged(self):
        assert sub_s(BOTTOM, 1) == BOTTOM

    def test_indivisible_object_unchanged(self):
        assert sub_s(E10, 1) == E10

    def test_two_spines_decrement(self):
        assert sub_s(E12, 2).be == Escapement(1, 1)

    def test_preserves_function_component(self):
        fn = PrimFun(("keep",), lambda x: x)
        value = EscapeValue(Escapement(1, 1), fn)
        assert sub_s(value, 1).fn is fn


class TestAbstractPrims:
    def _typed_prim(self, name, ty):
        prim = Prim(name=name)
        prim.ty = ty
        return prim

    def test_arith_result_contains_nothing(self):
        plus = abstract_prim(Prim(name="+"))
        result = plus.apply(E11).apply(E12)
        assert result == BOTTOM

    def test_arith_partial_application_holds_argument(self):
        plus = abstract_prim(Prim(name="+"))
        assert plus.apply(E11).be == Escapement(1, 1)

    def test_cons_joins(self):
        cons = abstract_prim(Prim(name="cons"))
        assert cons.apply(E10).apply(E11).be == Escapement(1, 1)

    def test_cons_partial_holds_head(self):
        cons = abstract_prim(Prim(name="cons"))
        assert cons.apply(E12).be == Escapement(1, 2)

    def test_car_uses_annotation(self):
        car = self._typed_prim("car", TFun(TList(INT), INT))
        value = abstract_prim(car)
        assert value.apply(E11).be == Escapement(1, 0)

    def test_car2_on_depth1_containment(self):
        car2 = self._typed_prim("car", TFun(list_of(INT, 2), TList(INT)))
        assert abstract_prim(car2).apply(E11) == E11

    def test_cdr_is_identity(self):
        cdr = self._typed_prim("cdr", TFun(TList(INT), TList(INT)))
        assert abstract_prim(cdr).apply(E11) == E11

    def test_null_gives_bottom(self):
        null = abstract_prim(Prim(name="null"))
        assert null.apply(E12) == BOTTOM

    def test_dcons_contains_everything(self):
        dcons = abstract_prim(Prim(name="dcons"))
        result = dcons.apply(E10).apply(BOTTOM).apply(E11)
        assert result.be == Escapement(1, 1)

    def test_car_without_type_raises(self):
        from repro.lang.errors import AnalysisError

        with pytest.raises(AnalysisError):
            abstract_prim(Prim(name="car"))


class TestWorstCase:
    def test_base_type_is_err(self):
        assert worst_fun(INT) is ERR
        assert worst_fun(TList(INT)) is ERR

    def test_unary_function(self):
        w = worst_fun(TFun(TList(INT), TList(INT)))
        assert w.apply(E11).be == Escapement(1, 1)

    def test_accumulates_across_arguments(self):
        w = worst_fun(TFun(INT, TFun(INT, INT)))
        partial = w.apply(E10)
        assert partial.be == Escapement(1, 0)
        final = partial.apply(E11)
        assert final.be == Escapement(1, 1)
        assert isinstance(final.fn, ErrFun)

    def test_list_of_functions_strips_list(self):
        w = worst_fun(TList(TFun(INT, INT)))
        assert not isinstance(w, ErrFun)
        assert w.apply(E12).be == Escapement(1, 2)

    def test_worst_value_interesting(self):
        value = worst_value(list_of(INT, 2), interesting=True)
        assert value.be == Escapement(1, 2)

    def test_worst_value_uninteresting(self):
        value = worst_value(list_of(INT, 2), interesting=False)
        assert value.be == NONE_ESCAPES

    def test_worst_value_function_type(self):
        value = worst_value(TFun(INT, INT), interesting=True)
        assert value.be == Escapement(1, 0)  # spines(fn type) = 0
        assert not isinstance(value.fn, ErrFun)


class TestJoinLaws:
    bes = st.sampled_from(
        [NONE_ESCAPES, Escapement(1, 0), Escapement(1, 1), Escapement(1, 2)]
    )

    @given(bes, bes)
    def test_value_join_commutes_on_be(self, a, b):
        va, vb = EscapeValue(a), EscapeValue(b)
        assert va.join(vb).be == vb.join(va).be

    @given(bes)
    def test_bottom_identity(self, a):
        v = EscapeValue(a)
        assert BOTTOM.join(v) == v
