"""Name resolution: distinguish primitive constants from identifiers.

The parser produces :class:`~repro.lang.ast.Var` for every name.  This pass
rewrites occurrences of primitive names (``cons``, ``car``, ``+``, ...) that
are *not* shadowed by a lambda parameter or a letrec binding into
:class:`~repro.lang.ast.Prim` constants, matching the paper's treatment of
primitives as constants of the language.

Non-primitive free identifiers are left alone — they may be given meaning by
an environment supplied at type-inference or evaluation time.
"""

from __future__ import annotations

from repro.lang.ast import PRIMITIVES, Expr, If, Lambda, Letrec, Prim, Var


def resolve_expr(expr: Expr, bound: frozenset[str] = frozenset()) -> Expr:
    """Return ``expr`` with unshadowed primitive names turned into Prim."""
    if isinstance(expr, Var):
        if expr.name in PRIMITIVES and expr.name not in bound:
            return Prim(span=expr.span, name=expr.name)
        return expr
    if isinstance(expr, Lambda):
        body = resolve_expr(expr.body, bound | {expr.param})
        if body is expr.body:
            return expr
        return expr.with_children((body,))
    if isinstance(expr, Letrec):
        inner = bound | set(expr.binding_names())
        children = expr.children()
        new_children = tuple(resolve_expr(child, inner) for child in children)
        if all(new is old for new, old in zip(new_children, children)):
            return expr
        return expr.with_children(new_children)
    children = expr.children()
    if not children:
        return expr
    new_children = tuple(resolve_expr(child, bound) for child in children)
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.with_children(new_children)


def bound_names(expr: Expr) -> frozenset[str]:
    """All names bound anywhere in ``expr`` (lambda params and letrec names)."""
    names: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Lambda):
            names.add(node.param)
        elif isinstance(node, Letrec):
            names.update(node.binding_names())
        elif isinstance(node, If):
            pass
        stack.extend(node.children())
    return frozenset(names)
