"""Theorem 1 (§5), demonstrated: analyze polymorphic functions at many
monomorphic instances and watch the non-escaping spine prefix stay put.

This is what lets a compiler analyze only the *simplest* instance of each
polymorphic function and reuse the result everywhere.

Run with:  python examples/polymorphic_invariance.py
"""

from repro import analyze, check_invariance, prelude_program
from repro.bench.tables import render_table


def main() -> None:
    for name in ("append", "rev", "map", "take"):
        analysis = analyze(prelude_program([name]))
        print(f"{name} : {analysis.scheme(name)}")
        report = check_invariance(analysis, name)

        rows = []
        for row in report.rows:
            rows.append(
                [
                    str(row.instance),
                    row.param_index,
                    row.param_spines,
                    str(row.result.result),
                    row.non_escaping,
                ]
            )
        print(
            render_table(
                ["instance", "param i", "s_i", "G(f,i)", "s_i - k (invariant)"],
                rows,
            )
        )
        verdict = "holds" if report.holds else "VIOLATED"
        print(f"polymorphic invariance: {verdict}\n")


if __name__ == "__main__":
    main()
