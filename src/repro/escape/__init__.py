"""Escape analysis: lattices, abstract domains, exact and abstract
semantics, the global/local escape tests, and polymorphic invariance."""

from repro.escape.abstract import (
    AbstractEvaluator,
    FixpointTrace,
    fingerprint,
    sample_domain,
)
from repro.escape.analyzer import EscapeAnalysis, SolvedProgram
from repro.escape.domain import (
    BOTTOM,
    ERR,
    AbsFun,
    ClosureFun,
    ErrFun,
    EscapeValue,
    JoinFun,
    PrimFun,
    join_values,
)
from repro.escape.exact import (
    DualInterpreter,
    ObservedEscape,
    Source,
    exact_escape,
    observe_escape,
)
from repro.escape.global_test import run_global_test
from repro.escape.lattice import BeChain, Escapement, NONE_ESCAPES, escapes_bottom, join_all
from repro.escape.local_test import run_local_test
from repro.escape.poly import (
    DEFAULT_FILLERS,
    InvarianceReport,
    InvarianceRow,
    check_invariance,
)
from repro.escape.primitives import abstract_prim, sub_s
from repro.escape.report import analysis_report, global_table
from repro.escape.results import EscapeTestResult
from repro.escape.worst import worst_fun, worst_value

__all__ = [
    "AbstractEvaluator", "FixpointTrace", "fingerprint", "sample_domain",
    "EscapeAnalysis", "SolvedProgram", "BOTTOM", "ERR", "AbsFun",
    "ClosureFun", "ErrFun", "EscapeValue", "JoinFun", "PrimFun",
    "join_values", "DualInterpreter", "ObservedEscape", "Source",
    "exact_escape", "observe_escape", "run_global_test", "BeChain",
    "Escapement", "NONE_ESCAPES", "escapes_bottom", "join_all",
    "run_local_test", "DEFAULT_FILLERS", "InvarianceReport", "InvarianceRow",
    "check_invariance", "abstract_prim", "sub_s", "analysis_report",
    "global_table", "EscapeTestResult", "worst_fun", "worst_value",
]
