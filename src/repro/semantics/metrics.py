"""Storage-event counters for the instrumented runtime.

The paper's optimizations exist to change *where cells live and how they are
reclaimed*; these counters are the observable form of that claim:

* ``heap_allocs``       — cons cells the garbage collector must manage
* ``region_allocs``     — cells placed in a stack or block region instead
* ``reused``            — cells recycled in place by ``dcons`` (§6)
* ``dcons_fallback``    — ``dcons`` calls whose donor was nil (fresh alloc)
* ``stack_reclaimed``   — cells freed by popping a stack region (§A.3.1)
* ``block_reclaimed``   — cells freed by releasing a block region at once
                          (§A.3.3 — no per-cell traversal)
* ``gc_runs/gc_marked/gc_swept`` — mark–sweep activity; ``gc_marked`` is the
  traversal work a block reclamation avoids
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StorageMetrics:
    heap_allocs: int = 0
    region_allocs: int = 0
    reused: int = 0
    dcons_fallback: int = 0
    stack_reclaimed: int = 0
    block_reclaimed: int = 0
    gc_runs: int = 0
    gc_marked: int = 0
    gc_swept: int = 0
    eval_steps: int = 0
    applications: int = 0
    by_region_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total_allocs(self) -> int:
        """Every fresh cons cell, wherever it was placed."""
        return self.heap_allocs + self.region_allocs

    @property
    def cells_constructed(self) -> int:
        """Cons results produced, counting in-place reuse (no fresh cell)."""
        return self.total_allocs + self.reused

    def snapshot(self) -> dict[str, int]:
        snap = {
            "heap_allocs": self.heap_allocs,
            "region_allocs": self.region_allocs,
            "reused": self.reused,
            "dcons_fallback": self.dcons_fallback,
            "stack_reclaimed": self.stack_reclaimed,
            "block_reclaimed": self.block_reclaimed,
            "gc_runs": self.gc_runs,
            "gc_marked": self.gc_marked,
            "gc_swept": self.gc_swept,
            "eval_steps": self.eval_steps,
            "applications": self.applications,
        }
        for kind in sorted(self.by_region_kind):
            snap[f"region_allocs{{kind={kind}}}"] = self.by_region_kind[kind]
        return snap

    def diff(self, earlier: "dict[str, int]") -> dict[str, int]:
        """Counter deltas since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}
