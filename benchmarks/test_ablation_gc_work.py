"""AB2 — ablation: storage behaviour with each optimization toggled.

One workload (partition sort of a 48-element list), five configurations:
baseline, stack allocation only, reuse (PS') only, reuse (PS'') and the
block-allocation producer/consumer variant.  The design claims each
optimization shifts cells out of the GC-managed heap in its own way.
"""

from repro.bench.tables import print_table
from repro.bench.workloads import literal, ps_create_list_program, random_int_list
from repro.lang.prelude import prelude_program
from repro.opt.pipeline import (
    paper_block_allocated,
    paper_ps_double_prime,
    paper_ps_prime,
)
from repro.opt.stack_alloc import stack_allocate_body
from repro.semantics.interp import Interpreter

N = 48
VALUES = random_int_list(N, seed=99)
SOURCE = f"ps {literal(VALUES)}"
GC_THRESHOLD = 64


def profile(program):
    interp = Interpreter(auto_gc=True, gc_threshold=GC_THRESHOLD)
    result = interp.run(program)
    return interp.to_python(result), interp.metrics


def test_ab2_optimization_matrix(benchmark):
    def run_matrix():
        matrix = {}
        matrix["baseline"] = profile(prelude_program(["ps"], SOURCE))
        matrix["stack"] = profile(stack_allocate_body(prelude_program(["ps"], SOURCE)).program)
        matrix["reuse PS'"] = profile(paper_ps_prime(SOURCE).program)
        matrix["reuse PS''"] = profile(paper_ps_double_prime(SOURCE).program)
        return matrix

    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    expected = sorted(VALUES)
    base = matrix["baseline"][1]
    rows = []
    for name, (result, metrics) in matrix.items():
        assert result == expected, name
        rows.append(
            [name, metrics.heap_allocs, metrics.reused, metrics.stack_reclaimed,
             metrics.gc_swept]
        )

    # each optimization reduces GC-managed allocation its own way
    assert matrix["stack"][1].heap_allocs == base.heap_allocs - N
    assert matrix["reuse PS'"][1].heap_allocs < base.heap_allocs
    assert matrix["reuse PS''"][1].heap_allocs < matrix["reuse PS'"][1].heap_allocs
    assert matrix["reuse PS''"][1].reused > matrix["reuse PS'"][1].reused

    print_table(
        ["configuration", "heap cells", "reused", "stack-freed", "gc swept"],
        rows,
        title=f"AB2: partition sort of {N} elements (gc threshold {GC_THRESHOLD})",
    )


def test_ab2_block_variant(benchmark):
    n = N

    def run_pair():
        base = profile(ps_create_list_program(n))
        block = profile(paper_block_allocated(n).program)
        return base, block

    (base_result, base), (block_result, block) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert base_result == block_result == list(range(1, n + 1))
    assert block.block_reclaimed == n
    assert block.heap_allocs == base.heap_allocs - n

    print_table(
        ["configuration", "heap cells", "block-freed", "gc swept"],
        [
            ["producer on heap", base.heap_allocs, 0, base.gc_swept],
            ["producer in block", block.heap_allocs, block.block_reclaimed, block.gc_swept],
        ],
        title=f"AB2: ps (create_list {n})",
    )
