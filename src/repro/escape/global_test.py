"""The global escape test ``G(f, i, env_e)`` (§4.1).

Global analysis answers: over *every possible application* of ``f``, how
much of the ``i``-th argument could escape?  It applies ``f``'s abstract
value to worst-case arguments: the interesting parameter gets
``⟨⟨1,sᵢ⟩, W^{τᵢ}⟩`` (all of it contained, worst functional behaviour), all
others ``⟨⟨0,0⟩, W^{τⱼ}⟩``.
"""

from __future__ import annotations

from repro.escape.abstract import AbsEnv, AbstractEvaluator
from repro.escape.results import EscapeTestResult
from repro.escape.worst import worst_value
from repro.lang.errors import AnalysisError
from repro.obs import tracer as obs
from repro.types.types import Type, fun_args, spines


def run_global_test(
    evaluator: AbstractEvaluator,
    env: AbsEnv,
    function: str,
    fn_type: Type,
    i: int,
    n_args: int | None = None,
) -> EscapeTestResult:
    """Compute ``G(f, i, env_e)`` given the solved abstract environment.

    ``n_args`` defaults to the full arity of ``fn_type`` (the paper's
    "application of f to n arguments").
    """
    arg_types, _ = fun_args(fn_type)
    n = n_args if n_args is not None else len(arg_types)
    if n == 0:
        raise AnalysisError(f"{function} takes no arguments (type {fn_type})")
    if n > len(arg_types):
        raise AnalysisError(
            f"{function} takes at most {len(arg_types)} arguments (type {fn_type})"
        )
    if not 1 <= i <= n:
        raise AnalysisError(f"parameter index {i} out of range 1..{n}")

    fn_value = env.get(function)
    if fn_value is None:
        raise AnalysisError(f"{function!r} is not in the abstract environment")

    result = fn_value
    for j, arg_type in enumerate(arg_types[:n], start=1):
        result = result.apply(worst_value(arg_type, interesting=(j == i)))

    interesting_type = arg_types[i - 1]
    outcome = EscapeTestResult(
        function=function,
        param_index=i,
        param_spines=spines(interesting_type),
        param_type=interesting_type,
        result=evaluator.chain.check(result.be),
        kind="global",
    )
    obs.emit(
        "escape_test",
        kind="global",
        function=function,
        param=i,
        result=str(outcome.result),
    )
    return outcome
