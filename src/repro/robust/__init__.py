"""``repro.robust`` — the hardened analysis engine layer.

* :mod:`repro.robust.errors`  — the retryable/degradable/fatal taxonomy and
  structured :class:`Degradation` records;
* :mod:`repro.robust.budget`  — :class:`AnalysisBudget` (deadline + work
  limits) and its runtime :class:`BudgetMeter`;
* :mod:`repro.robust.faults`  — deterministic fault injection;
* :mod:`repro.robust.resilience` — the retry/backoff, circuit-breaker and
  quarantine policy engine shared by the batch supervisor and the daemon;
* :mod:`repro.robust.chaos`   — seeded chaos schedules and the soak
  harness that asserts the always-answer invariant (imported lazily, like
  ``engine``/``pipeline``, since it drives the high-level consumers);
* :mod:`repro.robust.engine`  — :class:`HardenedAnalysis`, escape queries
  that degrade soundly to the ``W^τ`` worst case instead of failing;
* :mod:`repro.robust.pipeline` — :func:`harden_optimize`, the optimization
  pipeline that always yields a correct program plus a degradation report.

``engine`` and ``pipeline`` are imported lazily: the low-level modules here
are imported *by* the analysis and runtime layers (for budget metering and
fault hooks), so the package root must not pull the high-level wrappers —
which import those layers — back in at import time.
"""

from __future__ import annotations

from repro.robust import faults
from repro.robust.budget import AnalysisBudget, BudgetMeter
from repro.robust.errors import (
    BudgetExceeded,
    BudgetSpent,
    DeadlineExceeded,
    Degradation,
    InjectedFault,
    IterationBudgetExceeded,
    Severity,
    WorkBudgetExceeded,
    classify,
    reason_for,
)
from repro.robust.faults import FaultInjector, FaultPlan, SlowStage, StageFault
from repro.robust.resilience import (
    CircuitBreaker,
    CircuitOpen,
    Outcome,
    Quarantine,
    QuarantineEntry,
    Resilience,
    ResiliencePolicy,
    RetryPolicy,
)

__all__ = [
    "AnalysisBudget", "BudgetMeter", "BudgetExceeded", "BudgetSpent",
    "DeadlineExceeded", "Degradation", "InjectedFault",
    "IterationBudgetExceeded", "Severity", "WorkBudgetExceeded",
    "classify", "reason_for", "faults", "FaultInjector", "FaultPlan",
    "StageFault",
    # lazy:
    "HardenedAnalysis", "RobustResult", "HardenedPipelineResult",
    "harden_optimize",
    "SlowStage", "CircuitBreaker", "CircuitOpen", "Outcome", "Quarantine",
    "QuarantineEntry", "Resilience", "ResiliencePolicy", "RetryPolicy",
]


def __getattr__(name: str):
    if name in ("HardenedAnalysis", "RobustResult"):
        from repro.robust import engine

        return getattr(engine, name)
    if name in ("HardenedPipelineResult", "harden_optimize"):
        from repro.robust import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
