"""AB3 — ablation: memoized abstract application.

§7 worries the analysis may be impractical "due to the computational
complexity of finding fixpoints of higher order functions".  Abstract
evaluation is pure, so applications can be cached; this bench measures the
effect and asserts the results are bit-identical with and without it.
"""

from repro.bench.tables import print_table
from repro.escape.abstract import AbstractEvaluator, fingerprint
from repro.escape.global_test import run_global_test
from repro.escape.lattice import BeChain
from repro.lang.prelude import prelude_program
from repro.types.infer import infer_program
from repro.types.spines import program_spine_bound


def solve(names, memoize):
    program = prelude_program(names)
    infer_program(program)
    evaluator = AbstractEvaluator(
        BeChain(program_spine_bound(program)), memoize=memoize
    )
    env = evaluator.solve_bindings(program.letrec, {})
    return program, evaluator, env


def test_ab3_memoization_speedup_and_equivalence(benchmark):
    rows = []
    for names in (["append"], ["ps"], ["map"], ["ps", "rev", "isort"]):
        baseline_program, baseline_ev, baseline_env = solve(names, memoize=False)
        memo_program, memo_ev, memo_env = solve(names, memoize=True)

        # identical analysis results at every binding (extensional equality)
        for name in baseline_program.binding_names():
            ty = baseline_program.binding(name).expr.ty
            assert fingerprint(baseline_env[name], ty, baseline_ev.chain) == fingerprint(
                memo_env[name], memo_program.binding(name).expr.ty, memo_ev.chain
            )

        speedup = baseline_ev.steps / max(1, memo_ev.steps)
        assert memo_ev.steps <= baseline_ev.steps
        rows.append(
            ["+".join(names), baseline_ev.steps, memo_ev.steps, f"{speedup:.1f}x"]
        )

    # the win grows with knot size / recursion depth
    assert rows[1][1] / rows[1][2] > rows[0][1] / rows[0][2]

    print_table(
        ["knot", "steps (no memo)", "steps (memo)", "speedup"],
        rows,
        title="AB3: memoized abstract application",
    )

    benchmark(solve, ["ps"], True)


def test_ab3_global_results_unchanged(benchmark):
    def query(memoize):
        program, evaluator, env = solve(["ps"], memoize)
        return run_global_test(
            evaluator, env, "ps", program.binding("ps").expr.ty, 1
        ).result

    assert str(query(False)) == str(query(True)) == "<1,0>"
    benchmark(query, True)
