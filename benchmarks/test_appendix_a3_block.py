"""A3c — §A.3.3: block allocation / reclamation for PS (create_list i).

The produced spine cannot live in PS's activation (it exists before the
activation does); it goes into a block — the paper's "local heap" — freed
all at once when PS returns.  Shape to reproduce: every produced spine cell
is reclaimed without the GC sweeping it individually, and the GC has fewer
cells to manage.
"""

from repro.bench.tables import print_table
from repro.bench.workloads import ps_create_list_program
from repro.opt.pipeline import paper_block_allocated
from repro.semantics.interp import Interpreter, run_program


def test_a3c_block_reclamation(benchmark):
    n = 40
    base_result, base = run_program(ps_create_list_program(n))
    optimized = paper_block_allocated(n)
    result, metrics = benchmark(run_program, optimized.program)

    assert result == base_result == list(range(1, n + 1))
    assert metrics.block_reclaimed == n  # the whole block, at once
    assert metrics.region_allocs == n
    assert metrics.heap_allocs == base.heap_allocs - n

    print_table(
        ["variant", "heap cells", "block cells", "block-freed at once"],
        [
            [f"ps (create_list {n})", base.heap_allocs, 0, 0],
            ["block-allocated", metrics.heap_allocs, metrics.region_allocs,
             metrics.block_reclaimed],
        ],
        title="§A.3.3 block allocation",
    )


def test_a3c_gc_sweep_work_avoided(benchmark):
    # With the collector running, the block's cells are never swept
    # individually — the free happens with no traversal of those cells.
    n = 60
    threshold = 64

    def profile(program):
        interp = Interpreter(auto_gc=True, gc_threshold=threshold)
        interp.run(program)
        return interp.metrics

    base = profile(ps_create_list_program(n))
    optimized = paper_block_allocated(n)
    metrics = benchmark(profile, optimized.program)

    assert metrics.block_reclaimed == n
    assert metrics.heap_allocs < base.heap_allocs
    # fewer GC-managed allocations => no more sweep work than baseline
    assert metrics.gc_swept <= base.gc_swept

    print_table(
        ["variant", "heap allocs", "gc swept", "gc mark work", "block-freed"],
        [
            ["baseline", base.heap_allocs, base.gc_swept, base.gc_marked, 0],
            ["block", metrics.heap_allocs, metrics.gc_swept, metrics.gc_marked,
             metrics.block_reclaimed],
        ],
        title=f"GC work with auto-GC (threshold {threshold})",
    )


def test_a3c_sweep_sizes(benchmark):
    rows = []
    for n in (20, 40, 80):
        optimized = paper_block_allocated(n)
        result, metrics = run_program(optimized.program)
        assert result == list(range(1, n + 1))
        assert metrics.block_reclaimed == n
        rows.append([n, metrics.heap_allocs, metrics.block_reclaimed])

    print_table(
        ["n", "heap cells", "block-freed"],
        rows,
        title="block reclamation across producer sizes",
    )

    benchmark(run_program, paper_block_allocated(40).program)
