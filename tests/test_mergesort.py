"""Mergesort: a reuse-hostile workload, contrasted with partition sort.

`msort` returns its argument unchanged for singleton lists and `merge`
returns a suffix of either input when the other runs out — so *every* spine
escapes, the analysis refuses in-place reuse, and the dynamic observer
confirms the escapes are real.  This is the analysis earning its keep in
the negative direction: partition sort is optimizable, mergesort is not.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workloads import literal
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import exact_escape, observe_escape
from repro.lang.errors import OptimizationError
from repro.lang.prelude import prelude_program
from repro.opt.reuse import make_reuse_specialization
from repro.semantics.interp import Interpreter

int_lists = st.lists(st.integers(min_value=-50, max_value=50), max_size=10)


def run(names, expr):
    interp = Interpreter()
    return interp.to_python(interp.eval_in(prelude_program(names), expr))


class TestCorrectness:
    @pytest.mark.parametrize(
        "values",
        [[], [1], [2, 1], [5, 2, 7, 1, 3, 4], [1, 1, 1], [3, 2, 1, 0, -1]],
    )
    def test_msort_sorts(self, values):
        assert run(["msort"], f"msort {literal(values)}") == sorted(values)

    def test_merge_merges(self):
        assert run(["merge"], "merge [1, 3, 5] [2, 4]") == [1, 2, 3, 4, 5]

    def test_halve_alternates(self):
        assert run(["halve"], "halve [1, 2, 3, 4, 5]") == ([1, 3, 5], [2, 4])

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists)
    def test_msort_equals_sorted(self, xs):
        assert run(["msort"], f"msort {literal(xs)}") == sorted(xs)

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists, ys=int_lists)
    def test_merge_of_sorted_inputs(self, xs, ys):
        xs, ys = sorted(xs), sorted(ys)
        assert run(["merge"], f"merge {literal(xs)} {literal(ys)}") == sorted(xs + ys)


class TestEscapeBehaviour:
    def test_every_spine_escapes(self):
        analysis = EscapeAnalysis(prelude_program(["msort"]))
        for name, arity in (("merge", 2), ("halve", 1), ("msort", 1)):
            for result in analysis.global_all(name):
                assert str(result.result) == "<1,1>"
                assert result.non_escaping_spines == 0

    def test_contrast_with_partition_sort(self):
        msort = EscapeAnalysis(prelude_program(["msort"])).global_test("msort", 1)
        ps = EscapeAnalysis(prelude_program(["ps"])).global_test("ps", 1)
        assert msort.non_escaping_spines == 0  # reuse-hostile
        assert ps.non_escaping_spines == 1  # reuse-friendly

    def test_reuse_refused_for_msort(self):
        program = prelude_program(["msort"])
        with pytest.raises(OptimizationError):
            make_reuse_specialization(program, "msort", 1)
        with pytest.raises(OptimizationError):
            make_reuse_specialization(program, "merge", 1)

    def test_escape_is_real_not_imprecision(self):
        # the dynamic observer sees the singleton case return the argument
        program = prelude_program(["msort"])
        observed = observe_escape(program, "msort", [[7]], 1)
        assert observed.escaping_spines == 1
        exact = exact_escape(program, "msort", [[7]], 1)
        assert exact.escaping_spines == 1

    def test_merge_suffix_sharing_observed(self):
        program = prelude_program(["merge"])
        observed = observe_escape(program, "merge", [[1, 9], [2, 3]], 1)
        assert observed.escaped  # x's tail cell survives into the result

    @settings(max_examples=20, deadline=None)
    @given(xs=int_lists)
    def test_abstract_dominates_observed(self, xs):
        program = prelude_program(["msort"])
        observed = observe_escape(program, "msort", [xs], 1)
        # abstract <1,1> dominates any observation
        assert observed.escaping_spines <= 1
