"""Hand-written lexer for nml.

The surface syntax follows the paper's examples (Appendix A)::

    PS x = if (null x) then nil
           else APPEND (PS ...) (cons (car x) nil);

plus a few conveniences: ``--`` line comments, ``(* ... *)`` block comments
(nestable, ML style), list literals ``[1, 2, 3]``, and the infix operators
``+ - * / == <> < <= > >= ::``.
"""

from __future__ import annotations

from repro.lang.errors import LexError, SourceSpan
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "==": TokenKind.EQEQ,
    "<>": TokenKind.NEQ,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "::": TokenKind.COLONCOLON,
    "->": TokenKind.ARROW,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    ".": TokenKind.DOT,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_'"


class Lexer:
    """Converts source text into a list of tokens.

    The lexer is a straightforward single-pass scanner; it tracks line and
    column so every token carries an accurate :class:`SourceSpan`.
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor ------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _here(self) -> tuple[int, int]:
        return self.line, self.column

    def _span_from(self, start: tuple[int, int]) -> SourceSpan:
        return SourceSpan(start[0], start[1], self.line, self.column)

    # -- skipping --------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (line ``--`` and nested ``(* *)``)."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "(" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._here()
        self._advance()  # (
        self._advance()  # *
        depth = 1
        while depth > 0:
            if self.pos >= len(self.source):
                raise LexError("unterminated block comment", SourceSpan.point(*start))
            if self._peek() == "(" and self._peek(1) == "*":
                self._advance()
                self._advance()
                depth += 1
            elif self._peek() == "*" and self._peek(1) == ")":
                self._advance()
                self._advance()
                depth -= 1
            else:
                self._advance()

    # -- scanning --------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_trivia()
        start = self._here()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", SourceSpan.point(*start))

        ch = self._peek()
        if ch.isdigit():
            return self._scan_int(start)
        if _is_ident_start(ch):
            return self._scan_ident(start)

        two = self._peek() + self._peek(1)
        if two in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[two], two, self._span_from(start))
        if ch in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[ch], ch, self._span_from(start))

        raise LexError(f"unexpected character {ch!r}", SourceSpan.point(*start))

    def _scan_int(self, start: tuple[int, int]) -> Token:
        text = []
        while self.pos < len(self.source) and self._peek().isdigit():
            text.append(self._advance())
        literal = "".join(text)
        return Token(TokenKind.INT, literal, self._span_from(start), value=int(literal))

    def _scan_ident(self, start: tuple[int, int]) -> Token:
        text = []
        while self.pos < len(self.source) and _is_ident_char(self._peek()):
            text.append(self._advance())
        name = "".join(text)
        span = self._span_from(start)
        kind = KEYWORDS.get(name)
        if kind is not None:
            return Token(kind, name, span)
        return Token(TokenKind.IDENT, name, span, value=name)

    def tokenize(self) -> list[Token]:
        """Scan the entire input, ending with a single EOF token."""
        tokens: list[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, raising :class:`LexError` on malformed input."""
    return Lexer(source).tokenize()
