"""The nml language front end: lexer, parser, AST, resolver, pretty printer,
and a prelude of standard list functions."""

from repro.lang.ast import (
    App,
    Binding,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
    apply_n,
    cons_list,
    count_nodes,
    free_vars,
    lambda_n,
    transform,
    uncurry_app,
    uncurry_lambda,
    walk,
)
from repro.lang.errors import (
    AnalysisError,
    EvalError,
    LexError,
    NmlError,
    OptimizationError,
    ParseError,
    ResolveError,
    SourceSpan,
    TypeInferenceError,
    UseAfterFreeError,
)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import (
    PRELUDE_DEFS,
    paper_map_pair,
    paper_partition_sort,
    prelude_program,
    prelude_source,
)
from repro.lang.pretty import pretty, pretty_program

__all__ = [
    "App", "Binding", "BoolLit", "Expr", "If", "IntLit", "Lambda", "Letrec",
    "NilLit", "Prim", "Program", "Var", "apply_n", "cons_list", "count_nodes",
    "free_vars", "lambda_n", "transform", "uncurry_app", "uncurry_lambda",
    "walk", "AnalysisError", "EvalError", "LexError", "NmlError",
    "OptimizationError", "ParseError", "ResolveError", "SourceSpan",
    "TypeInferenceError", "UseAfterFreeError", "tokenize", "parse_expr",
    "parse_program", "PRELUDE_DEFS", "paper_map_pair", "paper_partition_sort",
    "prelude_program", "prelude_source", "pretty", "pretty_program",
]
