"""The analysis front door: :class:`EscapeAnalysis`.

Ties the pieces together for one program:

1. type inference (with optional per-query monotype *pins*, §5),
2. the ``B_e`` chain sized by the program's spine bound ``d``,
3. the abstract evaluator and its letrec fixpoint,
4. the global (§4.1) and local (§4.2) escape tests.

Because the ``car^s`` annotations — and therefore the abstract values of the
functions — depend on the monotype instance being analyzed, every query
re-infers the program with the instance pinned and re-solves the fixpoint.
Programs in this domain are small; re-solving keeps annotations, chain bound
and environment mutually consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.abstract import AbsEnv, AbstractEvaluator, FixpointTrace
from repro.escape.domain import EscapeValue
from repro.escape.global_test import run_global_test
from repro.escape.lattice import BeChain
from repro.escape.local_test import run_local_test
from repro.escape.results import EscapeTestResult
from repro.lang.ast import Expr, Letrec, Program, Var, uncurry_app
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_expr
from repro.types.infer import InferenceResult, infer_program
from repro.types.spines import program_spine_bound
from repro.types.types import Type, TypeScheme, arity, fun_args

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.robust.budget import BudgetMeter


@dataclass
class SolvedProgram:
    """One solved analysis instance: typed program + converged environment."""

    inference: InferenceResult
    evaluator: AbstractEvaluator
    env: AbsEnv
    d: int

    @property
    def traces(self) -> list[FixpointTrace]:
        return self.evaluator.traces

    def trace(self, name: str) -> FixpointTrace:
        for t in self.evaluator.traces:
            if t.name == name:
                return t
        raise AnalysisError(f"no fixpoint trace for {name!r}")


class EscapeAnalysis:
    """Escape analysis of one nml program.

    >>> from repro.lang import paper_partition_sort
    >>> analysis = EscapeAnalysis(paper_partition_sort())
    >>> str(analysis.global_test("append", 1).result)
    '<1,0>'
    """

    def __init__(
        self,
        program: Program,
        d: int | None = None,
        max_iterations: int | None = None,
        meter: "BudgetMeter | None" = None,
    ):
        self.program = program
        self.d_override = d
        self.max_iterations = max_iterations
        #: Optional budget meter from the hardened engine
        #: (:mod:`repro.robust`): ticked on every abstract-evaluation step
        #: and fixpoint iteration of every solve this analysis performs.
        self.meter = meter
        # Base inference: exposes the (possibly polymorphic) schemes.
        self._base_inference = infer_program(program)
        #: The most recent solve — exposes fixpoint traces to callers.
        self.last_solved: SolvedProgram | None = None

    # -- schemes -----------------------------------------------------------

    @property
    def schemes(self) -> dict[str, TypeScheme]:
        return self._base_inference.schemes

    def scheme(self, name: str) -> TypeScheme:
        return self._base_inference.scheme(name)

    def function_names(self) -> tuple[str, ...]:
        return self.program.binding_names()

    # -- solving -------------------------------------------------------------

    def solve(self, pins: dict[str, Type] | None = None) -> SolvedProgram:
        """Infer (with ``pins``) and run the letrec fixpoint for the
        program's own letrec."""
        return self._solve_letrec(self.program, pins)

    def _solve_letrec(
        self, program: Program, pins: dict[str, Type] | None
    ) -> SolvedProgram:
        if self.meter is not None:
            self.meter.check_deadline()
        inference = infer_program(program, pins=pins)
        d = self.d_override if self.d_override is not None else program_spine_bound(program)
        evaluator = AbstractEvaluator(
            BeChain(d), max_iterations=self.max_iterations, meter=self.meter
        )
        env = evaluator.solve_bindings(program.letrec, {})
        solved = SolvedProgram(inference=inference, evaluator=evaluator, env=env, d=d)
        self.last_solved = solved
        return solved

    def _binding_type(self, solved: SolvedProgram, name: str) -> Type:
        try:
            binding = self.program.binding(name)
        except KeyError:
            raise AnalysisError(f"no top-level binding named {name!r}") from None
        assert binding.expr.ty is not None
        return binding.expr.ty

    # -- global test (§4.1) ---------------------------------------------------

    def global_test(
        self,
        function: str,
        i: int,
        instance: Type | None = None,
        n_args: int | None = None,
    ) -> EscapeTestResult:
        """``G(function, i)`` — optionally at a pinned monotype instance."""
        pins = {function: instance} if instance is not None else None
        solved = self.solve(pins)
        fn_type = self._binding_type(solved, function)
        return run_global_test(
            solved.evaluator, solved.env, function, fn_type, i, n_args=n_args
        )

    def global_all(
        self,
        function: str,
        instance: Type | None = None,
        n_args: int | None = None,
    ) -> list[EscapeTestResult]:
        """``G(function, i)`` for every parameter position ``i``.

        ``n_args`` defaults to the full arity of the (instance) type; pass
        the syntactic arity to treat deeper arrows contributed by a
        function-typed instance as part of the *result*, not as parameters.
        """
        pins = {function: instance} if instance is not None else None
        solved = self.solve(pins)
        fn_type = self._binding_type(solved, function)
        n = n_args if n_args is not None else arity(fn_type)
        if n == 0:
            raise AnalysisError(f"{function} takes no arguments (type {fn_type})")
        return [
            run_global_test(solved.evaluator, solved.env, function, fn_type, i, n_args=n)
            for i in range(1, n + 1)
        ]

    def syntactic_arity(self, function: str) -> int:
        """The number of top-level lambdas of a binding — the paper's ``n``
        for "a function of n arguments"."""
        from repro.lang.ast import uncurry_lambda

        try:
            binding = self.program.binding(function)
        except KeyError:
            raise AnalysisError(f"no top-level binding named {function!r}") from None
        return len(uncurry_lambda(binding.expr)[0])

    # -- local test (§4.2) -----------------------------------------------------

    def local_test(self, call: "Expr | str", i: int | None = None):
        """``L(f, i, e₁…eₙ)`` for a call expression over this program's
        top-level functions.

        ``call`` may be source text (e.g. ``"map pair [[1, 2]]"``) or an
        AST.  Returns the result for parameter ``i``, or a list over all
        parameters when ``i`` is None.
        """
        expr = parse_expr(call) if isinstance(call, str) else call
        head, args = uncurry_app(expr)
        if not args:
            raise AnalysisError("local test target must be an application")

        variant = Program(
            letrec=Letrec(bindings=self.program.bindings, body=expr),
            source=self.program.source,
        )

        # First inference discovers the instance the call uses; the second
        # pins the knot to it so the abstract values' car^s annotations
        # match the call.
        if isinstance(head, Var) and head.name in self.program.binding_names():
            infer_program(variant)
            assert head.ty is not None
            solved = self._solve_letrec(variant, pins={head.name: head.ty})
            fn_value = solved.env[head.name]
            label = head.name
        else:
            solved = self._solve_letrec(variant, pins=None)
            fn_value = solved.evaluator.eval(head, solved.env)
            label = "<expr>"

        arg_values: list[EscapeValue] = []
        arg_types: list[Type] = []
        for arg in args:
            arg_values.append(solved.evaluator.eval(arg, solved.env))
            assert arg.ty is not None
            arg_types.append(arg.ty)

        if i is not None:
            return run_local_test(
                solved.evaluator, fn_value, label, arg_values, arg_types, i
            )
        return [
            run_local_test(solved.evaluator, fn_value, label, arg_values, arg_types, j)
            for j in range(1, len(args) + 1)
        ]

    # -- convenience -------------------------------------------------------------

    def escaping_spines(self, function: str) -> list[int]:
        """``esc_i`` for every parameter — the input to the sharing analysis
        (Theorem 2)."""
        return [r.escaping_spines for r in self.global_all(function)]

    def arg_spine_counts(self, function: str) -> list[int]:
        """``d_i`` for every parameter."""
        solved = self.solve(None)
        fn_type = self._binding_type(solved, function)
        from repro.types.types import spines as spine_count

        return [spine_count(t) for t in fun_args(fn_type)[0]]
