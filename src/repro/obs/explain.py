"""``repro explain`` — the causal chain behind one binding's result.

Given a trace (a single-process export, a merged multi-shard trace, or a
flight-recorder dump) and a binding name, :func:`explain_binding`
reconstructs — from the events alone, no re-analysis — the derivation
the paper frames every result as:

1. **resolution** — how the binding's SCC was obtained: memory-cache
   hit, store hit (with digest), or a fresh fixpoint solve;
2. **lowering** — the IR block it was lowered to (instruction count,
   definition span);
3. **worklist activity** — pushes/pops of the binding and the transfer
   evaluations charged to its block, hottest instructions first;
4. **fixpoint ascent** — the per-iteration lattice values
   (``f⁽¹⁾ → f⁽²⁾ → ...``), convergence/widening, and the **final
   fingerprint** (the last value in the ascent);
5. **degradations** — every budget fallback toward W^τ that occurred
   in the binding's trace, with reason and stage;
6. **decisions** — the optimization decisions taken for the binding
   (kind, parameter, justification) and the transforms applied/skipped;
7. **audit** — the checker rules that fired naming the binding, with
   severity and source span.

The same structure renders as human-readable text
(:func:`format_explanation`) and as schema-stable JSON
(:meth:`Explanation.to_json` — fixed key set, deterministic ordering),
which is what the CI ``explain-smoke`` job asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .profile import iteration_table

#: Every key ``Explanation.to_json`` emits, in order — the stable schema.
EXPLANATION_KEYS = (
    "binding",
    "found",
    "trace_ids",
    "resolution",
    "lowering",
    "worklist",
    "fixpoint",
    "degradations",
    "decisions",
    "transforms",
    "audit",
)


@dataclass
class Explanation:
    """The reconstructed causal chain for one binding."""

    binding: str
    found: bool = False
    #: Trace ids of the events that mention the binding (usually one).
    trace_ids: list[str] = field(default_factory=list)
    #: How the binding's SCC was resolved, in event order: each entry has
    #: ``via`` ("memory" | "store" | "solve"), plus digest/iterations.
    resolution: list[dict] = field(default_factory=list)
    #: IR lowering: instruction count and definition span, when lowered.
    lowering: dict | None = None
    #: Worklist pushes/pops of the binding and its block's transfer evals.
    worklist: dict = field(default_factory=dict)
    #: The fixpoint ascent: values, converged/widened, final fingerprint.
    fixpoint: dict | None = None
    #: Budget degradations in the binding's trace (reason, stage).
    degradations: list[dict] = field(default_factory=list)
    #: Optimization decisions naming the binding.
    decisions: list[dict] = field(default_factory=list)
    #: Transforms applied/skipped (program-wide; the plan is per-program).
    transforms: list[dict] = field(default_factory=list)
    #: Checker rules fired naming the binding.
    audit: list[dict] = field(default_factory=list)

    def to_json(self) -> dict:
        """The schema-stable JSON form: every key in
        :data:`EXPLANATION_KEYS`, always present, deterministic order."""
        return {
            "binding": self.binding,
            "found": self.found,
            "trace_ids": self.trace_ids,
            "resolution": self.resolution,
            "lowering": self.lowering,
            "worklist": self.worklist,
            "fixpoint": self.fixpoint,
            "degradations": self.degradations,
            "decisions": self.decisions,
            "transforms": self.transforms,
            "audit": self.audit,
        }


def _names_match(event: dict, binding: str) -> bool:
    names = event.get("names")
    return isinstance(names, (list, tuple)) and binding in names


def _mentions(text, binding: str) -> bool:
    return isinstance(text, str) and binding in text


def explain_binding(events: Iterable[dict], binding: str) -> Explanation:
    """Reconstruct the causal chain for ``binding`` from a trace alone."""
    events = list(events)
    out = Explanation(binding=binding)

    table = iteration_table(events)
    pushes = pops = 0
    instr_costs: dict[tuple, dict] = {}
    trace_ids: list[str] = []

    def note_trace(event: dict) -> None:
        trace_id = event.get("trace_id")
        if trace_id and trace_id not in trace_ids:
            trace_ids.append(trace_id)

    for event in events:
        etype = event.get("type")
        if etype in ("store_hit", "store_miss") and _names_match(event, binding):
            out.found = True
            note_trace(event)
            out.resolution.append(
                {
                    "via": "store",
                    "outcome": "hit" if etype == "store_hit" else "miss",
                    "digest": event.get("digest"),
                }
            )
        elif etype == "scc_solve_finish" and _names_match(event, binding):
            out.found = True
            note_trace(event)
            if event.get("cache") == "hit":
                # A store hit directly before this finish means the hit
                # came from disk; otherwise it was the in-memory tier.
                prior = out.resolution[-1] if out.resolution else None
                if not (prior and prior["via"] == "store" and prior["outcome"] == "hit"):
                    out.resolution.append({"via": "memory", "outcome": "hit"})
            else:
                out.resolution.append(
                    {"via": "solve", "iterations": event.get("iterations", 0)}
                )
        elif etype == "ir_lower" and event.get("name") == binding:
            out.found = True
            note_trace(event)
            out.lowering = {
                "instructions": event.get("instructions"),
                "span": event.get("span"),
            }
        elif etype == "worklist_push" and event.get("name") == binding:
            out.found = True
            note_trace(event)
            pushes += 1
        elif etype == "worklist_pop" and event.get("name") == binding:
            out.found = True
            note_trace(event)
            pops += 1
        elif etype == "transfer_eval" and event.get("block") == binding:
            out.found = True
            note_trace(event)
            key = (event["block"], event["index"])
            cost = instr_costs.setdefault(
                key, {"index": event["index"], "op": event.get("op"), "count": 0}
            )
            cost["count"] += event.get("count", 0)
        elif etype == "degradation":
            note_trace(event)
            if event.get("function") == binding:
                out.found = True
            out.degradations.append(
                {
                    "reason": event.get("reason"),
                    "stage": event.get("stage"),
                    "function": event.get("function"),
                    "trace_id": event.get("trace_id"),
                }
            )
        elif etype == "decision" and event.get("function") == binding:
            out.found = True
            note_trace(event)
            out.decisions.append(
                {
                    "kind": event.get("kind"),
                    "param": event.get("param"),
                    "justification": event.get("justification"),
                }
            )
        elif etype in ("transform_applied", "transform_skipped"):
            detail = event.get("detail") or event.get("reason") or ""
            entry = {
                "kind": event.get("kind"),
                "outcome": "applied" if etype == "transform_applied" else "skipped",
                "detail": detail,
            }
            if _mentions(detail, binding):
                out.found = True
                note_trace(event)
                out.transforms.append(entry)
        elif etype == "check_rule_fired":
            message = event.get("message", "")
            context = event.get("context", "")
            if _mentions(message, binding) or _mentions(context, binding):
                out.found = True
                note_trace(event)
                out.audit.append(
                    {
                        "rule": event.get("rule"),
                        "severity": event.get("severity"),
                        "pass": event.get("pass"),
                        "message": message,
                        "span": event.get("span"),
                    }
                )

    out.worklist = {
        "pushes": pushes,
        "pops": pops,
        "transfer_evals": sum(c["count"] for c in instr_costs.values()),
        "instructions": sorted(
            instr_costs.values(), key=lambda c: (-c["count"], c["index"])
        ),
    }

    row = table.get(binding)
    if row is not None:
        out.found = True
        out.fixpoint = {
            "values": list(row.values),
            "iterations": row.iterations,
            "converged": row.converged,
            "widened": row.widened,
            "final": row.values[-1] if row.values else None,
        }

    out.trace_ids = trace_ids
    return out


def format_explanation(explanation: Explanation) -> str:
    """The human-readable rendering of one causal chain."""
    b = explanation.binding
    lines = [f"=== explain: {b} ==="]
    if not explanation.found:
        lines.append(f"no events mention binding {b!r} in this trace")
        return "\n".join(lines) + "\n"

    if explanation.trace_ids:
        lines.append("trace(s): " + ", ".join(explanation.trace_ids))

    if explanation.resolution:
        lines.append("resolution:")
        for step in explanation.resolution:
            if step["via"] == "store":
                digest = step.get("digest") or "?"
                lines.append(f"  store {step['outcome']}: {str(digest)[:16]}")
            elif step["via"] == "memory":
                lines.append("  memory-cache hit (no re-solve)")
            else:
                lines.append(
                    f"  fresh solve: {step.get('iterations', 0)} fixpoint "
                    "iteration(s)"
                )

    if explanation.lowering:
        span = explanation.lowering.get("span")
        at = f" at {span}" if span and span != "0:0-0" else ""
        lines.append(
            f"lowered to IR: {explanation.lowering['instructions']} "
            f"instruction(s){at}"
        )

    wl = explanation.worklist
    if wl.get("pops") or wl.get("transfer_evals"):
        lines.append(
            f"worklist: {wl['pushes']} push(es), {wl['pops']} pop(s), "
            f"{wl['transfer_evals']} transfer eval(s)"
        )
        for cost in wl["instructions"][:5]:
            lines.append(f"  %{cost['index']} {cost['op']:<7} ×{cost['count']}")

    if explanation.fixpoint:
        fp = explanation.fixpoint
        status = "widened" if fp["widened"] else (
            "converged" if fp["converged"] else "incomplete"
        )
        lines.append(
            f"fixpoint ascent ({fp['iterations']} iteration(s), {status}):"
        )
        lines.append("  " + " → ".join(fp["values"]))
        lines.append(f"final fingerprint: {fp['final']}")

    if explanation.degradations:
        lines.append("degradations in this trace:")
        for entry in explanation.degradations:
            who = f" [{entry['function']}]" if entry.get("function") else ""
            lines.append(f"  {entry['reason']} (stage: {entry['stage']}){who}")

    if explanation.decisions:
        lines.append("optimization decisions:")
        for decision in explanation.decisions:
            why = decision.get("justification")
            suffix = f" — {why}" if why else ""
            lines.append(
                f"  {decision['kind']} on param {decision['param']}{suffix}"
            )

    if explanation.transforms:
        lines.append("transforms:")
        for transform in explanation.transforms:
            lines.append(
                f"  {transform['kind']} {transform['outcome']}: "
                f"{transform['detail']}"
            )

    if explanation.audit:
        lines.append("audit rules fired:")
        for finding in explanation.audit:
            span = finding.get("span")
            at = f" at {span}" if span and span != "0:0-0" else ""
            lines.append(
                f"  {finding['rule']} [{finding['severity']}]{at}: "
                f"{finding['message']}"
            )

    return "\n".join(lines) + "\n"


def known_bindings(events: Iterable[dict]) -> list[str]:
    """Binding names a trace can explain (for the CLI's error message)."""
    names: set[str] = set()
    for event in events:
        etype = event.get("type")
        if etype in ("ir_lower", "worklist_push", "worklist_pop"):
            name = event.get("name")
            if isinstance(name, str) and not name.startswith("<"):
                names.add(name)
        elif etype == "fixpoint_iteration":
            values = event.get("values")
            if isinstance(values, dict):
                names.update(values)
        elif etype in ("scc_solve_finish", "scc_solve_start"):
            for name in event.get("names") or ():
                if isinstance(name, str):
                    names.add(name)
    return sorted(names)
