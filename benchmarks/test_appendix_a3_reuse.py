"""A3b — §A.3.2: in-place reuse (PS', PS'', REV').

Shape to reproduce: the transformed programs compute the same results while
shifting allocation from fresh GC-managed cells to in-place reuse; for the
naive reverse the effect is asymptotic (Θ(n²) fresh cells become Θ(n)).
"""

from repro.bench.tables import print_table
from repro.bench.workloads import literal, random_int_list, reference_ps, reference_rev
from repro.lang.prelude import prelude_program
from repro.opt.pipeline import paper_ps_double_prime, paper_ps_prime, paper_rev_prime
from repro.semantics.interp import run_program


def test_a3b_ps_variants_paper_input(benchmark):
    source = "ps [5, 2, 7, 1, 3, 4]"
    base_result, base = run_program(prelude_program(["ps"], source))

    prime_result, prime = run_program(paper_ps_prime(source).program)
    double = paper_ps_double_prime(source)
    double_result, double_metrics = benchmark(run_program, double.program)

    assert base_result == prime_result == double_result == [1, 2, 3, 4, 5, 7]
    # monotone improvement: PS'' reuses more and allocates less than PS',
    # which improves on PS.
    assert double_metrics.reused > prime.reused > base.reused == 0
    assert double_metrics.heap_allocs < prime.heap_allocs < base.heap_allocs
    # conservation: every constructed cell is either fresh or reused
    assert double_metrics.cells_constructed == base.heap_allocs

    print_table(
        ["variant", "heap cells", "reused", "constructed"],
        [
            ["PS", base.heap_allocs, base.reused, base.cells_constructed],
            ["PS'", prime.heap_allocs, prime.reused, prime.cells_constructed],
            ["PS''", double_metrics.heap_allocs, double_metrics.reused,
             double_metrics.cells_constructed],
        ],
        title="§A.3.2 in-place reuse on the paper input",
    )


def test_a3b_ps_sweep(benchmark):
    rows = []
    for n in (10, 20, 40, 80):
        values = random_int_list(n, seed=n)
        source = f"ps {literal(values)}"
        expected = reference_ps(values)

        base_result, base = run_program(prelude_program(["ps"], source))
        double_result, double = run_program(paper_ps_double_prime(source).program)
        assert base_result == double_result == expected
        assert double.heap_allocs < base.heap_allocs
        rows.append(
            [n, base.heap_allocs, double.heap_allocs, double.reused,
             f"{100 * double.reused / base.heap_allocs:.0f}%"]
        )

    print_table(
        ["n", "PS heap cells", "PS'' heap cells", "PS'' reused", "reuse share"],
        rows,
        title="PS vs PS'' across input sizes",
    )

    values = random_int_list(40, seed=1)
    program = paper_ps_double_prime(f"ps {literal(values)}").program
    benchmark(run_program, program)


def test_a3b_rev_prime_asymptotics(benchmark):
    rows = []
    for n in (8, 16, 32, 64):
        values = list(range(n))
        source = f"rev {literal(values)}"
        _, base = run_program(prelude_program(["rev"], source))
        result, opt = run_program(paper_rev_prime(source).program)
        assert result == reference_rev(values)
        # REV is quadratic in fresh cells; REV' is linear.
        assert base.heap_allocs >= n * (n - 1) // 2
        assert opt.heap_allocs <= 2 * n
        rows.append([n, base.heap_allocs, opt.heap_allocs, opt.reused])

    # the gap widens superlinearly — the crossover shape of the claim
    assert rows[-1][1] / rows[-1][2] > rows[0][1] / rows[0][2]

    print_table(
        ["n", "REV heap cells (Θ(n²))", "REV' heap cells (Θ(n))", "REV' reused"],
        rows,
        title="§A.3.2 REV vs REV'",
    )

    source = f"rev {literal(list(range(32)))}"
    program = paper_rev_prime(source).program
    benchmark(run_program, program)
