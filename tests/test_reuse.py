"""In-place reuse transformation tests: structure of the specializations,
differential correctness, and storage improvements."""

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.lang.errors import OptimizationError
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import prelude_program
from repro.lang.ast import uncurry_lambda
from repro.opt.reuse import (
    make_reuse_specialization,
    redirect_body_calls,
    redirect_calls,
    select_reuse_sites,
)
from repro.semantics.interp import run_program


class TestAppendPrime:
    """The paper's APPEND' (§A.3.2)."""

    def test_structure_matches_paper(self):
        program = prelude_program(["append"])
        result = make_reuse_specialization(program, "append", 1, new_name="append2")
        produced = result.program.binding("append2").expr
        expected = parse_expr(
            "lambda x y. if (null x) then y"
            " else dcons x (car x) (append2 (cdr x) y)"
        )
        assert produced == expected
        assert result.rewritten_sites == 1

    def test_original_binding_untouched(self):
        program = prelude_program(["append"])
        result = make_reuse_specialization(program, "append", 1)
        assert result.program.binding("append") == program.binding("append")

    def test_differential_correctness(self):
        program = prelude_program(["append"], "append [1, 2] [3, 4]")
        result = make_reuse_specialization(program, "append", 1)
        optimized = redirect_body_calls(result.program, "append", result.new_name)
        assert run_program(optimized)[0] == run_program(program)[0] == [1, 2, 3, 4]

    def test_reuses_first_spine(self):
        program = prelude_program(["append"], "append [1, 2, 3] [4]")
        result = make_reuse_specialization(program, "append", 1)
        optimized = redirect_body_calls(result.program, "append", result.new_name)
        _, metrics = run_program(optimized)
        assert metrics.reused == 3  # every cell of the first spine
        _, baseline = run_program(program)
        assert baseline.reused == 0
        assert metrics.heap_allocs == baseline.heap_allocs - 3


class TestPreconditions:
    def test_escaping_parameter_rejected(self):
        program = prelude_program(["append"])
        with pytest.raises(OptimizationError):
            make_reuse_specialization(program, "append", 2)  # y escapes fully

    def test_non_list_parameter_rejected(self):
        program = prelude_program(["take"])
        with pytest.raises(OptimizationError):
            make_reuse_specialization(program, "take", 1)  # n is an int

    def test_force_overrides(self):
        program = prelude_program(["take"])
        result = make_reuse_specialization(program, "take", 2, force=True)
        assert result.new_name in result.program.binding_names()

    def test_name_collision_rejected(self):
        program = prelude_program(["append"])
        with pytest.raises(OptimizationError):
            make_reuse_specialization(program, "append", 1, new_name="append")

    def test_no_eligible_site_rejected(self):
        # length has no cons at all
        program = prelude_program(["length"], "length [1]")
        with pytest.raises(OptimizationError):
            make_reuse_specialization(program, "length", 1, force=False)


class TestSiteSelection:
    def test_single_site_selected_for_append(self):
        program = prelude_program(["append"])
        _, body = uncurry_lambda(program.binding("append").expr)
        assert len(select_reuse_sites(body, "x")) == 1

    def test_opposite_branches_both_selected(self):
        body = parse_expr(
            "if b then cons (car x) nil else cons (car x) (cdr x)"
        )
        assert len(select_reuse_sites(body, "x")) == 2

    def test_nested_cons_picks_one(self):
        # cons (car x) (cons 1 nil): inner is nested in outer — only one
        body = parse_expr("cons (car x) (cons 1 nil)")
        assert len(select_reuse_sites(body, "x")) == 1

    def test_sequential_conses_pick_one(self):
        # both args of f contain a cons on the same path: only one donor use
        body = parse_expr("f (cons (car x) nil) (cons (cdr x) nil)")
        assert len(select_reuse_sites(body, "x")) <= 1

    def test_split_untyped_selection_takes_each_path(self):
        # Without type information (no donor_type), the then-branch result
        # cons is also taken; the typed path (make_reuse_specialization)
        # excludes it because it builds a deeper list than the donor.
        program = prelude_program(["split"])
        _, body = uncurry_lambda(program.binding("split").expr)
        assert len(select_reuse_sites(body, "x")) == 3

    def test_split_typed_selection_excludes_result_cons(self):
        from repro.types.infer import infer_program
        from repro.types.types import INT, TList

        program = prelude_program(["split"])
        infer_program(program)
        _, body = uncurry_lambda(program.binding("split").expr)
        assert len(select_reuse_sites(body, "x", donor_type=TList(INT))) == 2


class TestRedirect:
    def test_redirect_calls_rewrites_caller_only(self, partition_sort):
        program = make_reuse_specialization(
            partition_sort, "append", 1, new_name="append_reuse"
        ).program
        redirected = redirect_calls(program, "ps", "append", "append_reuse")
        from repro.lang.pretty import pretty

        assert "append_reuse" in pretty(redirected.binding("ps").expr)
        assert "append_reuse" not in pretty(redirected.binding("split").expr)

    def test_redirect_to_missing_binding_rejected(self, partition_sort):
        with pytest.raises(OptimizationError):
            redirect_calls(partition_sort, "ps", "append", "ghost")

    def test_redirect_body(self):
        program = prelude_program(["rev"], "rev [1]")
        specialized = make_reuse_specialization(program, "rev", 1).program
        redirected = redirect_body_calls(specialized, "rev", "rev_reuse")
        from repro.lang.pretty import pretty

        assert "rev_reuse" in pretty(redirected.body)


class TestSplitReuse:
    def test_split_param2_is_reusable_and_correct(self):
        program = prelude_program(["split"], "split 3 [5, 2, 7, 1] nil nil")
        result = make_reuse_specialization(program, "split", 2)
        assert result.rewritten_sites == 2  # one type-compatible cons per branch
        optimized = redirect_body_calls(result.program, "split", result.new_name)
        base_out, base_metrics = run_program(program)
        opt_out, opt_metrics = run_program(optimized)
        assert opt_out == base_out == [[1, 2], [7, 5]]
        assert opt_metrics.reused > 0
        assert opt_metrics.heap_allocs < base_metrics.heap_allocs


class TestTypePreservation:
    def test_specialized_program_typechecks(self, partition_sort):
        from repro.types.infer import infer_program

        from repro.types.instantiate import simplest_instance

        program = make_reuse_specialization(partition_sort, "append", 1).program
        result = infer_program(program)
        # append is pinned to int by ps; the unused specialization stays
        # polymorphic — their simplest instances agree.
        assert str(simplest_instance(result.scheme("append_reuse"))) == str(
            simplest_instance(result.scheme("append"))
        )

    def test_specialized_program_analysis_unchanged_for_original(self, partition_sort):
        program = make_reuse_specialization(partition_sort, "append", 1).program
        analysis = EscapeAnalysis(program)
        assert str(analysis.global_test("ps", 1).result) == "<1,0>"
