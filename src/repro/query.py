"""The session-scoped query engine behind :class:`~repro.escape.analyzer.EscapeAnalysis`.

An :class:`AnalysisSession` turns the escape analysis from a batch re-run
into a demand-driven query system, in the style of compiler query engines:

* **Stable keys.**  A solve is identified by
  ``(program_fp, pins_fp, d, max_iterations)`` — structural fingerprints
  from :mod:`repro.lang.fingerprint` and :mod:`repro.types.types` — so the
  same question asked twice returns the cached :class:`SolvedProgram`.
* **SCC scheduling.**  The letrec binding graph is decomposed into
  strongly connected components (:mod:`repro.escape.scc`) and each knot's
  fixpoint is solved callees-first.  Per-SCC results are cached under the
  *typed* fingerprint of the knot's bindings plus the provenance of its
  dependencies, so a pinned query re-solves only the components the pin's
  types actually change and reuses the cached environments for the rest.
* **Isolation.**  Every solve runs on a private :func:`clone_program` of
  the session program, so type (re-)inference never clobbers ``.ty``
  annotations on the caller's AST — including the local test's variant
  programs, which historically shared binding nodes across queries.
* **Accounting.**  Each query tallies cache hits/misses, fixpoint
  iterations and abstract-evaluation steps (:class:`QueryStats`,
  aggregated into :class:`SessionStats`), and budget meters from the
  hardened engine charge only the work a query actually performs: a cache
  hit — in-memory or from the store — costs no fixpoint iterations, while
  deadlines are still enforced at every solve entry.

Dependency identity is tracked by *provenance digests*
(:func:`scc_digest`): each solved SCC is named by a content hash chaining
its typed bindings fingerprint, the chain bound ``d``, the iteration cap,
and its dependencies' digests.  Equal digests mean the abstract evaluator
saw identical inputs all the way down, so reuse is bit-identical; and
because the digest is a plain string — not a process-local ``id()`` token,
as in earlier revisions — the same key is derived in every session and
every process, which is what lets an on-disk :class:`repro.store.AnalysisStore`
act as a second, cross-process cache tier behind the in-memory one.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.heap_liveness import (
    LivenessSummary,
    decode_summary,
    encode_summary,
    summarize_scc,
)
from repro.escape.abstract import AbsEnv, AbstractEvaluator, FixpointTrace
from repro.escape.domain import EscapeValue
from repro.escape.engine import default_engine, make_evaluator, validate_engine
from repro.escape.lattice import BeChain
from repro.escape.scc import binding_sccs
from repro.escape.serialize import (
    NodeIndex,
    SerializationError,
    decode_entry,
    encode_entry,
)
from repro.escape.serialize import CODEC_VERSION as _CODEC_VERSION
from repro.lang.ast import Letrec, Program, Var, clone_program, uncurry_app
from repro.lang.errors import AnalysisError
from repro.lang.fingerprint import (
    bindings_fingerprint,
    program_fingerprint,
    stable_digest,
)
from repro.obs import tracer as obs
from repro.types.infer import InferenceResult, infer_program
from repro.types.spines import program_spine_bound
from repro.types.types import Type, TypeScheme, pins_fingerprint

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.robust.budget import BudgetMeter
    from repro.store import AnalysisStore

#: Version of the digest derivation itself.  Chained into every SCC digest
#: together with the value-codec version, so changing either the key
#: material or the payload representation retires all previously stored
#: entries at once.  Version 2 added the engine name to the key material.
DIGEST_VERSION = 2


def scc_digest(
    typed_fingerprint: str,
    d: int,
    max_iterations: int | None,
    dependencies: dict[str, str],
    engine: str | None = None,
) -> str:
    """The stable provenance digest of one SCC's fixpoint.

    ``dependencies`` maps each dependency binding name to *its* digest, so
    the hash chains through the whole callees-first solve order: two SCCs
    share a digest exactly when their typed bindings and the full analysis
    provenance beneath them agree, along with every analysis-relevant
    configuration knob (``d`` and the iteration cap both change abstract
    values, so they are key material, not metadata).  The ``engine`` is key
    material too: legacy and worklist fixpoints must agree extensionally,
    but a stored entry's closures replay on the engine that produced them,
    so entries from different engines never collide in the store.
    """
    return stable_digest(
        [
            "scc",
            DIGEST_VERSION,
            _CODEC_VERSION,
            engine if engine is not None else default_engine(),
            typed_fingerprint,
            d,
            max_iterations,
            sorted(dependencies.items()),
        ]
    )


@dataclass
class SolvedProgram:
    """One solved analysis instance: typed program + converged environment.

    ``program`` is the session-private typed clone the solve ran on — the
    authoritative source for instance types (the caller's AST keeps its
    base-inference types untouched).  ``traces`` are in program binding
    order; ``scc_iterates`` holds, per binding, the per-iteration
    environments of its component's fixpoint (index 0 is bottom), merged
    with the already-solved dependency values so Appendix A.1 derivations
    can be replayed.
    """

    inference: InferenceResult
    evaluator: AbstractEvaluator
    env: AbsEnv
    d: int
    program: Program
    traces: list[FixpointTrace] = field(default_factory=list)
    scc_iterates: dict[str, list[AbsEnv]] = field(default_factory=dict)
    #: Per-binding provenance digest of the component that solved it — the
    #: key its fixpoint is cached (and stored) under.
    scc_digests: dict[str, str] = field(default_factory=dict)
    #: Per-binding heap-liveness summaries (encoded,
    #: cf. :func:`repro.analysis.heap_liveness.encode_summary`), collected
    #: from the same SCC entries as the lattice values so warm and cold
    #: solves expose identical facts.  Empty for bindings whose summary
    #: could not be computed — consumers degrade to ``⊤``.
    liveness: dict[str, dict] = field(default_factory=dict)

    def trace(self, name: str) -> FixpointTrace:
        for t in self.traces:
            if t.name == name:
                return t
        raise AnalysisError(f"no fixpoint trace for {name!r}")

    def iterates_for(self, name: str) -> list[AbsEnv]:
        """The fixpoint iterates of ``name``'s component (bottom first),
        each extended with the solved dependency environment."""
        try:
            return self.scc_iterates[name]
        except KeyError:
            raise AnalysisError(f"no fixpoint iterates for {name!r}") from None


@dataclass
class QueryStats:
    """Work accounting for one analysis query.

    ``store_*`` counters track the on-disk tier: a store hit also counts as
    an SCC cache hit (the component was not re-solved), a store miss only
    accompanies an SCC miss, and a store write records one persisted
    fixpoint.  All three stay zero when no store is attached.
    """

    solve_hits: int = 0
    solve_misses: int = 0
    scc_hits: int = 0
    scc_misses: int = 0
    iterations: int = 0
    eval_steps: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    #: Transfer evaluations performed by the worklist engine — equal to
    #: ``eval_steps`` when the query ran on the worklist engine (the engines
    #: count different units under the same total), zero under legacy.
    worklist_evals: int = 0

    def add(self, other: "QueryStats") -> None:
        self.solve_hits += other.solve_hits
        self.solve_misses += other.solve_misses
        self.scc_hits += other.scc_hits
        self.scc_misses += other.scc_misses
        self.iterations += other.iterations
        self.eval_steps += other.eval_steps
        self.store_hits += other.store_hits
        self.store_misses += other.store_misses
        self.store_writes += other.store_writes
        self.worklist_evals += other.worklist_evals

    def summary(self) -> str:
        text = (
            f"solve cache {self.solve_hits} hit(s) / {self.solve_misses} miss(es), "
            f"scc cache {self.scc_hits} hit(s) / {self.scc_misses} miss(es), "
            f"{self.iterations} fixpoint iteration(s), "
            f"{self.eval_steps} eval step(s)"
        )
        if self.worklist_evals:
            text += f" ({self.worklist_evals} transfer eval(s))"
        if self.store_hits or self.store_misses or self.store_writes:
            text += (
                f", store {self.store_hits} hit(s) / {self.store_misses} miss(es)"
                f" / {self.store_writes} write(s)"
            )
        return text


@dataclass
class SessionStats(QueryStats):
    """Aggregate accounting across every query of a session."""

    queries: int = 0
    last_query: QueryStats | None = None

    def summary(self) -> str:
        return f"{self.queries} query(ies): " + super().summary()


@dataclass
class _SCCEntry:
    """One cached per-SCC fixpoint, keyed by its provenance digest
    (:func:`scc_digest`), which downstream components chain into theirs."""

    values: dict[str, EscapeValue]
    traces: list[FixpointTrace]
    iterates: list[AbsEnv]
    base_env: AbsEnv
    iterations: int
    #: the worklist engine's may-share classes for this component
    #: (name -> sorted members), persisted with the fixpoint so a store
    #: hit reproduces the complete result, sharing partition included
    sharing: dict = field(default_factory=dict)
    #: the component's heap-liveness summaries (name -> encoded summary),
    #: persisted alongside so the collector zoo and diff artifacts see the
    #: same facts warm and cold
    liveness: dict = field(default_factory=dict)


class AnalysisSession:
    """A cache-carrying scope for escape-analysis queries over one program.

    The session owns the base (unpinned) inference, the solve cache, the
    per-SCC fixpoint cache, and the registry of abstract evaluators whose
    closures may be re-entered by later queries (so budget meters can be
    installed on all of them for the duration of a query).
    """

    def __init__(
        self,
        program: Program,
        d: int | None = None,
        max_iterations: int | None = None,
        store: "AnalysisStore | None" = None,
        engine: str | None = None,
    ):
        self.program = program
        self.d_override = d
        self.max_iterations = max_iterations
        #: The fixpoint engine every evaluator of this session runs on
        #: (``None`` resolves the process default once, at construction, so
        #: a session never mixes engines mid-life).
        self.engine = validate_engine(engine) if engine is not None else default_engine()
        #: Optional on-disk second cache tier (read-through on SCC misses,
        #: write-behind on fresh solves).  Store hits perform no fixpoint
        #: iterations and tick no budget meter.
        self.store = store
        # Base inference: exposes the (possibly polymorphic) schemes and
        # stamps the caller's AST with the default instance, as the
        # pre-session analyzer did.
        self._base_inference = infer_program(program)
        self.program_fingerprint = program_fingerprint(program)
        self.stats = SessionStats()
        self._solve_cache: dict[tuple, SolvedProgram] = {}
        self._scc_cache: dict[str, _SCCEntry] = {}
        #: AST paths for value serialization, spanning every clone this
        #: session solved on (cached dependency values can carry closures
        #: over earlier clones).  Only populated when a store is attached.
        self._node_index = NodeIndex() if store is not None else None
        #: Every evaluator this session ever created.  Cached closure
        #: values tick their *creating* evaluator, so a query's meter must
        #: be installed on all of them, and cleared afterwards.
        self._evaluators: list[AbstractEvaluator] = []
        #: sharing classes of every SCC entry a solve touched (cache and
        #: store hits included) — merged by :meth:`sharing_classes`
        self._scc_sharing: list[dict] = []
        self._active_meter: "BudgetMeter | None" = None
        self._query_depth = 0
        self._current: QueryStats | None = None
        self._steps_at_begin = 0

    # -- schemes -----------------------------------------------------------

    @property
    def schemes(self) -> dict[str, TypeScheme]:
        return self._base_inference.schemes

    def scheme(self, name: str) -> TypeScheme:
        return self._base_inference.scheme(name)

    # -- query scope -------------------------------------------------------

    @contextmanager
    def query(self, meter: "BudgetMeter | None" = None) -> Iterator[QueryStats]:
        """Scope one query: installs ``meter`` on every session evaluator
        (outermost scope wins) and tallies the query's work on exit.

        A nested scope must not carry its own meter — the outer budget
        stays installed, so honouring the inner one silently is impossible.
        Passing a different meter from a nested scope is therefore reported
        as a :class:`UserWarning` instead of being dropped without a trace.
        """
        self._query_depth += 1
        if self._query_depth == 1:
            self.stats.queries += 1
            self._current = QueryStats()
            self._active_meter = meter
            for evaluator in self._evaluators:
                evaluator.meter = meter
            self._steps_at_begin = sum(e.steps for e in self._evaluators)
        elif meter is not None and meter is not self._active_meter:
            warnings.warn(
                "nested AnalysisSession.query() scope passed its own budget "
                "meter; the outer scope's meter stays in effect and the "
                "nested one is ignored",
                UserWarning,
                stacklevel=3,
            )
        current = self._current
        assert current is not None
        try:
            yield current
        finally:
            self._query_depth -= 1
            if self._query_depth == 0:
                for evaluator in self._evaluators:
                    evaluator.meter = None
                self._active_meter = None
                steps = sum(e.steps for e in self._evaluators) - self._steps_at_begin
                current.eval_steps += steps
                self.stats.eval_steps += steps
                if self.engine == "worklist":
                    # Same total, finer unit: every step of a worklist
                    # evaluator is one transfer eval over the IR.
                    current.worklist_evals += steps
                    self.stats.worklist_evals += steps
                self.stats.last_query = current
                self._current = None
                obs.emit(
                    "query_stats",
                    solve_hits=current.solve_hits,
                    solve_misses=current.solve_misses,
                    scc_hits=current.scc_hits,
                    scc_misses=current.scc_misses,
                    iterations=current.iterations,
                    eval_steps=current.eval_steps,
                    store_hits=current.store_hits,
                    store_misses=current.store_misses,
                    store_writes=current.store_writes,
                    worklist_evals=current.worklist_evals,
                )

    def _new_evaluator(self, chain: BeChain) -> AbstractEvaluator:
        evaluator = make_evaluator(
            self.engine,
            chain,
            max_iterations=self.max_iterations,
            meter=self._active_meter,
        )
        self._evaluators.append(evaluator)
        return evaluator

    def _tally(self, **deltas: int) -> None:
        for target in (self.stats, self._current):
            if target is None:
                continue
            for name, delta in deltas.items():
                setattr(target, name, getattr(target, name) + delta)

    def sharing_classes(self) -> dict[str, frozenset[str]]:
        """May-share name classes from the worklist engine's union-find
        partitions, merged across every solve this session ran.  Empty
        under the legacy engine, which tracks no aliasing.

        Merging re-unions each evaluator's classes into one fresh
        partition, so the result stays a genuine partition (transitively
        closed) even when different evaluators grouped overlapping names
        differently."""
        from repro.escape.worklist import AliasPartition

        merged = AliasPartition()
        seen = False
        for evaluator in self._evaluators:
            classes = getattr(evaluator, "sharing_classes", None)
            if classes is None:
                continue
            for name, names in classes().items():
                seen = True
                merged.union(("name", name), *(("name", n) for n in names))
        for classes in self._scc_sharing:
            for name, names in classes.items():
                seen = True
                merged.union(("name", name), *(("name", n) for n in names))
        return merged.name_classes() if seen else {}

    # -- solving -----------------------------------------------------------

    def solve(self, pins: dict[str, Type] | None = None) -> SolvedProgram:
        """The solved program at ``pins`` — cached across queries."""
        if self._active_meter is not None:
            self._active_meter.check_deadline()
        key = (
            self.program_fingerprint,
            pins_fingerprint(pins),
            self.d_override,
            self.max_iterations,
        )
        cached = self._solve_cache.get(key)
        if cached is not None:
            self._tally(solve_hits=1)
            obs.emit("solve", cache="hit", pins=sorted(pins) if pins else [])
            return cached
        self._tally(solve_misses=1)
        obs.emit("solve", cache="miss", pins=sorted(pins) if pins else [])
        with obs.span("solve"):
            solved = self._solve_program(clone_program(self.program), pins)
        self._solve_cache[key] = solved
        return solved

    def solve_call(
        self, expr
    ) -> tuple[SolvedProgram, EscapeValue, str]:
        """Solve the program extended with call body ``expr`` (the local
        test's variant), isolated from both the caller's AST and the
        session program.

        Returns the solved variant, the abstract value of the call's head,
        and a display label.  When the head is a top-level function the
        solve is pinned to the monotype instance the call uses (discovered
        by a first inference pass over the private clone, cf. §4.2).
        """
        if self._active_meter is not None:
            self._active_meter.check_deadline()
        head, _ = uncurry_app(expr)
        variant = Program(
            letrec=Letrec(bindings=self.program.bindings, body=expr),
            source=self.program.source,
        )
        work = clone_program(variant)
        with obs.span("solve_call"):
            if isinstance(head, Var) and head.name in self.program.binding_names():
                infer_program(work)
                work_head, _ = uncurry_app(work.body)
                assert work_head.ty is not None
                solved = self._solve_program(work, pins={head.name: work_head.ty})
                return solved, solved.env[head.name], head.name
            solved = self._solve_program(work, pins=None)
            solved_head, _ = uncurry_app(solved.program.body)
            return solved, solved.evaluator.eval(solved_head, solved.env), "<expr>"

    def _solve_program(
        self, program: Program, pins: dict[str, Type] | None
    ) -> SolvedProgram:
        """Infer ``program`` (a session-private clone, mutated in place)
        with ``pins`` and solve its letrec fixpoint per SCC."""
        inference = infer_program(program, pins=pins)
        d = (
            self.d_override
            if self.d_override is not None
            else program_spine_bound(program)
        )
        chain = BeChain(d)
        evaluator = self._new_evaluator(chain)
        env, traces, scc_iterates, scc_digests, liveness = self._solve_sccs(
            program, d, chain
        )
        return SolvedProgram(
            inference=inference,
            evaluator=evaluator,
            env=env,
            d=d,
            program=program,
            traces=traces,
            scc_iterates=scc_iterates,
            scc_digests=scc_digests,
            liveness=liveness,
        )

    def _solve_sccs(
        self, program: Program, d: int, chain: BeChain
    ) -> tuple[
        AbsEnv,
        list[FixpointTrace],
        dict[str, list[AbsEnv]],
        dict[str, str],
        dict[str, dict],
    ]:
        if self._node_index is not None:
            self._node_index.add_program(program)
        env: AbsEnv = {}
        #: decoded heap-liveness summaries of every binding solved so far
        #: (the dependency scope for later SCCs' summaries)
        liveness_env: dict[str, LivenessSummary] = {}
        #: the encoded form, accumulated for :attr:`SolvedProgram.liveness`
        liveness_out: dict[str, dict] = {}
        #: binding name -> digest of the component that solved it
        provenance: dict[str, str] = {}
        #: binding name -> every name in its transitive dependency cone
        #: (itself and its component included) — the namespace a stored
        #: entry's environment references may draw from
        transitive: dict[str, frozenset[str]] = {}
        traces: list[FixpointTrace] = []
        scc_iterates: dict[str, list[AbsEnv]] = {}
        for scc in binding_sccs(program.letrec):
            dep_names = sorted(scc.dependencies)
            digest = scc_digest(
                bindings_fingerprint(scc.bindings, include_types=True),
                d,
                self.max_iterations,
                {name: provenance[name] for name in dep_names},
                engine=self.engine,
            )
            closure = frozenset(scc.names).union(
                *(transitive[name] for name in dep_names)
            )
            entry = self._scc_cache.get(digest)
            if entry is not None:
                self._tally(scc_hits=1)
                obs.emit(
                    "scc_solve_finish",
                    names=list(scc.names),
                    cache="hit",
                    iterations=0,
                )
            else:
                entry = self._store_read(digest, scc.names, program, env, chain)
                if entry is not None:
                    self._scc_cache[digest] = entry
                    self._tally(scc_hits=1, store_hits=1)
                    obs.emit(
                        "scc_solve_finish",
                        names=list(scc.names),
                        cache="hit",
                        iterations=0,
                    )
                else:
                    self._tally(scc_misses=1)
                    obs.emit("scc_solve_start", names=list(scc.names))
                    with obs.span("scc_solve", names=list(scc.names)):
                        scc_evaluator = self._new_evaluator(chain)
                        knot = Letrec(bindings=scc.bindings, body=program.body)
                        solved_env = scc_evaluator.solve_bindings(knot, env)
                        classes = getattr(
                            scc_evaluator, "sharing_classes", None
                        )
                        try:
                            summaries = summarize_scc(
                                scc.bindings, dict(liveness_env), cap=d + 1
                            )
                            scc_liveness = {
                                name: encode_summary(summary)
                                for name, summary in sorted(summaries.items())
                            }
                        except Exception:
                            # No summary beats a wrong one: consumers treat
                            # the missing entry as ⊤ (degraded facts).
                            scc_liveness = {}
                        entry = _SCCEntry(
                            values={name: solved_env[name] for name in scc.names},
                            traces=list(scc_evaluator.traces),
                            iterates=[dict(it) for it in scc_evaluator.iterates],
                            base_env={name: env[name] for name in dep_names},
                            iterations=max(0, len(scc_evaluator.iterates) - 1),
                            sharing={
                                name: sorted(members)
                                for name, members in (
                                    classes().items() if classes else ()
                                )
                            },
                            liveness=scc_liveness,
                        )
                    self._scc_cache[digest] = entry
                    self._tally(iterations=entry.iterations)
                    obs.emit(
                        "scc_solve_finish",
                        names=list(scc.names),
                        cache="miss",
                        iterations=entry.iterations,
                    )
                    self._store_write(digest, scc.names, entry, env, closure)
            if entry.sharing:
                self._scc_sharing.append(entry.sharing)
            for name, payload in sorted(entry.liveness.items()):
                try:
                    liveness_env[name] = decode_summary(payload)
                except Exception:
                    continue
                liveness_out[name] = payload
            for name in scc.names:
                env[name] = entry.values[name]
                provenance[name] = digest
                transitive[name] = closure
                scc_iterates[name] = [
                    {**entry.base_env, **iterate} for iterate in entry.iterates
                ]
            traces.extend(entry.traces)
        order = {name: i for i, name in enumerate(program.binding_names())}
        traces.sort(key=lambda t: order[t.name])
        return env, traces, scc_iterates, provenance, liveness_out

    # -- the on-disk tier ---------------------------------------------------

    def _store_read(
        self,
        digest: str,
        names,
        program: Program,
        env: AbsEnv,
        chain: BeChain,
    ) -> _SCCEntry | None:
        """Read-through: a stored fixpoint for ``digest``, decoded against
        this solve's program clone and already-solved environment, or
        ``None`` (no store, absent, corrupt, or undecodable — all of which
        fall back to a re-solve).  Decoding performs no abstract evaluation,
        so a store hit ticks no budget meter.
        """
        if self.store is None:
            return None
        payload = self.store.read(digest)
        if payload is not None:
            try:
                decoded = decode_entry(
                    payload, program, env, self._new_evaluator(chain)
                )
                entry = _SCCEntry(
                    values=decoded["values"],
                    traces=decoded["traces"],
                    iterates=decoded["iterates"],
                    base_env=decoded["base_env"],
                    iterations=decoded["iterations"],
                    sharing=decoded["sharing"],
                    liveness=decoded["liveness"],
                )
            except SerializationError:
                payload = None
            else:
                self.store.note_hit()
                obs.emit("store_hit", digest=digest, names=list(names))
                return entry
        self._tally(store_misses=1)
        self.store.note_miss()
        obs.emit("store_miss", digest=digest, names=list(names))
        return None

    def _store_write(
        self,
        digest: str,
        names,
        entry: _SCCEntry,
        env: AbsEnv,
        closure: frozenset[str],
    ) -> None:
        """Write-behind: persist a freshly solved fixpoint.  Environment
        references are restricted to the component's transitive dependency
        cone — exactly the names the digest chain pins — and any failure
        (unserializable value, storage error) skips the write silently:
        persistence is warmth, never correctness.
        """
        if self.store is None:
            return
        assert self._node_index is not None
        dep_closure = sorted(closure - frozenset(names))
        env_names = {
            id(env[name]): name for name in dep_closure if name in env
        }
        try:
            payload = encode_entry(
                entry.values,
                entry.traces,
                entry.iterates,
                entry.base_env,
                entry.iterations,
                self._node_index,
                env_names,
                sharing=entry.sharing,
                liveness=entry.liveness,
            )
        except SerializationError:
            return
        if self.store.write(digest, payload):
            self._tally(store_writes=1)
            self.store.note_write()
            obs.emit("store_write", digest=digest, names=list(names))
