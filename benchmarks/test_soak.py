"""SK1 — the chaos soak: always answered, never unsound, nothing leaked.

The resilience PR's contract is Definition 2 operationalized: under
injected worker crashes, hung workers, torn store writes, failed store
loads, and faulted/stalled service requests, **every** batch file and
**every** daemon request still produces an answer — exact when possible,
the flagged ``W^τ`` worst case when degraded, a quarantine record with
full failure history at worst.  Soundness is not taken on faith: every
non-degraded optimize response is re-audited by the :mod:`repro.check`
static auditor against the program the service actually returned.

The acceptance gate asserted here (and exported to ``BENCH_soak.json``):
100% of files and requests answered, zero auditor findings, zero orphaned
``*.tmp`` files after the post-run reap, zero hung worker processes.
"""

from __future__ import annotations

import json
import multiprocessing
from pathlib import Path

from repro.batch import run_batch
from repro.bench.tables import print_table
from repro.lang.prelude import prelude_source
from repro.robust.chaos import (
    SoakReport,
    finish_store_hygiene,
    soak_batch,
    soak_serve,
)
from repro.robust.faults import FaultPlan, SlowStage
from repro.robust.resilience import RetryPolicy

SEED = 20260808

CORPUS = {
    "partition_sort.nml": prelude_source(["ps"], "ps [5, 2, 7, 1, 3, 4]"),
    "reverse.nml": prelude_source(["append", "rev"], "rev [1, 2, 3, 4]"),
    "concat.nml": prelude_source(["append", "concat"], "concat [[1], [2, 3]]"),
}

SERVE_SOURCES = [
    prelude_source(["append"], "append [1, 2] [3]"),
    prelude_source(["append", "rev"], "rev [4, 5, 6]"),
]


def _write_corpus(root: Path) -> Path:
    corpus = root / "corpus"
    corpus.mkdir()
    for name, source in CORPUS.items():
        (corpus / name).write_text(source)
    return corpus


def test_sk1_chaos_soak_always_answers(tmp_path):
    corpus = _write_corpus(tmp_path)
    store = tmp_path / "store"
    report = SoakReport(seed=SEED)

    # Seeded fault rounds against the supervised batch driver.
    soak_batch(
        [corpus],
        store_root=store,
        report=report,
        rounds=3,
        seed=SEED,
        jobs=2,
        timeout_s=0.6,
        deadline_ms=2000.0,
    )

    # A poison round: every worker launch hangs, so every file must walk
    # the full timeout → retry → quarantine path and still be answered.
    poison = run_batch(
        [corpus],
        store_root=store,
        jobs=2,
        timeout_s=0.3,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.05, seed=SEED),
        fault_plan=FaultPlan(
            slow_stages=(SlowStage("worker", at=1, every=1, seconds=5.0),)
        ),
    )
    assert poison.answered and not poison.ok
    assert poison.exit_code() == 3
    assert len(poison.quarantined_files) == len(CORPUS)
    report.rounds += 1
    report.files_total += len(poison.reports)
    report.files_answered += len(poison.reports)
    report.files_quarantined += len(poison.reports)
    report.retries_quarantine_attempts += sum(
        file_report.attempts for file_report in poison.reports
    )
    report.hung_processes += len(multiprocessing.active_children())

    # A torn-write round on a fresh store: every persist attempt tears
    # mid-write (truncated final entry + orphaned tmp file), yet the
    # answers stay exact — the store degrades to a no-op cache, never to
    # a wrong answer.
    torn_store = tmp_path / "torn-store"
    torn = run_batch(
        [corpus],
        store_root=torn_store,
        jobs=1,
        fault_plan=FaultPlan(torn_write_every=1),
    )
    assert torn.ok
    report.rounds += 1
    report.files_total += len(torn.reports)
    report.files_answered += len(torn.reports)
    report.files_exact += len(torn.reports)

    # Seeded fault rounds against a live daemon over loopback HTTP.
    serve_store = tmp_path / "serve-store"
    soak_serve(
        SERVE_SOURCES,
        report=report,
        rounds=2,
        seed=SEED,
        store_root=str(serve_store),
    )

    # Post-run hygiene: torn-write residue exists, the reap removes it.
    for root in (store, torn_store, serve_store):
        finish_store_hygiene(report, root)
    assert report.orphan_tmp_before_reap > 0

    # The acceptance gate.
    assert (
        report.files_exact
        + report.files_degraded
        + report.files_quarantined
        + report.files_failed_hard
        == report.files_total
    )
    assert report.files_answered == report.files_total
    assert report.requests_answered == report.requests_total
    assert report.optimize_audited > 0
    assert report.optimize_audit_findings == 0
    assert report.orphan_tmp_after_reap == 0
    assert report.hung_processes == 0
    assert report.always_answered
    # The schedule genuinely hurt: degraded answers and quarantines
    # happened, 5xx bodies were still structured JSON answers.
    assert report.files_quarantined >= len(CORPUS)
    assert report.requests_degraded > 0

    print_table(
        ["side", "total", "answered", "degraded", "quarantined", "5xx"],
        [
            [
                "batch files",
                report.files_total,
                report.files_answered,
                report.files_degraded,
                report.files_quarantined,
                "-",
            ],
            [
                "serve requests",
                report.requests_total,
                report.requests_answered,
                report.requests_degraded,
                "-",
                report.responses_5xx,
            ],
        ],
        title="SK1: chaos soak under seeded faults",
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_soak.json"
    out.write_text(json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n")
