"""IR1 — the worklist engine vs the legacy Kleene iteration.

The tentpole acceptance gate of the IR refactor, run over the programs the
existing experiments already exercise: the AB4 Appendix-A table program
(``partition_sort``, every global question) and the SA1 transformed
artifacts (``APPEND'``, ``PS'``, ``PS''``, ``REV'``).  For every program:

* both engines produce **bit-identical per-binding lattice fingerprints**
  (the worklist solver is a reordering of the same monotone system, so the
  least fixpoint cannot differ), additionally pinned against the committed
  legacy-engine oracle in ``benchmarks/ir_oracle.json`` so the CI
  ``ir-smoke`` job needs only one engine run;
* the worklist engine performs **≥10× fewer evaluation steps** than
  ``session.eval_steps`` under the legacy engine — transfer evals over the
  flat IR with instruction-level change propagation, against whole-body
  re-evaluation per Kleene round.

The measured table is exported to ``BENCH_ir.json`` at the repo root.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.tables import print_table
from repro.escape.abstract import fingerprint
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.opt.pipeline import (
    paper_ps_double_prime,
    paper_ps_prime,
    paper_rev_prime,
)
from repro.opt.reuse import make_reuse_specialization
from repro.types.types import arity

ORACLE_PATH = Path(__file__).resolve().parent / "ir_oracle.json"
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_ir.json"

#: The IR1 acceptance threshold: worklist does ≤ 1/10 of legacy's steps.
REDUCTION_FACTOR = 10


def _paper_append_prime():
    program = prelude_program(["append"], "append [1, 2] [3]")
    return make_reuse_specialization(
        program, "append", 1, new_name="append_reuse"
    ).program


#: name -> zero-argument builder (fresh AST per engine run).
PROGRAMS = {
    "partition_sort": paper_partition_sort,
    "APPEND'": _paper_append_prime,
    "PS'": lambda: paper_ps_prime().program,
    "PS''": lambda: paper_ps_double_prime().program,
    "REV'": lambda: paper_rev_prime().program,
}


def run_engine(build, engine: str):
    """Solve ``build()`` under ``engine`` and answer every global question.

    Returns (per-binding fingerprint strings, total evaluation steps).
    """
    program = build()
    analysis = EscapeAnalysis(program, engine=engine)
    solved = analysis.solve(None)
    for name in program.binding_names():
        if arity(analysis.scheme(name).body):
            analysis.global_all(name)
    chain = solved.evaluator.chain
    fingerprints = {
        name: str(
            fingerprint(
                solved.env[name], solved.program.binding(name).expr.ty, chain
            )
        )
        for name in program.binding_names()
    }
    return fingerprints, analysis.stats.eval_steps


def test_ir1_worklist_reduces_steps_with_identical_fingerprints(benchmark):
    oracle = json.loads(ORACLE_PATH.read_text())
    rows = []
    doc = {"reduction_factor": REDUCTION_FACTOR, "programs": {}}
    total_legacy = total_worklist = 0

    for name, build in PROGRAMS.items():
        legacy_fps, legacy_steps = run_engine(build, "legacy")
        worklist_fps, worklist_steps = run_engine(build, "worklist")

        # Differential gate: bit-identical per-binding fingerprints.
        assert worklist_fps == legacy_fps, name
        # Pin against the committed oracle (regenerate with
        # ``python benchmarks/test_ir_worklist.py`` if lattice semantics
        # legitimately change).
        assert worklist_fps == oracle[name], name

        # Cost gate, per program: the worklist engine is strictly cheaper
        # (the ≥10× bar is asserted over the whole set below — the tiny
        # SA1 specializations converge in so few steps that there is less
        # redundant work for change-propagation to eliminate).
        assert legacy_steps > worklist_steps, (
            f"{name}: {legacy_steps} legacy vs {worklist_steps} worklist"
        )

        total_legacy += legacy_steps
        total_worklist += worklist_steps
        ratio = legacy_steps / worklist_steps
        rows.append([name, legacy_steps, worklist_steps, f"{ratio:.1f}x"])
        doc["programs"][name] = {
            "legacy_eval_steps": legacy_steps,
            "worklist_evals": worklist_steps,
            "reduction": round(ratio, 2),
            "fingerprints_identical": True,
        }

    assert total_legacy >= REDUCTION_FACTOR * total_worklist
    doc["total"] = {
        "legacy_eval_steps": total_legacy,
        "worklist_evals": total_worklist,
        "reduction": round(total_legacy / total_worklist, 2),
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print_table(
        ["program", "legacy steps", "worklist evals", "reduction"], rows
    )

    # Time the production configuration on the AB4 program.
    benchmark(lambda: run_engine(paper_partition_sort, "worklist"))


def _regenerate_oracle() -> None:
    """Rebuild ``ir_oracle.json`` from the legacy engine (the oracle)."""
    oracle = {
        name: run_engine(build, "legacy")[0] for name, build in PROGRAMS.items()
    }
    ORACLE_PATH.write_text(json.dumps(oracle, indent=2, sort_keys=True) + "\n")
    print(f"wrote {ORACLE_PATH}")


if __name__ == "__main__":
    _regenerate_oracle()
