"""Sharing analysis (Theorem 2) tests, including heap-level validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sharing import (
    observed_unshared_spines,
    sharing_global,
    sharing_local,
)
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.errors import AnalysisError
from repro.lang.prelude import prelude_program

int_lists = st.lists(st.integers(min_value=0, max_value=99), max_size=8)


class TestPaperSharingFacts:
    """§A.2: the sharing facts of the partition-sort program."""

    def test_ps_result_top_spine_unshared(self, ps_analysis):
        info = sharing_global(ps_analysis, "ps")
        assert info.result_spines == 1
        assert info.unshared_top_spines == 1

    def test_split_result_top_spine_unshared(self, ps_analysis):
        info = sharing_global(ps_analysis, "split")
        assert info.result_spines == 2
        assert info.unshared_top_spines == 1

    def test_append_gives_no_guarantee(self, ps_analysis):
        # append's second argument escapes fully: esc = 1 = d_f.
        info = sharing_global(ps_analysis, "append")
        assert info.unshared_top_spines == 0

    def test_describe_sentences(self, ps_analysis):
        assert "top 1 spine" in sharing_global(ps_analysis, "ps").describe()
        assert "no spine" in sharing_global(ps_analysis, "append").describe()


class TestClause1:
    def test_unshared_arguments_improve_append(self, ps_analysis):
        # Clause 1 with fully unshared arguments: min{esc, d-u} = 0.
        info = sharing_local(ps_analysis, "append", [1, 1])
        assert info.unshared_top_spines == 1

    def test_shared_arguments_degrade_to_clause2(self, ps_analysis):
        info = sharing_local(ps_analysis, "append", [0, 0])
        assert info.unshared_top_spines == sharing_global(ps_analysis, "append").unshared_top_spines

    def test_u_out_of_range(self, ps_analysis):
        with pytest.raises(AnalysisError):
            sharing_local(ps_analysis, "append", [2, 0])

    def test_wrong_arity(self, ps_analysis):
        with pytest.raises(AnalysisError):
            sharing_local(ps_analysis, "append", [1])


class TestErrors:
    def test_non_list_result_rejected(self):
        analysis = EscapeAnalysis(prelude_program(["length"]))
        with pytest.raises(AnalysisError):
            sharing_global(analysis, "length")


class TestObservedSharing:
    """Theorem 2 must *lower-bound* the measured unshared prefix."""

    def test_ps_observed_at_least_predicted(self, partition_sort, ps_analysis):
        predicted = sharing_global(ps_analysis, "ps").unshared_top_spines
        measured = observed_unshared_spines(partition_sort, "ps", [[5, 2, 7, 1, 3, 4]])
        assert measured >= predicted

    def test_split_observed_at_least_predicted(self, partition_sort, ps_analysis):
        predicted = sharing_global(ps_analysis, "split").unshared_top_spines
        measured = observed_unshared_spines(
            partition_sort, "split", [3, [5, 2, 7, 1], [], []]
        )
        assert measured >= predicted

    def test_drop_result_is_shared_with_argument(self):
        program = prelude_program(["drop"])
        measured = observed_unshared_spines(program, "drop", [1, [1, 2, 3]])
        assert measured == 0  # the suffix is the argument's own cells

    def test_copy_result_fully_unshared(self):
        program = prelude_program(["copy"])
        assert observed_unshared_spines(program, "copy", [[1, 2, 3]]) >= 1

    # The prediction is input-independent: compute it once, measure per input.
    _ps_program = prelude_program(["ps"])
    _ps_predicted = sharing_global(EscapeAnalysis(_ps_program), "ps").unshared_top_spines
    _append_program = prelude_program(["append"])
    _append_predicted = sharing_global(
        EscapeAnalysis(_append_program), "append"
    ).unshared_top_spines

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists)
    def test_theorem2_holds_for_random_ps_inputs(self, xs):
        measured = observed_unshared_spines(self._ps_program, "ps", [xs])
        if xs:  # empty input gives a nil result: nothing to measure
            assert measured >= self._ps_predicted

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists, ys=int_lists)
    def test_theorem2_clause2_for_append(self, xs, ys):
        measured = observed_unshared_spines(self._append_program, "append", [xs, ys])
        # predicted is 0: trivially satisfied, but the measurement itself
        # must not crash on edge inputs
        assert measured >= self._append_predicted
