"""Strongly connected components of letrec binding graphs
(:mod:`repro.escape.scc`): reference edges, Tarjan condensation, and the
callees-first solve order the query engine schedules fixpoints in."""

from repro.escape.scc import BindingSCC, binding_references, binding_sccs
from repro.lang.parser import parse_program
from repro.lang.prelude import paper_partition_sort, prelude_program

MUTUAL = """f l = if null l then nil else g (cdr l);
g l = if null l then nil else f (cdr l);
h l = f l;
f [1, 2]"""


class TestBindingReferences:
    def test_partition_sort_edges(self, partition_sort):
        refs = binding_references(partition_sort.letrec)
        assert refs["append"] == {"append"}
        assert refs["split"] == {"split"}
        assert refs["ps"] == {"append", "split", "ps"}

    def test_only_siblings_count(self):
        program = parse_program("f x = cons x nil;\nf 1")
        refs = binding_references(program.letrec)
        # `cons`/`nil` are primitives and `x` is lambda-bound: no edges.
        assert refs == {"f": frozenset()}

    def test_shadowed_sibling_is_not_an_edge(self):
        # g's parameter shadows the sibling binding f, so g does not
        # depend on it.
        program = parse_program("f x = x;\ng f = f 1;\ng f")
        refs = binding_references(program.letrec)
        assert refs["g"] == frozenset()


class TestBindingSCCs:
    def test_singletons_in_topological_order(self, partition_sort):
        sccs = binding_sccs(partition_sort.letrec)
        assert [scc.names for scc in sccs] == [("append",), ("split",), ("ps",)]
        assert sccs[0].dependencies == frozenset()
        assert sccs[1].dependencies == frozenset()
        assert sccs[2].dependencies == {"append", "split"}

    def test_mutual_recursion_is_one_component(self):
        program = parse_program(MUTUAL)
        sccs = binding_sccs(program.letrec)
        assert [scc.names for scc in sccs] == [("f", "g"), ("h",)]
        assert sccs[0].dependencies == frozenset()
        assert sccs[1].dependencies == {"f"}

    def test_component_keeps_program_binding_order(self):
        # Same knot declared in the opposite order: members stay in
        # program order inside the component.
        program = parse_program(
            "g l = if null l then nil else f (cdr l);\n"
            "f l = if null l then nil else g (cdr l);\n"
            "f [1]"
        )
        (scc,) = binding_sccs(program.letrec)
        assert scc.names == ("g", "f")

    def test_dependencies_precede_their_dependents(self):
        program = prelude_program(["ps", "rev", "isort"])
        sccs = binding_sccs(program.letrec)
        seen: set[str] = set()
        for scc in sccs:
            assert scc.dependencies <= seen
            seen |= set(scc.names)
        assert seen == set(program.binding_names())

    def test_decomposition_is_deterministic(self):
        program = prelude_program(["ps", "msort", "concat"])
        first = binding_sccs(program.letrec)
        second = binding_sccs(program.letrec)
        assert [s.names for s in first] == [s.names for s in second]
        assert [s.dependencies for s in first] == [s.dependencies for s in second]

    def test_empty_letrec(self):
        program = parse_program("1 + 2")
        assert binding_sccs(program.letrec) == []

    def test_scc_is_hashable_value(self):
        (scc,) = binding_sccs(parse_program("f x = f x;\nf 1").letrec)
        assert isinstance(scc, BindingSCC)
        assert scc.names == ("f",)
        assert hash(scc) == hash(scc)
