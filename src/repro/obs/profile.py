"""Profile reports and trace replay — answers from a trace, not a re-run.

Everything here consumes a list of decoded events (live from a
:class:`~repro.obs.sinks.RingBufferSink` or loaded with
:func:`~repro.obs.sinks.read_trace`):

* :func:`span_profile` — per-span-name totals (count, total, self time),
  the top-N table of ``--profile``;
* :func:`cache_stats` — solve/SCC cache hits and misses plus aggregated
  query stats, replayed from ``solve`` / ``scc_solve_finish`` /
  ``query_stats`` events;
* :func:`iteration_table` — the Appendix A.1 fixpoint table (per-binding
  evaluation counts, per-iteration lattice values, convergence), replayed
  from ``fixpoint_iteration`` / ``fixpoint_converged`` /
  ``fixpoint_widened`` events;
* :func:`worklist_stats` — the worklist engine's per-instruction transfer
  costs and queue activity, replayed from ``transfer_eval`` /
  ``worklist_push`` / ``worklist_pop`` / ``ir_lower`` events;
* :func:`profile_report` — the human-readable roll-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class SpanStats:
    """Aggregated timing for one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0


def span_profile(events: Iterable[dict]) -> list[SpanStats]:
    """Per-name span totals, sorted by self time (descending)."""
    by_name: dict[str, SpanStats] = {}
    for event in events:
        if event.get("type") != "span_end":
            continue
        stats = by_name.setdefault(event["name"], SpanStats(event["name"]))
        stats.count += 1
        stats.total_s += event["dur_s"]
        stats.self_s += event["self_s"]
    return sorted(by_name.values(), key=lambda s: s.self_s, reverse=True)


def cache_stats(events: Iterable[dict]) -> dict[str, int]:
    """Cache and work accounting replayed from the trace."""
    out = {
        "solve_hits": 0,
        "solve_misses": 0,
        "scc_hits": 0,
        "scc_misses": 0,
        "iterations": 0,
        "queries": 0,
        "eval_steps": 0,
        "store_hits": 0,
        "store_misses": 0,
        "store_writes": 0,
        "worklist_evals": 0,
    }
    for event in events:
        etype = event.get("type")
        if etype == "solve":
            out["solve_hits" if event["cache"] == "hit" else "solve_misses"] += 1
        elif etype == "scc_solve_finish":
            out["scc_hits" if event["cache"] == "hit" else "scc_misses"] += 1
            out["iterations"] += event["iterations"]
        elif etype == "query_stats":
            out["queries"] += 1
            out["eval_steps"] += event["eval_steps"]
            # Optional extra (absent in legacy-engine and older traces).
            out["worklist_evals"] += event.get("worklist_evals", 0)
        elif etype == "store_hit":
            out["store_hits"] += 1
        elif etype == "store_miss":
            out["store_misses"] += 1
        elif etype == "store_write":
            out["store_writes"] += 1
    return out


@dataclass
class BindingIterations:
    """The replayed fixpoint history of one letrec binding — one row of
    the Appendix A.1 iteration table."""

    name: str
    #: per-iteration lattice value of the binding (``f⁽¹⁾, f⁽²⁾, ...``)
    values: list[str] = field(default_factory=list)
    converged: bool = False
    widened: bool = False

    @property
    def iterations(self) -> int:
        """Body re-evaluations performed (matches
        :attr:`~repro.escape.abstract.FixpointTrace.iterations`)."""
        return len(self.values)


def iteration_table(events: Iterable[dict]) -> dict[str, BindingIterations]:
    """Replay the per-binding fixpoint histories from a trace.

    A binding solved more than once (e.g. by a later pinned variant) keeps
    its *first* complete history — the base solve, which is what the
    Appendix A.1 table shows.
    """
    table: dict[str, BindingIterations] = {}
    current: dict[str, BindingIterations] = {}
    for event in events:
        etype = event.get("type")
        if etype == "fixpoint_iteration":
            for name, value in event["values"].items():
                if event["iteration"] == 1:
                    row = BindingIterations(name)
                    current[name] = row
                    table.setdefault(name, row)
                row = current.get(name)
                if row is not None:
                    row.values.append(value)
        elif etype == "fixpoint_converged":
            for name in event["names"]:
                row = current.get(name)
                if row is not None:
                    row.converged = True
        elif etype == "fixpoint_widened":
            for name in event["names"]:
                row = current.get(name)
                if row is not None:
                    row.widened = True
    return table


@dataclass
class InstrCost:
    """Replayed execution cost of one IR instruction."""

    block: str
    index: int
    op: str
    count: int = 0


@dataclass
class WorklistStats:
    """The worklist engine's activity, replayed from a trace alone."""

    #: Bindings queued because an input's fingerprint changed.
    pushes: int = 0
    #: Bindings taken off the worklist (= binding evaluations + re-checks).
    pops: int = 0
    #: Top-level blocks lowered to IR, with instruction counts.
    lowered: dict[str, int] = field(default_factory=dict)
    #: Per-instruction transfer-eval counts, keyed ``(block, index)``.
    instr_costs: dict[tuple, InstrCost] = field(default_factory=dict)

    @property
    def transfer_evals(self) -> int:
        return sum(cost.count for cost in self.instr_costs.values())

    def hottest(self, n: int = 10) -> list[InstrCost]:
        """The ``n`` most-executed instructions, hottest first."""
        return sorted(
            self.instr_costs.values(), key=lambda c: c.count, reverse=True
        )[:n]


def worklist_stats(events: Iterable[dict]) -> WorklistStats:
    """Replay the worklist engine's per-instruction costs from a trace.

    Needs only the trace: ``transfer_eval`` events carry cumulative counts
    per (block, instruction) flushed at the end of each solve, so the
    hottest transfer functions are identified without re-running anything.
    """
    stats = WorklistStats()
    for event in events:
        etype = event.get("type")
        if etype == "worklist_push":
            stats.pushes += 1
        elif etype == "worklist_pop":
            stats.pops += 1
        elif etype == "ir_lower":
            stats.lowered[event["name"]] = event["instructions"]
        elif etype == "transfer_eval":
            key = (event["block"], event["index"])
            cost = stats.instr_costs.get(key)
            if cost is None:
                cost = InstrCost(event["block"], event["index"], event["op"])
                stats.instr_costs[key] = cost
            cost.count += event["count"]
    return stats


def runtime_stats(events: Iterable[dict]) -> dict[str, int]:
    """Storage-event totals replayed from the trace."""
    out: dict[str, int] = {}
    for event in events:
        etype = event.get("type")
        if etype == "cell_alloc":
            out[f"allocs_{event['kind']}"] = out.get(f"allocs_{event['kind']}", 0) + 1
        elif etype == "cell_reuse":
            out["reused"] = out.get("reused", 0) + 1
        elif etype == "cell_reclaim":
            key = f"reclaimed_{event['cause']}"
            out[key] = out.get(key, 0) + event["count"]
        elif etype == "gc_run":
            out["gc_runs"] = out.get("gc_runs", 0) + 1
            out["gc_marked"] = out.get("gc_marked", 0) + event["marked"]
            out["gc_swept"] = out.get("gc_swept", 0) + event["swept"]
    return out


def profile_report(events: "list[dict]", top: int = 10, total: int | None = None) -> str:
    """The human-readable profile: top spans by self time, cache hit
    ratios, per-binding iteration counts, runtime storage totals.

    ``total`` is the number of events *emitted* (e.g. a bounded
    RingBufferSink's ``total``); when it exceeds ``len(events)``, the
    report notes that it was built from the truncated tail.
    """
    lines = ["=== profile ==="]
    if total is not None and total > len(events):
        lines.append(
            f"(truncated: report built from the last {len(events)} of "
            f"{total} event(s); early counts are undercounted)"
        )

    spans = span_profile(events)
    if spans:
        lines.append(f"top {min(top, len(spans))} span(s) by self time:")
        lines.append(f"  {'span':<20} {'count':>6} {'total':>10} {'self':>10}")
        for stats in spans[:top]:
            lines.append(
                f"  {stats.name:<20} {stats.count:>6} "
                f"{stats.total_s * 1000:>8.2f}ms {stats.self_s * 1000:>8.2f}ms"
            )

    caches = cache_stats(events)
    solve_total = caches["solve_hits"] + caches["solve_misses"]
    scc_total = caches["scc_hits"] + caches["scc_misses"]
    if solve_total or scc_total:
        lines.append("cache hit ratios:")
        if solve_total:
            lines.append(
                f"  solve: {caches['solve_hits']}/{solve_total} "
                f"({caches['solve_hits'] / solve_total:.0%})"
            )
        if scc_total:
            lines.append(
                f"  scc:   {caches['scc_hits']}/{scc_total} "
                f"({caches['scc_hits'] / scc_total:.0%})"
            )
        work_line = (
            f"  {caches['queries']} query(ies), {caches['iterations']} fixpoint "
            f"iteration(s), {caches['eval_steps']} eval step(s)"
        )
        if caches["worklist_evals"]:
            work_line += f" ({caches['worklist_evals']} transfer eval(s))"
        lines.append(work_line)
        store_reads = caches["store_hits"] + caches["store_misses"]
        if store_reads or caches["store_writes"]:
            lines.append(
                f"  store: {caches['store_hits']}/{store_reads} hit(s) "
                f"({caches['store_hits'] / store_reads:.0%}), "
                f"{caches['store_writes']} write(s)"
                if store_reads
                else f"  store: {caches['store_writes']} write(s)"
            )

    table = iteration_table(events)
    if table:
        lines.append("fixpoint iterations per binding:")
        for name, row in sorted(table.items()):
            status = "widened" if row.widened else (
                "converged" if row.converged else "incomplete"
            )
            ascent = " → ".join(row.values)
            lines.append(f"  {name}: {row.iterations} ({status})  {ascent}")

    worklist = worklist_stats(events)
    if worklist.instr_costs or worklist.pops:
        lines.append(
            f"worklist: {worklist.pops} pop(s), {worklist.pushes} push(es), "
            f"{worklist.transfer_evals} transfer eval(s) over "
            f"{len(worklist.instr_costs)} instruction(s)"
        )
        hottest = worklist.hottest(min(top, 5))
        if hottest:
            lines.append("  hottest instructions:")
            for cost in hottest:
                lines.append(
                    f"    {cost.block}:%{cost.index} {cost.op:<7} {cost.count}"
                )

    runtime = runtime_stats(events)
    if runtime:
        lines.append("storage events:")
        for key in sorted(runtime):
            lines.append(f"  {key}: {runtime[key]}")

    if len(lines) == 1:
        lines.append("(no events)")
    return "\n".join(lines) + "\n"
