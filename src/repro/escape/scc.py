"""Strongly connected components of a letrec binding graph.

The letrec fixpoint does not have to be solved jointly: bindings only
interact through references, so the binding graph's condensation is a DAG
of mutually recursive knots.  Solving each strongly connected component in
topological (callees-first) order yields the same least fixpoint as the
joint Kleene iteration, and is what lets the query engine
(:mod:`repro.query`) cache and reuse per-component environments — a pinned
query re-solves only the components its pin's types actually reach.

The decomposition is Tarjan's algorithm over the reference edges
``binding → sibling bindings it mentions``; Tarjan emits every component
after all components it points to, which is exactly the solve order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.lang.ast import Binding, Letrec, free_vars


@dataclass(frozen=True)
class BindingSCC:
    """One mutually recursive knot of a letrec.

    ``bindings`` keeps the program's original binding order;
    ``dependencies`` names the *sibling* bindings outside the component
    that any member references (the environments that must be solved
    first).
    """

    bindings: tuple[Binding, ...]
    dependencies: frozenset[str]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(b.name for b in self.bindings)


def binding_references(letrec: Letrec) -> dict[str, frozenset[str]]:
    """For each binding, the sibling bindings its expression mentions."""
    siblings = frozenset(letrec.binding_names())
    return {b.name: free_vars(b.expr) & siblings for b in letrec.bindings}


def binding_sccs(letrec: Letrec) -> list[BindingSCC]:
    """The letrec's components, callees-first (topological order).

    Every component's ``dependencies`` appear in earlier components of the
    returned list; a binding with no sibling references is its own
    singleton component.
    """
    refs = binding_references(letrec)
    program_order = {name: i for i, name in enumerate(letrec.binding_names())}
    counter = itertools.count()
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    stack: list[str] = []
    on_stack: set[str] = set()
    components: list[frozenset[str]] = []

    def connect(name: str) -> None:
        index[name] = low[name] = next(counter)
        stack.append(name)
        on_stack.add(name)
        for ref in sorted(refs[name], key=program_order.__getitem__):
            if ref not in index:
                connect(ref)
                low[name] = min(low[name], low[ref])
            elif ref in on_stack:
                low[name] = min(low[name], index[ref])
        if low[name] == index[name]:
            members: set[str] = set()
            while True:
                popped = stack.pop()
                on_stack.discard(popped)
                members.add(popped)
                if popped == name:
                    break
            components.append(frozenset(members))

    for name in letrec.binding_names():
        if name not in index:
            connect(name)

    sccs: list[BindingSCC] = []
    for members in components:
        bindings = tuple(b for b in letrec.bindings if b.name in members)
        deps = frozenset().union(*(refs[n] for n in members)) - members
        sccs.append(BindingSCC(bindings=bindings, dependencies=deps))
    return sccs
