"""Static verification of abstract-machine code (:mod:`repro.machine`).

Abstractly interprets a compiled :data:`~repro.machine.instructions.Code`
block without running it, tracking three disciplines the machine's dynamic
semantics rely on:

* **operand stack** — no instruction pops an empty stack, and every block
  (the whole program, each branch arm, each closure body) nets exactly one
  pushed value, the invariant the compiler establishes for expressions;
* **environment slots** — every ``Load``/``Store`` names a slot visible in
  the scope chain at that point; an ``EnvRestore`` beyond the block's own
  frames would make the caller's slots dead, so reads after it are reads of
  dead slots;
* **control/regions** — branch arms and closure bodies must be well-formed
  nested code tuples (the structured-code analogue of valid jump targets),
  and ``RegionOpen``/``RegionClose`` must balance within a block.

Machine instructions carry no source spans, so diagnostics locate findings
by *instruction path* (``code[3].then[1]``) in the message context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.diagnostics import CheckSeverity, Diagnostic, rule
from repro.machine.instructions import (
    Apply,
    Branch,
    Code,
    EnvRestore,
    Instr,
    LetrecEnter,
    Load,
    MakeClosure,
    PushBool,
    PushInt,
    PushNil,
    PushPrim,
    RegionClose,
    RegionOpen,
    Store,
)

MCH001 = rule(
    "MCH001",
    "stack-underflow",
    CheckSeverity.ERROR,
    "machine",
    "an instruction pops more operands than the stack holds",
)
MCH002 = rule(
    "MCH002",
    "block-effect",
    CheckSeverity.ERROR,
    "machine",
    "a code block does not net exactly one pushed value",
)
MCH003 = rule(
    "MCH003",
    "dead-slot-read",
    CheckSeverity.ERROR,
    "machine",
    "a Load names a slot no live scope frame binds",
)
MCH004 = rule(
    "MCH004",
    "env-underflow",
    CheckSeverity.ERROR,
    "machine",
    "an EnvRestore pops a frame the block did not push",
)
MCH005 = rule(
    "MCH005",
    "store-outside-frame",
    CheckSeverity.ERROR,
    "machine",
    "a Store targets a slot outside the innermost letrec frame",
)
MCH006 = rule(
    "MCH006",
    "malformed-code",
    CheckSeverity.ERROR,
    "machine",
    "a code block holds something that is not a machine instruction",
)
MCH007 = rule(
    "MCH007",
    "region-imbalance",
    CheckSeverity.ERROR,
    "machine",
    "RegionOpen/RegionClose do not balance within a block",
)


@dataclass
class _BlockState:
    """Abstract machine state local to one block's verification."""

    depth: int = 0  # operand stack, relative to block entry
    regions: int = 0  # regions opened by this block, still open
    frames: int = 0  # scope frames pushed by this block, still live


def verify_code(
    code: Code, scope: "tuple[frozenset[str], ...]" = (), path: str = "code"
) -> list[Diagnostic]:
    """Verify one code block against a scope chain (outermost first).
    Returns every violation found; an empty list certifies the block."""
    out: list[Diagnostic] = []
    _verify_block(code, list(scope), path, out)
    return out


def verify_program_code(code: Code) -> list[Diagnostic]:
    """Verify a whole compiled program (an empty outer scope chain)."""
    return verify_code(code)


def _verify_block(
    code: Code,
    scope: "list[frozenset[str]]",
    path: str,
    out: list[Diagnostic],
) -> None:
    state = _BlockState()
    entry_frames = len(scope)

    def pop(n: int, instr: Instr, where: str) -> None:
        if state.depth < n:
            out.append(
                Diagnostic(
                    MCH001,
                    f"{type(instr).__name__} needs {n} operand(s), "
                    f"stack holds {max(state.depth, 0)}",
                    context=where,
                )
            )
        state.depth -= n

    for index, instr in enumerate(code):
        where = f"{path}[{index}]"
        if not isinstance(instr, Instr):
            out.append(
                Diagnostic(
                    MCH006,
                    f"not an instruction: {instr!r}",
                    context=where,
                )
            )
            continue
        if isinstance(instr, (PushInt, PushBool, PushNil, PushPrim)):
            state.depth += 1
        elif isinstance(instr, Load):
            if not any(instr.name in frame for frame in scope):
                out.append(
                    Diagnostic(
                        MCH003,
                        f"Load {instr.name!r}: no live frame binds it "
                        "(dead or never-bound slot)",
                        context=where,
                    )
                )
            state.depth += 1
        elif isinstance(instr, MakeClosure):
            # The closure captures the current environment; its body runs
            # later with the parameter bound on top of that capture.
            if isinstance(instr.body, tuple):
                _verify_block(
                    instr.body,
                    scope + [frozenset({instr.param})],
                    f"{where}.closure({instr.name or instr.param})",
                    out,
                )
            else:
                out.append(
                    Diagnostic(
                        MCH006,
                        f"closure body is not a code tuple: {type(instr.body).__name__}",
                        context=where,
                    )
                )
            state.depth += 1
        elif isinstance(instr, Apply):
            pop(2, instr, where)
            state.depth += 1
        elif isinstance(instr, Branch):
            pop(1, instr, where)
            for arm, arm_code in (("then", instr.then_code), ("else", instr.else_code)):
                if isinstance(arm_code, tuple):
                    _verify_block(arm_code, scope, f"{where}.{arm}", out)
                else:
                    out.append(
                        Diagnostic(
                            MCH006,
                            f"{arm} arm is not a code tuple: {type(arm_code).__name__}",
                            context=where,
                        )
                    )
            state.depth += 1  # whichever arm runs nets one value
        elif isinstance(instr, LetrecEnter):
            scope.append(frozenset(instr.names))
            state.frames += 1
        elif isinstance(instr, Store):
            pop(1, instr, where)
            if not scope or instr.name not in scope[-1]:
                out.append(
                    Diagnostic(
                        MCH005,
                        f"Store {instr.name!r}: the innermost frame does not "
                        "declare it",
                        context=where,
                    )
                )
        elif isinstance(instr, EnvRestore):
            if state.frames <= 0:
                out.append(
                    Diagnostic(
                        MCH004,
                        "EnvRestore pops the caller's frame; later loads "
                        "read dead slots",
                        context=where,
                    )
                )
                # keep the caller's chain intact for further checking
            else:
                scope.pop()
                state.frames -= 1
        elif isinstance(instr, RegionOpen):
            state.regions += 1
        elif isinstance(instr, RegionClose):
            pop(1, instr, where)  # the region's result value
            state.depth += 1
            if state.regions <= 0:
                out.append(
                    Diagnostic(
                        MCH007,
                        "RegionClose without a matching RegionOpen in this "
                        "block",
                        context=where,
                    )
                )
            else:
                state.regions -= 1
        # unknown Instr subclasses fall through as stack-neutral: new
        # instructions should extend the verifier, not crash it

    if state.depth != 1:
        out.append(
            Diagnostic(
                MCH002,
                f"block nets {state.depth} value(s); every expression block "
                "must net exactly 1",
                context=path,
            )
        )
    if state.regions != 0:
        out.append(
            Diagnostic(
                MCH007,
                f"{state.regions} region(s) left open at block end",
                context=path,
            )
        )
    # restore the caller's view of the scope chain
    while len(scope) > entry_frames:
        scope.pop()
        state.frames -= 1
