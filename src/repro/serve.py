"""``repro serve`` — the always-answer analysis daemon.

A long-running HTTP/JSON service over the same engine the CLI drives,
composed from pieces that already exist: the hardened engine's ``W^τ``
degradation (a request can *always* be answered, just more weakly), the
content-addressed :class:`~repro.store.AnalysisStore` (cross-request SCC
warmth), the :class:`~repro.obs.metrics.MetricsRegistry` (scraped at
``/metrics``), and the resilience policy engine
(:mod:`repro.robust.resilience`) for per-target circuit breaking.

Endpoints (all JSON):

* ``POST /analyze``  — ``{"source": ..., "function"?, "d"?,
  "deadline_ms"?}`` → every global escape test, exact or degraded;
* ``POST /check``    — ``{"source": ..., "passes"?}`` → the static
  checker's diagnostics and counts;
* ``POST /optimize`` — ``{"source": ..., "validate"?, "deadline_ms"?}`` →
  the hardened optimization pipeline's program + degradation report;
* ``GET /metrics``   — the registry as ``name{label=value} value`` lines
  (histograms include p50/p95/p99, so latency SLOs scrape directly);
* ``GET /healthz``   — liveness;
* ``GET /debug/flight`` — the flight recorder's black box right now.

Every request gets a **trace context**: a ``traceparent`` header (W3C
``00-<trace_id>-<span_id>-01``) is honoured — the response joins the
caller's trace as a child hop — and absent one a fresh trace is minted.
Responses echo ``"trace_id"`` so a degraded answer can be correlated with
the daemon's trace shards and flight dumps (`repro explain`).

The degraded-answer contract mirrors the CLI exit taxonomy: a response the
engine had to cut short is still HTTP **200** with ``"degraded": true``
and ``"exit_code": 3`` — degradation is service, not failure.  Only an
input that cannot be answered soundly at all (unparseable, untypeable —
there is no ``W^τ`` without a type) is a client error (400), and only an
unexpected internal fault is a 500; both still carry a structured JSON
body, so *every* request is answered.

Identical in-flight requests are **coalesced** by content digest: the
first becomes the leader, concurrent duplicates wait on its result and are
answered from it (flagged ``"coalesced": true``).  A per-digest circuit
breaker short-circuits targets that keep failing internally to an
immediate degraded answer until a cooldown passes.

The server is a stdlib :class:`~http.server.ThreadingHTTPServer`; SIGTERM
and SIGINT shut it down gracefully (in-flight requests finish, then the
listener closes).
"""

from __future__ import annotations

import hashlib
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.lang.errors import NmlError
from repro.lang.parser import parse_program
from repro.obs import context as obs_context
from repro.obs import tracer as obs
from repro.obs.context import TraceContext
from repro.obs.flight import FlightRecorder, dump_dir_from_env
from repro.obs.metrics import MetricsRegistry
from repro.robust import faults
from repro.robust.budget import AnalysisBudget
from repro.robust.resilience import Resilience, ResiliencePolicy, RetryPolicy

__all__ = ["AnalysisService", "make_server", "serve"]

#: Endpoints the service answers (POST).
ENDPOINTS = ("analyze", "check", "optimize")

#: Refuse absurd request bodies before parsing them.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: How long a coalesced follower waits for its leader before giving up
#: (generous: the leader itself is deadline-bounded).
COALESCE_WAIT_S = 120.0


def request_digest(endpoint: str, payload: dict) -> str:
    """The coalescing/breaker key: a content hash of the endpoint plus the
    canonicalized payload, so identical questions share one execution."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(f"{endpoint}\n{canon}".encode("utf-8")).hexdigest()


class _InFlight:
    """The leader's slot one digest's followers wait on."""

    __slots__ = ("event", "status", "doc")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.status = 500
        self.doc: dict = {"ok": False, "error": "leader never answered"}


class AnalysisService:
    """The transport-independent request engine behind the daemon.

    Owns the shared store, the metrics registry, the resilience state
    (circuit breaker per request digest), and the in-flight coalescing
    table.  :meth:`handle` is thread-safe — the HTTP layer calls it from
    one thread per connection.
    """

    def __init__(
        self,
        store_root: "str | None" = None,
        default_deadline_ms: "float | None" = None,
        policy: ResiliencePolicy | None = None,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
        collector: "str | None" = None,
    ):
        from repro.semantics.gc import COLLECTORS
        from repro.store import AnalysisStore

        self.store = AnalysisStore(store_root) if store_root else None
        self.default_deadline_ms = default_deadline_ms
        #: default collector for validated optimize requests (requests may
        #: override via their ``gc`` field)
        if collector is not None and collector not in COLLECTORS:
            raise ValueError(
                f"unknown collector {collector!r}; expected one of "
                f"{', '.join(COLLECTORS)}"
            )
        self.collector = collector
        self.metrics = metrics or MetricsRegistry()
        #: The daemon's black box (always on; ``/debug/flight`` reads it).
        self.flight = flight or FlightRecorder(
            dump_dir=dump_dir_from_env(), label="serve-flight"
        )
        self.resilience = Resilience(
            policy
            or ResiliencePolicy(
                retry=RetryPolicy(max_attempts=1),  # retries live client-side
                breaker_threshold=3,
                breaker_cooldown_s=5.0,
            )
        )
        self._inflight: dict[str, _InFlight] = {}
        self._lock = threading.Lock()
        self.started_at = time.time()

    # -- the front door ------------------------------------------------------

    def handle(
        self, endpoint: str, payload: dict, traceparent: "str | None" = None
    ) -> tuple[int, dict]:
        """Answer one request: ``(http_status, response_doc)``.  Never
        raises — the always-answer invariant starts here.

        ``traceparent`` (the raw header value, if any) joins the caller's
        trace as a child hop; otherwise a fresh trace is minted.  The
        response echoes the request's ``trace_id`` either way.
        """
        started = time.perf_counter()
        caller = TraceContext.from_traceparent(traceparent or "")
        ctx = caller.child() if caller is not None else TraceContext.mint()
        with obs_context.attach(ctx):
            key = request_digest(endpoint, payload)
            with self._lock:
                leader = key not in self._inflight
                if leader:
                    self._inflight[key] = _InFlight()
                entry = self._inflight[key]
            if not leader:
                entry.event.wait(COALESCE_WAIT_S)
                doc = dict(entry.doc)
                doc["coalesced"] = True
                doc["trace_id"] = ctx.trace_id
                self._note(endpoint, entry.status, doc, started, coalesced=True)
                return entry.status, doc
            try:
                status, doc = self._execute(endpoint, payload, key)
            except Exception as error:  # the backstop: still a JSON answer
                status, doc = 500, {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "exit_code": 1,
                }
                self.resilience.breaker.record_failure(key)
            doc["trace_id"] = ctx.trace_id
            entry.status, entry.doc = status, doc
            with self._lock:
                self._inflight.pop(key, None)
            entry.event.set()
            self._note(endpoint, status, doc, started, coalesced=False)
            return status, doc

    def _note(
        self, endpoint: str, status: int, doc: dict, started: float, coalesced: bool
    ) -> None:
        degraded = bool(doc.get("degraded"))
        self.metrics.inc("serve.requests", endpoint=endpoint, status=str(status))
        if degraded:
            self.metrics.inc("serve.degraded", endpoint=endpoint)
        if coalesced:
            self.metrics.inc("serve.coalesced", endpoint=endpoint)
        self.metrics.observe(
            "serve.latency_s", time.perf_counter() - started, endpoint=endpoint
        )
        open_targets = sum(
            1 for state in self.resilience.breaker.snapshot().values() if state == "open"
        )
        self.metrics.set_gauge("serve.circuit_open_targets", open_targets)
        obs.emit(
            "serve_request",
            endpoint=endpoint,
            status=status,
            degraded=degraded,
            coalesced=coalesced,
        )

    # -- execution -----------------------------------------------------------

    def _deadline_s(self, payload: dict) -> "float | None":
        deadline_ms = payload.get("deadline_ms", self.default_deadline_ms)
        return deadline_ms / 1000.0 if deadline_ms is not None else None

    def _execute(self, endpoint: str, payload: dict, key: str) -> tuple[int, dict]:
        if endpoint not in ENDPOINTS:
            return 404, {"ok": False, "error": f"unknown endpoint {endpoint!r}"}
        if not isinstance(payload, dict) or not isinstance(payload.get("source"), str):
            return 400, {
                "ok": False,
                "error": 'request body must be a JSON object with a "source" string',
                "exit_code": 1,
            }
        if not self.resilience.breaker.allow(key):
            # Known-bad target: the sound immediate answer, not a worker.
            return 200, {
                "ok": True,
                "degraded": True,
                "exit_code": 3,
                "circuit": "open",
                "results": [],
                "reason": "circuit-open",
            }
        faults.check_stage("serve")
        try:
            program = parse_program(payload["source"])
            handler = getattr(self, f"_do_{endpoint}")
            status, doc = handler(program, payload)
        except NmlError as error:
            # Unparseable/untypeable: no W^τ exists, a structured 400 is
            # the only sound answer.  Deterministic, so no breaker charge.
            return 400, {
                "ok": False,
                "error": error.format(),
                "exit_code": 1,
            }
        self.resilience.breaker.record_success(key)
        return status, doc

    def _do_analyze(self, program, payload: dict) -> tuple[int, dict]:
        from repro.escape.engine import validate_engine
        from repro.escape.report import result_dict, stats_dict
        from repro.robust.engine import HardenedAnalysis

        requested = payload.get("engine")
        engine = HardenedAnalysis(
            program,
            budget=AnalysisBudget(deadline_s=self._deadline_s(payload)),
            d=payload.get("d"),
            store=self.store,
            engine=validate_engine(requested) if requested is not None else None,
        )
        names = (
            [payload["function"]]
            if payload.get("function")
            else list(program.binding_names())
        )
        results = []
        degradations = []
        for name in names:
            try:
                robust_results = engine.global_all(name)
            except NmlError as error:
                results.append({"function": name, "error": error.message})
                continue
            for robust in robust_results:
                entry = result_dict(robust.result)
                entry["degraded"] = robust.degraded
                if robust.degraded:
                    entry["degradation"] = {
                        "reason": robust.degradation.reason,
                        "stage": robust.degradation.stage,
                    }
                    degradations.append(robust.degradation.reason)
                results.append(entry)
        degraded = bool(degradations)
        return 200, {
            "ok": True,
            "degraded": degraded,
            "exit_code": 3 if degraded else 0,
            "engine": engine.engine,
            "results": results,
            "stats": stats_dict(engine.session.stats),
        }

    def _do_check(self, program, payload: dict) -> tuple[int, dict]:
        from repro.check import check_program

        passes = payload.get("passes") or None
        report = check_program(program, passes=passes, path=payload.get("path", "<serve>"))
        doc = report.to_json()
        findings = doc["counts"]["error"] + len(doc["pass_errors"])
        doc.update(
            ok=findings == 0,
            degraded=False,
            exit_code=4 if findings else 0,
        )
        return 200, doc

    def _do_optimize(self, program, payload: dict) -> tuple[int, dict]:
        from repro.lang.pretty import pretty_program
        from repro.robust.pipeline import harden_optimize
        from repro.semantics.gc import COLLECTORS

        collector = payload.get("gc", self.collector)
        if collector is not None and collector not in COLLECTORS:
            return 400, {
                "ok": False,
                "error": f"unknown collector {collector!r}; expected one of "
                f"{', '.join(COLLECTORS)}",
            }
        outcome = harden_optimize(
            program,
            budget=AnalysisBudget(deadline_s=self._deadline_s(payload)),
            validate=bool(payload.get("validate")),
            collector=collector,
        )
        degraded = outcome.degraded
        return 200, {
            "ok": True,
            "degraded": degraded,
            "exit_code": 3 if degraded else 0,
            "applied": list(outcome.applied),
            "degradations": [
                {"reason": d.reason, "stage": d.stage} for d in outcome.degradations
            ],
            "program": pretty_program(outcome.program),
        }

    # -- scrape --------------------------------------------------------------

    def metrics_text(self) -> str:
        """The registry (plus store counters and uptime) as one
        ``name{label=value} value`` line per metric."""
        if self.store is not None:
            for name, value in self.store.counters().items():
                self.metrics.set_gauge(f"serve.{name}", value)
        self.metrics.set_gauge("serve.uptime_s", round(time.time() - self.started_at, 3))
        lines = [
            f"{key} {value}" for key, value in self.metrics.snapshot().items()
        ]
        return "\n".join(lines) + "\n"

    def flight_doc(self) -> dict:
        """The black box as JSON (``GET /debug/flight``): recorder stats
        plus the captured window as a validated dump artifact."""
        return {
            "ok": True,
            "captured": len(self.flight.snapshot()),
            "total": self.flight.total,
            "triggers": self.flight.triggers,
            "dumps": [str(path) for path in self.flight.dumps],
            "events": self.flight.dump_events("debug-endpoint"),
        }


# -- the HTTP layer ----------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    service: AnalysisService  # injected by make_server
    quiet = True

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debugging aid
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, doc: dict) -> None:
        self._respond(
            status,
            (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8"),
            "application/json",
        )

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/metrics":
            self._respond(
                200, self.service.metrics_text().encode("utf-8"), "text/plain"
            )
        elif self.path == "/healthz":
            self._respond_json(200, {"ok": True})
        elif self.path == "/debug/flight":
            self._respond_json(200, self.service.flight_doc())
        else:
            self._respond_json(404, {"ok": False, "error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        endpoint = self.path.lstrip("/")
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length > MAX_BODY_BYTES:
                self._respond_json(
                    413, {"ok": False, "error": "request body too large"}
                )
                return
            raw = self.rfile.read(length)
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as error:
            self._respond_json(
                400, {"ok": False, "error": f"bad JSON body: {error}", "exit_code": 1}
            )
            return
        status, doc = self.service.handle(
            endpoint, payload, traceparent=self.headers.get("traceparent")
        )
        self._respond_json(status, doc)


def make_server(
    host: str,
    port: int,
    service: AnalysisService,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server bound to ``host:port`` (pass
    port 0 to let the OS pick; read ``server.server_address``)."""
    handler = type("BoundHandler", (_Handler,), {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8100,
    store_root: "str | None" = None,
    default_deadline_ms: "float | None" = None,
    quiet: bool = True,
    ready_stream=None,
    collector: "str | None" = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns 0 on graceful exit.

    Prints one ``listening on http://host:port`` line (to ``ready_stream``,
    default stderr) once the socket is bound, so wrappers can wait for
    readiness, and a shutdown line after the last request drains.
    """
    from contextlib import ExitStack

    stream = ready_stream or sys.stderr
    service = AnalysisService(
        store_root=store_root,
        default_deadline_ms=default_deadline_ms,
        collector=collector,
    )
    server = make_server(host, port, service, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]

    def _shutdown(signum, frame) -> None:
        # serve_forever blocks this thread; shutdown() must come from
        # another one, and then joins the poll loop gracefully.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"repro serve: listening on http://{bound_host}:{bound_port}", file=stream, flush=True)
    with ExitStack() as stack:
        # Always-on flight recording: request/degradation events from
        # every handler thread land in the service's bounded ring, so a
        # crash-landing daemon leaves a black box.  If the CLI already
        # activated a tracer (e.g. --trace), join it instead of replacing.
        active = obs.tracing()
        if active is not None:
            active.sinks.append(service.flight)
            stack.callback(active.sinks.remove, service.flight)
        else:
            stack.enter_context(obs.activate(obs.Tracer(sinks=[service.flight])))
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            server.server_close()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            print("repro serve: shut down cleanly", file=stream, flush=True)
    return 0
