"""Type representation and unification tests."""

import pytest

from repro.lang.errors import TypeInferenceError
from repro.types.types import (
    BOOL,
    INT,
    TFun,
    TList,
    TVar,
    TypeScheme,
    arity,
    contains_function,
    fresh_tvar,
    free_type_vars,
    fun_args,
    list_of,
    max_spines_in,
    spines,
)
from repro.types.unify import Substitution, unify


class TestTypeStructure:
    def test_str_rendering(self):
        assert str(TFun(INT, TList(INT))) == "int -> int list"

    def test_function_argument_parenthesized(self):
        assert str(TFun(TFun(INT, INT), BOOL)) == "(int -> int) -> bool"

    def test_list_of_functions_parenthesized(self):
        assert str(TList(TFun(INT, INT))) == "(int -> int) list"

    def test_types_are_hashable_and_equal_structurally(self):
        assert TList(INT) == TList(INT)
        assert hash(TFun(INT, BOOL)) == hash(TFun(INT, BOOL))

    def test_fresh_tvars_are_distinct(self):
        assert fresh_tvar() != fresh_tvar()


class TestSpines:
    @pytest.mark.parametrize(
        "ty,expected",
        [
            (INT, 0),
            (BOOL, 0),
            (TFun(INT, INT), 0),
            (TList(INT), 1),
            (TList(TList(INT)), 2),
            (list_of(INT, 3), 3),
            (TList(TFun(INT, INT)), 1),
        ],
    )
    def test_spine_count(self, ty, expected):
        assert spines(ty) == expected

    def test_tvar_counts_zero(self):
        assert spines(TVar(999)) == 0

    def test_max_spines_in_looks_inside_functions(self):
        ty = TFun(TList(TList(INT)), TList(INT))
        assert max_spines_in(ty) == 2

    def test_max_spines_in_list_of_lists_of_functions(self):
        ty = TList(TFun(list_of(INT, 3), INT))
        assert max_spines_in(ty) == 3


class TestDecomposition:
    def test_fun_args(self):
        args, result = fun_args(TFun(INT, TFun(BOOL, TList(INT))))
        assert args == [INT, BOOL]
        assert result == TList(INT)

    def test_arity(self):
        assert arity(INT) == 0
        assert arity(TFun(INT, TFun(INT, INT))) == 2

    def test_contains_function(self):
        assert contains_function(TList(TFun(INT, INT)))
        assert not contains_function(TList(TList(INT)))


class TestUnify:
    def test_unify_identical_bases(self):
        subst = Substitution()
        unify(INT, INT, subst)
        assert subst.mapping == {}

    def test_unify_var_binds(self):
        subst = Substitution()
        v = fresh_tvar()
        unify(v, TList(INT), subst)
        assert subst.apply(v) == TList(INT)

    def test_unify_through_structure(self):
        subst = Substitution()
        v = fresh_tvar()
        unify(TList(v), TList(BOOL), subst)
        assert subst.apply(v) == BOOL

    def test_unify_functions(self):
        subst = Substitution()
        a, b = fresh_tvar(), fresh_tvar()
        unify(TFun(a, b), TFun(INT, TList(INT)), subst)
        assert subst.apply(a) == INT
        assert subst.apply(b) == TList(INT)

    def test_var_chains_resolve(self):
        subst = Substitution()
        a, b = fresh_tvar(), fresh_tvar()
        unify(a, b, subst)
        unify(b, INT, subst)
        assert subst.apply(a) == INT

    def test_mismatch_raises(self):
        with pytest.raises(TypeInferenceError):
            unify(INT, BOOL, Substitution())

    def test_list_vs_function_mismatch(self):
        with pytest.raises(TypeInferenceError):
            unify(TList(INT), TFun(INT, INT), Substitution())

    def test_occurs_check(self):
        subst = Substitution()
        v = fresh_tvar()
        with pytest.raises(TypeInferenceError):
            unify(v, TList(v), subst)

    def test_self_unification_is_noop(self):
        subst = Substitution()
        v = fresh_tvar()
        unify(v, v, subst)
        assert subst.mapping == {}


class TestScheme:
    def test_mono_scheme_str(self):
        assert str(TypeScheme.mono(INT)) == "int"

    def test_poly_scheme_str(self):
        v = TVar(7)
        assert "forall" in str(TypeScheme((v,), TList(v)))

    def test_free_type_vars(self):
        v = fresh_tvar()
        assert free_type_vars(TFun(v, TList(v))) == {v}
