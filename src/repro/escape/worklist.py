"""The worklist fixpoint engine over the flat IR (:mod:`repro.ir`).

This is the production replacement for the AST-walking Kleene iteration of
:class:`~repro.escape.abstract.AbstractEvaluator` (kept as the ``legacy``
differential-testing oracle).  Same lattice, same transfer functions, same
least fixpoint — the chaotic-iteration theorem guarantees the limit of a
monotone system does not depend on evaluation order, so per-binding lattice
*fingerprints are bit-identical* between the two engines — but the work is
organised around change instead of rounds:

* each letrec binding is lowered once to a :class:`~repro.ir.nodes.Block`
  (one instruction per AST node, explicit def–use edges, per-instruction
  transitive environment-dependency sets);
* a worklist of bindings is seeded in program order; a popped binding is
  re-evaluated and its dependents re-queued only when its fingerprint
  actually changed (a non-self-recursive binding therefore converges after
  a single evaluation — no confirming pass);
* within a binding, instruction results are cached between evaluations and
  only the instructions whose dependency set intersects the changed names
  are re-executed (every re-execution is one *transfer eval*, the unit
  :class:`~repro.query.QueryStats` counts as ``worklist_evals``);
* closure applications are memoized (abstract evaluation is pure), so the
  extensional fingerprint sampling that detects convergence re-applies
  prior-iterate closures at cached points instead of re-running bodies;
* a union-find partition (:class:`AliasPartition`) is grown during the
  same pass: every value-flow edge (load, apply, branch join, closure
  capture) unions the participating storage classes, yielding the may-share
  name classes that bound Theorem-2 sharing facts without a separate walk.

Budget accounting matches the hardened engine's expectations: every
transfer eval ticks ``meter.tick_eval()`` (so ``max_eval_steps`` and
deadlines cut the worklist short exactly like legacy eval steps) and every
binding evaluation ticks ``tick_iteration()`` — a breached budget degrades
to ``W^τ`` through the same code paths.
"""

from __future__ import annotations

from collections import deque

from repro.escape.abstract import (
    AbsEnv,
    AbstractEvaluator,
    FixpointTrace,
    fingerprint,
)
from repro.escape.domain import BOTTOM, ClosureFun, EscapeValue
from repro.escape.primitives import abstract_prim
from repro.escape.worst import worst_fun
from repro.ir.lower import lower_expr
from repro.ir.nodes import Block, Instr
from repro.lang.ast import Binding, Expr, Letrec
from repro.lang.errors import AnalysisError
from repro.obs import tracer as obs
from repro.robust import faults

__all__ = ["AliasPartition", "WorklistEvaluator"]


class AliasPartition:
    """A union-find partition over storage classes.

    Tokens are hashable labels: ``("name", x)`` for an environment binding,
    ``("v", block_label, index)`` for one instruction's value.  Two tokens
    in the same class *may* share structure (a sound over-approximation:
    fresh constructions start singleton classes, and every value-flow edge
    unions).  Theorem 2 then refines the *top spines* of a class — the
    partition answers "which names can a result possibly share with at
    all", the escape lattice answers "how deep".
    """

    def __init__(self) -> None:
        self._parent: dict = {}

    def _find(self, token):
        parent = self._parent
        root = parent.setdefault(token, token)
        while root != parent[root]:
            root = parent[root]
        while parent[token] != root:  # path compression
            parent[token], token = root, parent[token]
        return root

    def union(self, *tokens) -> None:
        if not tokens:
            return
        roots = [self._find(t) for t in tokens]
        anchor = roots[0]
        for root in roots[1:]:
            if root != anchor:
                self._parent[root] = anchor

    def may_share(self, a, b) -> bool:
        return self._find(a) == self._find(b)

    def class_of(self, token) -> frozenset:
        root = self._find(token)
        return frozenset(t for t in self._parent if self._find(t) == root)

    def name_classes(self) -> dict[str, frozenset[str]]:
        """Per environment name: the set of names it may share with."""
        by_root: dict = {}
        for token in self._parent:
            if isinstance(token, tuple) and token[0] == "name":
                by_root.setdefault(self._find(token), set()).add(token[1])
        return {
            name: frozenset(names)
            for names in by_root.values()
            for name in names
        }


class _BindingState:
    """The per-binding incremental evaluation state of one solve."""

    __slots__ = ("block", "values", "env_seen")

    def __init__(self, block: Block) -> None:
        self.block = block
        #: Cached per-instruction values from the previous evaluation.
        self.values: list[EscapeValue | None] = [None] * len(block.instrs)
        #: The environment values (by identity) the cache was computed at.
        self.env_seen: dict[str, EscapeValue | None] = {}


class WorklistEvaluator(AbstractEvaluator):
    """Evaluates the abstract escape semantics over lowered IR blocks.

    Shares the full public surface of :class:`AbstractEvaluator` (``eval``,
    ``solve_bindings``, ``steps``, ``traces``, ``iterates``, ``memo``,
    ``values_equal``/``value_leq``), so closures, serialization, and the
    escape tests are engine-agnostic.  ``steps`` counts *transfer evals* —
    instructions actually executed — the quantity reported as
    ``worklist_evals``.
    """

    def __init__(self, chain, max_iterations=None, meter=None):
        # Memoization is always on: it is what makes the extensional
        # fingerprint sampling cheap enough to run per binding update.
        super().__init__(chain, max_iterations=max_iterations, memoize=True, meter=meter)
        #: Lowered blocks keyed by ``id`` of their source expression (the
        #: expression is retained so the id cannot be recycled).
        self._blocks: dict[int, tuple[Expr, Block]] = {}
        #: Per-block per-instruction execution counts, flushed as
        #: ``transfer_eval`` events at the end of each solve.
        self._costs: dict[Block, dict[int, int]] = {}
        #: Persistent incremental state per block executed through ``eval``
        #: (closure bodies, escape-test probes): consecutive executions of
        #: the same block — fingerprint sampling varies one argument at a
        #: time — re-run only the instructions whose inputs changed.
        self._exec_states: dict[Block, _BindingState] = {}
        #: Blocks currently on the execution stack; a re-entrant execution
        #: (recursion through the same body) runs fresh, without touching
        #: the incremental state of the activation below it.
        self._active: set[Block] = set()
        #: May-share classes grown during evaluation (see AliasPartition).
        self.aliases = AliasPartition()

    # -- lowering ----------------------------------------------------------

    def _register_block(self, expr: Expr, block: Block) -> None:
        self._blocks.setdefault(id(expr), (expr, block))

    def _expr_block(self, expr: Expr, label: str = "<expr>") -> Block:
        hit = self._blocks.get(id(expr))
        if hit is not None:
            return hit[1]
        block = lower_expr(expr, label=label)
        obs.emit("ir_lower", name=label, instructions=block.size())
        self._blocks[id(expr)] = (expr, block)
        return block

    def _binding_block(self, binding: Binding) -> Block:
        hit = self._blocks.get(id(binding.expr))
        if hit is not None:
            return hit[1]
        block = lower_expr(binding.expr, label=binding.name)
        obs.emit(
            "ir_lower",
            name=binding.name,
            instructions=block.size(),
            # Definition site, so `repro explain` can point at the source.
            span=str(binding.span),
        )
        self._blocks[id(binding.expr)] = (binding.expr, block)
        return block

    # -- evaluation --------------------------------------------------------

    def eval(self, expr: Expr, env: AbsEnv) -> EscapeValue:
        """``E⟦expr⟧env`` via the expression's lowered block."""
        return self._exec_block(self._expr_block(expr), env)

    def _exec_block(self, block: Block, env: AbsEnv) -> EscapeValue:
        """Execute ``block`` under ``env``, incrementally when possible.

        The block keeps a persistent instruction-value cache; only the
        instructions whose dependency set intersects the names whose value
        changed since the last execution are re-run (identity comparison —
        the solver keeps the old value object on a stable fingerprint, so
        object identity is exact change detection).  Re-entrant executions
        (the block is already running further up the stack) evaluate fresh.
        """
        if block in self._active:
            values: list[EscapeValue | None] = [None] * len(block.instrs)
            for i, ins in enumerate(block.instrs):
                values[i] = self._exec(block, i, ins, values, env)
            return values[block.result]
        state = self._exec_states.get(block)
        if state is None:
            state = _BindingState(block)
            self._exec_states[block] = state
        self._active.add(block)
        try:
            return self._eval_binding(state, env)
        except BaseException:
            # A partial re-execution (budget breach, injected fault) leaves
            # the cache mixing old and new inputs — drop it entirely.
            state.values = [None] * len(block.instrs)
            state.env_seen = {}
            raise
        finally:
            self._active.discard(block)

    def _eval_binding(self, state: _BindingState, env: AbsEnv) -> EscapeValue:
        """Re-evaluate one binding's block, re-executing only the
        instructions whose environment dependencies changed."""
        block = state.block
        seen = state.env_seen
        changed = {
            name
            for name in block.free_names
            if env.get(name) is not seen.get(name)
        }
        values = state.values
        deps = block.deps
        for i, ins in enumerate(block.instrs):
            if values[i] is not None and not (deps[i] & changed):
                continue
            values[i] = self._exec(block, i, ins, values, env)
        state.env_seen = {name: env.get(name) for name in block.free_names}
        return values[block.result]

    def _exec(
        self,
        block: Block,
        i: int,
        ins: Instr,
        values: list,
        env: AbsEnv,
    ) -> EscapeValue:
        self.steps += 1
        if self.meter is not None:
            self.meter.tick_eval()
        costs = self._costs.setdefault(block, {})
        costs[i] = costs.get(i, 0) + 1
        op = ins.op
        token = ("v", block.label, i)
        if op == "const":
            return BOTTOM
        if op == "prim":
            return abstract_prim(ins.node)
        if op == "load":
            value = env.get(ins.name)
            if value is None:
                raise AnalysisError(
                    f"identifier {ins.name!r} is not in the abstract environment",
                    ins.span,
                )
            self.aliases.union(token, ("name", ins.name))
            return value
        if op == "apply":
            fn_idx, arg_idx = ins.operands
            self.aliases.union(
                token,
                ("v", block.label, fn_idx),
                ("v", block.label, arg_idx),
            )
            return values[fn_idx].apply(values[arg_idx])
        if op == "branch":
            _, then_idx, else_idx = ins.operands
            self.aliases.union(
                token,
                ("v", block.label, then_idx),
                ("v", block.label, else_idx),
            )
            return values[then_idx].join(values[else_idx])
        if op == "close":
            contained = self.chain.bottom
            for name in ins.names:
                bound = env.get(name)
                if bound is None:
                    raise AnalysisError(
                        f"free identifier {name!r} of a lambda is not in the "
                        "abstract environment",
                        ins.span,
                    )
                contained = contained.join(bound.be)
            self.aliases.union(token, *(("name", name) for name in ins.names))
            body = ins.blocks[0]
            # Later applications of the closure go through ``eval`` on the
            # lambda's body node — register the already-lowered block so
            # they reuse it (stable identity, shared cost attribution).
            self._register_block(ins.node.body, body)
            captured = dict(env)
            return EscapeValue(
                contained, ClosureFun(ins.param, ins.node.body, captured, self)
            )
        if op == "enter":
            for binding, nested in zip(ins.node.bindings, ins.blocks[:-1]):
                self._register_block(binding.expr, nested)
            solved = self.solve_bindings(ins.node, env)
            body = ins.blocks[-1]
            result = self._exec_block(body, solved)
            self.aliases.union(token, ("v", body.label, body.result))
            return result
        raise AnalysisError(f"unknown IR opcode {op!r}", ins.span)

    # -- the worklist fixpoint ---------------------------------------------

    def solve_bindings(self, letrec: Letrec, env: AbsEnv) -> AbsEnv:
        """The least fixpoint of the letrec bindings by worklist iteration,
        returned as ``env`` extended with the converged values."""
        faults.check_stage("solve")
        bindings = letrec.bindings
        if not bindings:
            return env
        for binding in bindings:
            if binding.expr.ty is None:
                raise AnalysisError(
                    f"binding {binding.name!r} is not type-annotated; "
                    "run infer_program before the escape analysis",
                    binding.span,
                )

        cap = self.max_iterations or self.default_iteration_cap(len(bindings))
        names = [b.name for b in bindings]
        types = {b.name: b.expr.ty for b in bindings}
        states = {b.name: _BindingState(self._binding_block(b)) for b in bindings}
        #: Intra-knot def–use edges: who must re-run when ``n`` changes.
        dependents = {
            n: tuple(m for m in names if n in states[m].block.free_names)
            for n in names
        }
        traces = {b.name: FixpointTrace(b.name) for b in bindings}
        self.traces.extend(traces.values())

        current: AbsEnv = {name: BOTTOM for name in names}
        fps = {name: fingerprint(BOTTOM, types[name], self.chain) for name in names}
        iterates: list[AbsEnv] = [dict(current)]
        tracing = obs.tracing()

        queue = deque(names)
        queued = set(names)
        evals = {name: 0 for name in names}
        widened = False
        while queue:
            name = queue.popleft()
            queued.discard(name)
            if tracing is not None:
                tracing.emit("worklist_pop", name=name)
            if evals[name] >= cap:
                widened = True
                break
            evals[name] += 1
            if self.meter is not None:
                self.meter.tick_iteration()
            iter_env = {**env, **current}
            new_value = self._eval_binding(states[name], iter_env)
            new_fp = fingerprint(new_value, types[name], self.chain)
            traces[name].fingerprints.append(new_fp)
            if tracing is not None:
                tracing.emit(
                    "fixpoint_iteration",
                    iteration=evals[name],
                    values={name: str(new_fp)},
                )
            if new_fp != fps[name]:
                # The value rose: install it and re-queue the dependents.
                # (On a stable fingerprint the *old* object is kept, so
                # identity comparison doubles as change detection and the
                # memo keeps serving the previous iterate's applications.)
                current[name] = new_value
                fps[name] = new_fp
                iterates.append(dict(current))
                for dependent in dependents[name]:
                    if dependent not in queued:
                        queue.append(dependent)
                        queued.add(dependent)
                        if tracing is not None:
                            tracing.emit("worklist_push", name=dependent)
            else:
                iterates.append(dict(current))

        if widened:
            # Safety net, same as legacy: widen to the worst case.
            for binding in bindings:
                current[binding.name] = EscapeValue(
                    self.chain.top, worst_fun(binding.expr.ty)
                )
                traces[binding.name].widened = True
            if tracing is not None:
                tracing.emit("fixpoint_widened", names=names, cap=cap)
        else:
            for trace in traces.values():
                trace.converged = True
            if tracing is not None:
                tracing.emit(
                    "fixpoint_converged",
                    names=names,
                    iterations=max(evals.values()) if evals else 0,
                )

        self.iterates = iterates
        for name in names:
            block = states[name].block
            self.aliases.union(("name", name), ("v", block.label, block.result))
        self._flush_costs(tracing)
        return {**env, **current}

    def _flush_costs(self, tracing) -> None:
        """Emit cumulative per-instruction ``transfer_eval`` events."""
        if tracing is not None:
            for block, counts in self._costs.items():
                for index in sorted(counts):
                    tracing.emit(
                        "transfer_eval",
                        block=block.label,
                        index=index,
                        op=block.instrs[index].op,
                        count=counts[index],
                    )
        self._costs.clear()

    # -- sharing -----------------------------------------------------------

    def sharing_classes(self) -> dict[str, frozenset[str]]:
        """Per binding name: the names its value may share structure with
        (the union-find classes grown during this evaluator's pass)."""
        return self.aliases.name_classes()
