"""The §3.5 safety property, validated empirically:

    observed escapement  ⊑  exact escapement  ⊑  abstract escapement

for every corpus function and for hypothesis-generated inputs.  "Whenever an
object escapes under the exact escape semantics it escapes in the abstract
escape semantics."
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import exact_escape, observe_escape
from repro.lang.prelude import prelude_program

int_lists = st.lists(st.integers(min_value=-50, max_value=50), max_size=8)
nested_lists = st.lists(int_lists, max_size=5)


def abstract_escaping_spines(program, function, i):
    analysis = EscapeAnalysis(program)
    result = analysis.global_test(function, i)
    if result.nothing_escapes:
        return 0, True
    return result.escaping_spines, False


class TestCorpusSafety:
    def test_abstract_dominates_observed(self, corpus_case):
        program, function, args, i = corpus_case
        observed = observe_escape(program, function, args, i)
        analysis = EscapeAnalysis(program)
        abstract = analysis.global_test(function, i)
        if observed.escaped:
            assert not abstract.nothing_escapes, (
                f"{function}@{i}: dynamic escape {observed.escaped_levels} "
                f"but abstract says nothing escapes"
            )
            assert observed.escaping_spines <= abstract.escaping_spines


class TestRandomizedSafety:
    @settings(max_examples=30, deadline=None)
    @given(xs=int_lists, ys=int_lists)
    def test_append_first_arg(self, xs, ys):
        program = prelude_program(["append"])
        observed = observe_escape(program, "append", [xs, ys], 1)
        # abstract G(append,1) = <1,0>: spine cells never escape
        assert all(level > 1 for level in observed.escaped_levels)

    @settings(max_examples=30, deadline=None)
    @given(xs=int_lists)
    def test_ps_spine_never_escapes(self, xs):
        program = prelude_program(["ps"])
        observed = observe_escape(program, "ps", [xs], 1)
        assert not observed.escaped  # G(ps,1) = <1,0> permits only elements

    @settings(max_examples=30, deadline=None)
    @given(xs=nested_lists)
    def test_concat_outer_spines_never_escape(self, xs):
        program = prelude_program(["concat"])
        observed = observe_escape(program, "concat", [xs], 1)
        # G(concat,1) = <1,0> at 2 spines: levels 1 and 2 must stay home
        assert not observed.escaped_levels & {1, 2}

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=0, max_value=6), xs=int_lists)
    def test_take_and_drop(self, n, xs):
        program = prelude_program(["take", "drop"])
        take_obs = observe_escape(program, "take", [n, xs], 2)
        assert not take_obs.escaped  # take copies: <1,0>
        drop_obs = observe_escape(program, "drop", [n, xs], 2)
        assert drop_obs.escaping_spines <= 1  # G(drop,2) = <1,1>

    @settings(max_examples=20, deadline=None)
    @given(xs=int_lists)
    def test_exact_equals_observed_on_random_inputs(self, xs):
        program = prelude_program(["rev_acc"])
        for i in (1, 2):
            dynamic = observe_escape(program, "rev_acc", [xs, [0, 1]], i)
            exact = exact_escape(program, "rev_acc", [xs, [0, 1]], i)
            assert dynamic.escaped_levels == exact.escaped_levels


class TestLocalSafety:
    def test_local_dominates_observed_for_map_call(self, map_pair):
        analysis = EscapeAnalysis(map_pair)
        local = analysis.local_test("map pair [[1, 2], [3, 4]]", i=2)
        from repro.escape.exact import Source

        observed = observe_escape(map_pair, "map", [Source("pair"), [[1, 2], [3, 4]]], 2)
        if observed.escaped:
            assert not local.nothing_escapes
            assert observed.escaping_spines <= local.escaping_spines
