"""The tuple (product) extension — §7's "Our approach for lists could be
applied to other data structures such as tuples".

Covers: surface syntax, typing, the standard semantics, GC reachability,
the abstract escape semantics (collapse-by-join with identity projections),
both ground-truth observers, polymorphic invariance with tuple fillers, and
the headline validation: the tuple-returning SPLIT produces exactly the
paper's escape table.
"""

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import exact_escape, observe_escape
from repro.escape.poly import check_invariance
from repro.lang.errors import EvalError, TypeInferenceError
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import prelude_program
from repro.lang.pretty import pretty
from repro.semantics.interp import Interpreter, run_program
from repro.types.infer import infer_expr, infer_program
from repro.types.types import INT, BOOL, TList, TProd, spines, max_spines_in


def run(names, expr):
    interp = Interpreter()
    return interp.to_python(interp.eval_in(prelude_program(names), expr))


class TestSyntax:
    def test_tuple_literal_desugars_to_mkpair(self):
        assert parse_expr("(1, 2)") == parse_expr("mkpair 1 2")

    def test_triple_right_nests(self):
        assert parse_expr("(1, 2, 3)") == parse_expr("mkpair 1 (mkpair 2 3)")

    def test_parenthesized_expr_is_not_a_tuple(self):
        assert parse_expr("(1 + 2)") == parse_expr("1 + 2")

    def test_tuple_of_expressions(self):
        assert parse_expr("(1 + 2, [3])") == parse_expr("mkpair (1 + 2) (cons 3 nil)")

    def test_pretty_prints_tuple_notation(self):
        assert pretty(parse_expr("(1, 2)")) == "(1, 2)"

    def test_pretty_round_trip(self):
        for source in ["(1, 2)", "(1, (2, 3))", "(fst p, snd p)", "[(1, 2), (3, 4)]"]:
            expr = parse_expr(source)
            assert parse_expr(pretty(expr)) == expr


class TestTyping:
    def test_tuple_type(self):
        assert infer_expr(parse_expr("(1, true)")) == TProd(INT, BOOL)

    def test_fst_snd(self):
        assert infer_expr(parse_expr("fst (1, true)")) == INT
        assert infer_expr(parse_expr("snd (1, true)")) == BOOL

    def test_heterogeneous_components_allowed(self):
        assert infer_expr(parse_expr("([1], true)")) == TProd(TList(INT), BOOL)

    def test_tuple_str_renders_with_parens_in_lists(self):
        assert str(TList(TProd(INT, BOOL))) == "(int * bool) list"

    def test_fst_of_non_tuple_rejected(self):
        with pytest.raises(TypeInferenceError):
            infer_expr(parse_expr("fst 1"))

    def test_tuples_have_no_spines(self):
        assert spines(TProd(TList(INT), TList(INT))) == 0

    def test_max_spines_looks_inside_tuples(self):
        assert max_spines_in(TProd(TList(TList(INT)), INT)) == 2

    def test_prelude_tuple_schemes(self):
        from repro.types.instantiate import simplest_instance

        result = infer_program(prelude_program(["zip", "unzip", "swap"]))
        assert (
            str(simplest_instance(result.scheme("zip")))
            == "int list -> int list -> (int * int) list"
        )
        assert (
            str(simplest_instance(result.scheme("unzip")))
            == "(int * int) list -> int list * int list"
        )
        assert str(simplest_instance(result.scheme("swap"))) == "int * int -> int * int"


class TestStandardSemantics:
    def test_construct_and_project(self):
        assert run([], "fst (1, 2)") == 1
        assert run([], "snd (1, 2)") == 2

    def test_nested(self):
        assert run([], "fst (snd (1, (2, 3)))") == 2

    def test_tuple_of_lists(self):
        assert run([], "(car (fst ([1, 2], [3])), snd ([1, 2], [3]))") == (1, [3])

    def test_zip(self):
        assert run(["zip"], "zip [1, 2, 3] [4, 5, 6]") == [(1, 4), (2, 5), (3, 6)]

    def test_zip_uneven(self):
        assert run(["zip"], "zip [1] [4, 5]") == [(1, 4)]

    def test_unzip_inverts_zip(self):
        assert run(["zip", "unzip"], "unzip (zip [1, 2] [5, 6])") == ([1, 2], [5, 6])

    def test_swap_dup(self):
        assert run(["swap"], "swap (1, 2)") == (2, 1)
        assert run(["dup"], "dup 7") == (7, 7)

    def test_split_pair_matches_split(self):
        pair_result = run(["split_pair"], "split_pair 3 [5, 2, 7, 1] nil nil")
        list_result = run(["split"], "split 3 [5, 2, 7, 1] nil nil")
        assert pair_result == tuple(list_result)

    def test_ps_pair_sorts(self):
        assert run(["ps_pair"], "ps_pair [5, 2, 7, 1, 3, 4]") == [1, 2, 3, 4, 5, 7]

    def test_fst_of_int_is_runtime_error(self):
        program = parse_program("fst (car [1])")
        with pytest.raises(EvalError):
            run_program(program)

    def test_interop_round_trip(self):
        interp = Interpreter()
        for obj in [(1, 2), (1, (2, 3)), ([1], True), (1, [2, 3])]:
            assert interp.to_python(interp.from_python(obj)) == obj

    def test_gc_traces_through_tuples(self):
        # a list reachable only through a tuple must survive collection
        from repro.semantics.gc import MarkSweepGC
        from repro.semantics.values import VTuple, VInt

        interp = Interpreter()
        lst = interp.from_python([1, 2, 3])
        root = VTuple(VInt(0), lst)
        stats = MarkSweepGC(interp.heap).collect([root])
        assert stats.swept == 0
        assert len(interp.heap.reachable_cells(root)) == 3

    def test_dup_aliases_not_copies(self):
        interp = Interpreter()
        value = interp.eval_in(prelude_program(["dup"]), "dup [1, 2]")
        from repro.semantics.values import VTuple

        assert isinstance(value, VTuple)
        assert value.fst is value.snd  # same cells: (x, x) shares


TUPLE_GOLDEN = [
    ("swap", ["<1,0>"]),
    ("dup", ["<1,0>"]),
    ("zip", ["<1,0>", "<1,0>"]),
    ("unzip", ["<1,0>"]),
    ("split_pair", ["<0,0>", "<1,0>", "<1,1>", "<1,1>"]),
    ("ps_pair", ["<1,0>"]),
    ("pair_up", ["<1,0>"]),
    ("firsts", ["<1,0>"]),
]


class TestEscapeAnalysis:
    @pytest.mark.parametrize("function,expected", TUPLE_GOLDEN, ids=lambda v: v if isinstance(v, str) else "")
    def test_golden(self, function, expected):
        analysis = EscapeAnalysis(prelude_program([function]))
        rows = analysis.global_all(function)
        assert [str(r.result) for r in rows] == expected

    def test_split_pair_reproduces_paper_split_table(self):
        """The tuple-returning SPLIT has the same escape behaviour as the
        paper's two-spine-list encoding — the §7 extension is conservative
        over the paper's results."""
        pair_rows = EscapeAnalysis(prelude_program(["split_pair"])).global_all("split_pair")
        list_rows = EscapeAnalysis(prelude_program(["split"])).global_all("split")
        assert [str(r.result) for r in pair_rows] == [str(r.result) for r in list_rows]

    def test_ps_pair_matches_ps(self):
        pair = EscapeAnalysis(prelude_program(["ps_pair"])).global_test("ps_pair", 1)
        ps = EscapeAnalysis(prelude_program(["ps"])).global_test("ps", 1)
        assert str(pair.result) == str(ps.result) == "<1,0>"

    def test_zip_spine_never_escapes(self):
        # zip copies both spines into fresh cells; only elements flow in.
        result = EscapeAnalysis(prelude_program(["zip"])).global_test("zip", 1)
        assert result.non_escaping_spines == 1

    def test_local_test_with_tuple_arg(self):
        analysis = EscapeAnalysis(prelude_program(["swap"]))
        result = analysis.local_test("swap ([1], [2])", i=1)
        assert result.param_spines == 0  # tuples are spine-less
        assert not result.nothing_escapes  # the components are returned


class TestGroundTruth:
    @pytest.mark.parametrize(
        "names,function,args,i",
        [
            (["zip"], "zip", [[1, 2], [3, 4]], 1),
            (["zip"], "zip", [[1, 2], [3, 4]], 2),
            (["unzip"], "unzip", [[(1, 2), (3, 4)]], 1),
            (["ps_pair"], "ps_pair", [[5, 2, 7, 1]], 1),
            (["firsts"], "firsts", [[(1, 2), (3, 4)]], 1),
            (["pair_up"], "pair_up", [[1, 2, 3, 4]], 1),
        ],
    )
    def test_exact_agrees_with_observer(self, names, function, args, i):
        program = prelude_program(names)
        dynamic = observe_escape(program, function, args, i)
        exact = exact_escape(program, function, args, i)
        assert dynamic.escaped_levels == exact.escaped_levels

    def test_abstract_dominates_for_tuple_functions(self):
        for names, function, args, i in [
            (["zip"], "zip", [[1, 2], [3, 4]], 1),
            (["ps_pair"], "ps_pair", [[5, 2, 7, 1]], 1),
            (["firsts"], "firsts", [[(1, 2), (3, 4)]], 1),
        ]:
            program = prelude_program(names)
            observed = observe_escape(program, function, args, i)
            abstract = EscapeAnalysis(program).global_test(function, i)
            if observed.escaped:
                assert not abstract.nothing_escapes
                assert observed.escaping_spines <= abstract.escaping_spines


class TestPolymorphicInvariance:
    def test_invariance_with_tuple_fillers(self):
        from repro.types.types import TProd

        fillers = [INT, TProd(INT, INT), TProd(TList(INT), INT), TList(TProd(INT, INT))]
        for name in ("append", "rev", "zip"):
            analysis = EscapeAnalysis(prelude_program([name]))
            report = check_invariance(analysis, name, fillers=fillers)
            assert report.holds, name

    def test_swap_invariance(self):
        analysis = EscapeAnalysis(prelude_program(["swap"]))
        report = check_invariance(analysis, "swap")
        assert report.holds
