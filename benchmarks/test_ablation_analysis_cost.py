"""AB1 — ablation: what the analysis costs, and what drives it.

The paper's §7 worries about "the computational complexity of finding
fixpoints of higher order functions".  This bench quantifies it on our
implementation: abstract-evaluator steps against (a) the B_e chain bound
``d`` and (b) the size of the letrec knot.
"""

from repro.bench.tables import print_table
from repro.escape.abstract import AbstractEvaluator
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.lattice import BeChain
from repro.lang.ast import count_nodes
from repro.lang.prelude import prelude_program
from repro.types.infer import infer_program
from repro.types.spines import program_spine_bound


def solve_steps(program, d=None):
    infer_program(program)
    evaluator = AbstractEvaluator(BeChain(d or program_spine_bound(program)))
    evaluator.solve_bindings(program.letrec, {})
    return evaluator.steps


def test_ab1_cost_vs_chain_bound(benchmark):
    program = prelude_program(["ps"])
    rows = []
    for d in (1, 2, 4, 8):
        steps = solve_steps(program, d=d)
        rows.append([d, steps])
    # Deeper chains mean more sample points per fingerprint: cost must be
    # monotone in d.
    assert [r[1] for r in rows] == sorted(r[1] for r in rows)
    print_table(["d (B_e bound)", "evaluator steps"], rows, title="analysis cost vs d")
    benchmark(solve_steps, program, 2)


def test_ab1_cost_vs_knot_size(benchmark):
    knots = [
        ["append"],
        ["append", "rev"],
        ["ps"],
        ["ps", "rev", "length", "sum"],
    ]
    rows = []
    for names in knots:
        program = prelude_program(names)
        rows.append(
            ["+".join(names), count_nodes(program.letrec), solve_steps(program)]
        )
    assert rows[-1][2] > rows[0][2]
    print_table(
        ["knot", "AST nodes", "evaluator steps"], rows, title="analysis cost vs knot size"
    )
    benchmark(solve_steps, prelude_program(["ps"]))


def test_ab1_full_query_latency(benchmark):
    # The compile-time cost a user actually pays: one global query, end to
    # end (inference + fixpoint + test).
    program = prelude_program(["ps"])

    def query():
        return EscapeAnalysis(program).global_test("ps", 1)

    result = benchmark(query)
    assert str(result.result) == "<1,0>"


def test_ab1_higher_order_costs_more(benchmark):
    # Function-type parameters need function-space samples: map costs more
    # per AST node than same-size first-order code.
    first_order = prelude_program(["copy"])
    higher_order = prelude_program(["map"])
    fo_steps = solve_steps(first_order) / count_nodes(first_order.letrec)
    ho_steps = solve_steps(higher_order) / count_nodes(higher_order.letrec)
    assert ho_steps > fo_steps
    print_table(
        ["program", "steps per AST node"],
        [["copy (first-order)", f"{fo_steps:.1f}"], ["map (higher-order)", f"{ho_steps:.1f}"]],
        title="higher-order analysis overhead",
    )
    benchmark(solve_steps, higher_order)
