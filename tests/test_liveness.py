"""Last-use (liveness) analysis tests for the reuse transformation."""

from repro.lang.ast import App, Prim, uncurry_app, walk
from repro.lang.parser import parse_expr
from repro.opt.liveness import uses_var, var_used_after


def find_cons(expr):
    """The first saturated cons application in ``expr``."""
    for node in walk(expr):
        if isinstance(node, App):
            head, args = uncurry_app(node)
            if isinstance(head, Prim) and head.name == "cons" and len(args) == 2:
                return node
    raise AssertionError("no cons in expression")


class TestUsesVar:
    def test_direct_use(self):
        assert uses_var(parse_expr("x + 1"), "x")

    def test_no_use(self):
        assert not uses_var(parse_expr("y + 1"), "x")

    def test_lambda_shadowing(self):
        assert not uses_var(parse_expr("lambda x. x"), "x")

    def test_letrec_shadowing(self):
        assert not uses_var(parse_expr("letrec x = 1 in x"), "x")

    def test_use_under_lambda(self):
        assert uses_var(parse_expr("lambda y. x"), "x")


class TestVarUsedAfter:
    def test_target_not_found(self):
        body = parse_expr("f y")
        assert var_used_after(body, -1, "x") is None

    def test_append_pattern_is_dead_after(self):
        # cons (car x) (append (cdr x) y): all uses of x are inside the cons
        body = parse_expr("cons (car x) (append (cdr x) y)")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is False

    def test_use_after_in_application(self):
        # f (cons 1 nil) x — x evaluated after the cons
        body = parse_expr("f (cons 1 nil) x")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is True

    def test_use_before_in_application(self):
        # f x (cons 1 nil) — x evaluated before the cons
        body = parse_expr("f x (cons 1 nil)")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is False

    def test_cons_in_condition_sees_branch_uses(self):
        body = parse_expr("if null (cons 1 nil) then x else 0")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is True

    def test_cons_in_then_branch_ignores_else(self):
        # once we're in the then branch, the else branch never runs
        body = parse_expr("if b then cons 1 nil else x")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is False

    def test_cons_in_else_branch(self):
        body = parse_expr("if b then x else cons 1 nil")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is False

    def test_target_under_lambda_is_conservative(self):
        body = parse_expr("lambda y. cons 1 nil")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is True

    def test_captured_var_is_conservative(self):
        # a closure capturing x may run after the cons
        body = parse_expr("f (cons 1 nil) (lambda y. x)")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is True

    def test_stored_closure_capture_is_conservative(self):
        # the lambda capturing x is evaluated BEFORE the cons but could be
        # applied after — conservatively "used after".
        body = parse_expr("letrec g = lambda y. car x in f (g 0) (cons 1 nil)")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is True

    def test_letrec_body_after_binding(self):
        body = parse_expr("letrec a = cons 1 nil in x")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is True

    def test_shadowed_use_not_counted(self):
        body = parse_expr("f (cons 1 nil) (lambda x. x)")
        cons = find_cons(body)
        assert var_used_after(body, cons.uid, "x") is False

    def test_ps_body_cons_is_dead_after(self):
        body = parse_expr(
            "if (null x) then nil"
            " else append (ps (car (split (car x) (cdr x) nil nil)))"
            " (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))"
        )
        # the interesting cons is the one whose first arg is (car x)
        target = None
        for node in walk(body):
            if isinstance(node, App):
                head, args = uncurry_app(node)
                if (
                    isinstance(head, Prim)
                    and head.name == "cons"
                    and len(args) == 2
                    and str(args[0].__class__.__name__) == "App"
                ):
                    target = node
                    break
        assert target is not None
        assert var_used_after(body, target.uid, "x") is False
