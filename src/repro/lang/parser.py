"""Recursive-descent parser for nml.

Accepted forms (beyond the paper's core grammar):

* *script* programs, as written in Appendix A — a sequence of definitions
  ``f x1 ... xn = e;`` followed by an optional result expression.  A script
  is sugar for one top-level ``letrec``;
* ``let``/``letrec ... in ...`` expressions, with bindings separated by
  ``;`` or ``and``;
* ``lambda(x). e`` (paper style) and ``lambda x y. e`` (multi-parameter);
* list literals ``[e1, ..., en]``, infix ``::`` for cons, and the usual
  infix arithmetic and comparison operators.

Operator precedence, loosest to tightest: comparison (non-associative),
``::`` (right), ``+ -`` (left), ``* /`` (left), application (left).
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    Binding,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Program,
    Var,
    apply_n,
    cons_list,
    lambda_n,
)
from repro.lang.errors import ParseError, SourceSpan
from repro.lang.lexer import tokenize
from repro.lang.resolve import resolve_expr
from repro.lang.tokens import Token, TokenKind

_COMPARISON_OPS = {
    TokenKind.EQEQ: "==",
    TokenKind.NEQ: "<>",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_SECTION_OPS = {
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.EQEQ: "==",
    TokenKind.NEQ: "<>",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.COLONCOLON: "cons",
}

_ATOM_STARTS = {
    TokenKind.INT,
    TokenKind.IDENT,
    TokenKind.TRUE,
    TokenKind.FALSE,
    TokenKind.NIL,
    TokenKind.LPAREN,
    TokenKind.LBRACKET,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(f"expected {kind.value!r}, found {token.text or 'end of input'!r}", token.span)
        return self._advance()

    # -- programs ------------------------------------------------------------

    def parse_program(self, source: str = "") -> Program:
        """Parse a whole program (script form or a single expression)."""
        if self._at(TokenKind.LETREC) or self._at(TokenKind.LET):
            expr = self.parse_expr()
            self._expect(TokenKind.EOF)
            letrec = expr if isinstance(expr, Letrec) else Letrec(span=expr.span, bindings=(), body=expr)
            return Program(letrec=letrec, source=source)

        bindings: list[Binding] = []
        body: Expr | None = None
        while not self._at(TokenKind.EOF):
            if self._looks_like_definition():
                bindings.append(self._parse_definition())
                if self._at(TokenKind.SEMI):
                    self._advance()
            else:
                body = self.parse_expr()
                if self._at(TokenKind.SEMI):
                    self._advance()
                break
        eof = self._expect(TokenKind.EOF)
        if body is None:
            # A script with no result expression: the implicit nil body
            # still gets a real (point) span so diagnostics can anchor it.
            body = NilLit(span=eof.span)
        span = body.span if not bindings else bindings[0].span.merge(body.span)
        return Program(letrec=Letrec(span=span, bindings=tuple(bindings), body=body), source=source)

    def _looks_like_definition(self) -> bool:
        """A definition starts ``IDENT IDENT* =`` (and not ``==``)."""
        if not self._at(TokenKind.IDENT):
            return False
        offset = 1
        while self._peek(offset).kind is TokenKind.IDENT:
            offset += 1
        return self._peek(offset).kind is TokenKind.EQ

    def _parse_definition(self) -> Binding:
        name_token = self._expect(TokenKind.IDENT)
        params: list[str] = []
        while self._at(TokenKind.IDENT):
            params.append(str(self._advance().value))
        self._expect(TokenKind.EQ)
        body = self.parse_expr()
        expr = lambda_n(params, body, span=name_token.span.merge(body.span))
        return Binding(str(name_token.value), expr, name_token.span)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.IF:
            return self._parse_if()
        if token.kind is TokenKind.LAMBDA:
            return self._parse_lambda()
        if token.kind in (TokenKind.LETREC, TokenKind.LET):
            return self._parse_letrec()
        return self._parse_comparison()

    def _parse_if(self) -> Expr:
        start = self._expect(TokenKind.IF)
        cond = self.parse_expr()
        self._expect(TokenKind.THEN)
        then = self.parse_expr()
        self._expect(TokenKind.ELSE)
        otherwise = self.parse_expr()
        return If(span=start.span.merge(otherwise.span), cond=cond, then=then, otherwise=otherwise)

    def _parse_lambda(self) -> Expr:
        start = self._expect(TokenKind.LAMBDA)
        params: list[str] = []
        if self._at(TokenKind.LPAREN):
            # paper style: lambda(x). e  — one parameter per lambda
            self._advance()
            params.append(str(self._expect(TokenKind.IDENT).value))
            self._expect(TokenKind.RPAREN)
        else:
            while self._at(TokenKind.IDENT):
                params.append(str(self._advance().value))
            if not params:
                raise ParseError("lambda needs at least one parameter", start.span)
        self._expect(TokenKind.DOT)
        body = self.parse_expr()
        return lambda_n(params, body, span=start.span.merge(body.span))

    def _parse_letrec(self) -> Expr:
        start = self._advance()  # letrec or let
        bindings = [self._parse_definition()]
        while self._at(TokenKind.SEMI) or self._at(TokenKind.AND_KW):
            self._advance()
            if self._at(TokenKind.IN):
                break
            bindings.append(self._parse_definition())
        self._expect(TokenKind.IN)
        body = self.parse_expr()
        return Letrec(span=start.span.merge(body.span), bindings=tuple(bindings), body=body)

    # -- operator levels -----------------------------------------------------

    def _parse_comparison(self) -> Expr:
        left = self._parse_cons()
        op = _COMPARISON_OPS.get(self._peek().kind)
        if op is None:
            return left
        token = self._advance()
        right = self._parse_cons()
        return _prim_call(op, [left, right], token.span)

    def _parse_cons(self) -> Expr:
        head = self._parse_additive()
        if self._at(TokenKind.COLONCOLON):
            token = self._advance()
            tail = self._parse_cons()  # right-associative
            return _prim_call("cons", [head, tail], token.span)
        return head

    def _parse_additive(self) -> Expr:
        if self._at(TokenKind.MINUS):
            # unary minus: a literal folds to a negative IntLit (so pretty
            # printing round-trips); anything else is sugar for 0 - e
            token = self._advance()
            operand = self._parse_multiplicative()
            if isinstance(operand, IntLit):
                left: Expr = IntLit(span=token.span.merge(operand.span), value=-operand.value)
            else:
                left = _prim_call("-", [IntLit(span=token.span, value=0), operand], token.span)
        else:
            left = self._parse_multiplicative()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            token = self._advance()
            right = self._parse_multiplicative()
            left = _prim_call(token.text, [left, right], token.span)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_application()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            token = self._advance()
            right = self._parse_application()
            left = _prim_call(token.text, [left, right], token.span)
        return left

    def _parse_application(self) -> Expr:
        expr = self._parse_atom()
        while self._peek().kind in _ATOM_STARTS:
            arg = self._parse_atom()
            expr = App(span=expr.span.merge(arg.span), fn=expr, arg=arg)
        return expr

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return IntLit(span=token.span, value=int(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.TRUE:
            self._advance()
            return BoolLit(span=token.span, value=True)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return BoolLit(span=token.span, value=False)
        if token.kind is TokenKind.NIL:
            self._advance()
            return NilLit(span=token.span)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return Var(span=token.span, name=str(token.value))
        if token.kind is TokenKind.LPAREN:
            self._advance()
            # Operator section: (+), (==), (::) etc. denote the primitive.
            section = _SECTION_OPS.get(self._peek().kind)
            if section is not None and self._peek(1).kind is TokenKind.RPAREN:
                op_token = self._advance()
                self._advance()
                return Var(span=op_token.span, name=section)
            expr = self.parse_expr()
            if self._at(TokenKind.COMMA):
                # tuple literal: (a, b, c) desugars to right-nested pairs
                # mkpair a (mkpair b c).
                elements = [expr]
                while self._at(TokenKind.COMMA):
                    self._advance()
                    elements.append(self.parse_expr())
                end = self._expect(TokenKind.RPAREN)
                span = token.span.merge(end.span)
                result = elements[-1]
                for element in reversed(elements[:-1]):
                    result = apply_n(
                        Var(span=span, name="mkpair"), element, result, span=span
                    )
                return result
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.LBRACKET:
            return self._parse_list_literal()
        raise ParseError(f"unexpected {token.text or 'end of input'!r}", token.span)

    def _parse_list_literal(self) -> Expr:
        start = self._expect(TokenKind.LBRACKET)
        elements: list[Expr] = []
        if not self._at(TokenKind.RBRACKET):
            elements.append(self.parse_expr())
            while self._at(TokenKind.COMMA):
                self._advance()
                elements.append(self.parse_expr())
        end = self._expect(TokenKind.RBRACKET)
        return cons_list(elements, span=start.span.merge(end.span))


def _prim_call(name: str, args: list[Expr], span: SourceSpan) -> Expr:
    """Build ``name a1 ... an`` with a Var head; resolution turns unbound
    primitive names into Prim constants afterwards."""
    head = Var(span=span, name=name)
    result = apply_n(head, *args, span=span)
    return result


def parse_expr(source: str) -> Expr:
    """Parse a single expression (resolved: primitive names become Prim)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser._expect(TokenKind.EOF)
    return resolve_expr(expr)


def parse_program(source: str) -> Program:
    """Parse and resolve a whole program."""
    program = Parser(tokenize(source)).parse_program(source)
    resolved = resolve_expr(program.letrec)
    assert isinstance(resolved, Letrec)
    return Program(letrec=resolved, source=source)
