"""Type inference tests: prelude schemes, annotations, pins, defaulting,
and inference errors."""

import pytest

from repro.lang.ast import Prim, walk
from repro.lang.errors import TypeInferenceError
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.types.infer import infer_expr, infer_program, prim_scheme
from repro.types.instantiate import simplest_instance, uniform_instances
from repro.types.spines import (
    annotate_cars,
    argument_spines,
    car_spine_count,
    program_spine_bound,
)
from repro.types.types import BOOL, INT, TFun, TList, TypeScheme, list_of


def scheme_str(program, name):
    return str(infer_program(program).scheme(name))


class TestExpressionInference:
    def test_int_literal(self):
        assert infer_expr(parse_expr("42")) == INT

    def test_bool_literal(self):
        assert infer_expr(parse_expr("true")) == BOOL

    def test_nil_defaults_to_int_list(self):
        assert infer_expr(parse_expr("nil")) == TList(INT)

    def test_arithmetic(self):
        assert infer_expr(parse_expr("1 + 2 * 3")) == INT

    def test_comparison(self):
        assert infer_expr(parse_expr("1 < 2")) == BOOL

    def test_list_literal(self):
        assert infer_expr(parse_expr("[1, 2, 3]")) == TList(INT)

    def test_nested_list(self):
        assert infer_expr(parse_expr("[[1], [2]]")) == TList(TList(INT))

    def test_car_cdr(self):
        assert infer_expr(parse_expr("car [1]")) == INT
        assert infer_expr(parse_expr("cdr [1]")) == TList(INT)

    def test_identity_lambda_defaults(self):
        assert infer_expr(parse_expr("lambda x. x")) == TFun(INT, INT)

    def test_if_branches_unify(self):
        assert infer_expr(parse_expr("if true then [1] else nil")) == TList(INT)

    def test_letrec_polymorphic_use(self):
        # id used at int and at int list in the same body
        expr = parse_expr("letrec id x = x in (id 1) :: id nil")
        assert infer_expr(expr) == TList(INT)

    def test_unbound_identifier(self):
        with pytest.raises(TypeInferenceError):
            infer_expr(parse_expr("mystery"))

    def test_condition_must_be_bool(self):
        with pytest.raises(TypeInferenceError):
            infer_expr(parse_expr("if 1 then 2 else 3"))

    def test_branch_mismatch(self):
        with pytest.raises(TypeInferenceError):
            infer_expr(parse_expr("if true then 1 else nil"))

    def test_heterogeneous_list_rejected(self):
        with pytest.raises(TypeInferenceError):
            infer_expr(parse_expr("[1, true]"))

    def test_self_application_rejected(self):
        with pytest.raises(TypeInferenceError):
            infer_expr(parse_expr("lambda x. x x"))

    def test_applying_non_function(self):
        with pytest.raises(TypeInferenceError):
            infer_expr(parse_expr("1 2"))


class TestPreludeSchemes:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("append", "t list -> t list -> t list"),
            ("length", "t list -> int"),
            ("map", "(t -> u) -> t list -> u list"),
            ("rev", "t list -> t list"),
            ("filter", "(t -> bool) -> t list -> t list"),
            ("concat", "t list list -> t list"),
            ("create_list", "int -> int list"),
        ],
    )
    def test_scheme_shape(self, name, expected):
        deps = {"rev": ["rev"], "concat": ["concat"]}.get(name, [name])
        scheme = infer_program(prelude_program(deps)).scheme(name)
        # Compare shapes after normalizing variable names.
        rendered = str(scheme)
        import re

        normalized = rendered
        for i, var in enumerate(re.findall(r"\bt\d+\b", rendered)):
            normalized = normalized.replace(var, "tu"[i] if i < 2 else f"v{i}")
        normalized = normalized.replace("forall t u. ", "").replace("forall t. ", "")
        assert normalized == expected

    def test_partition_sort_types(self, partition_sort):
        result = infer_program(partition_sort)
        assert str(result.scheme("ps")) == "int list -> int list"
        assert (
            str(result.scheme("split"))
            == "int -> int list -> int list -> int list -> int list list"
        )
        assert result.result_type == TList(INT)

    def test_every_prelude_function_typechecks(self):
        from repro.lang.prelude import PRELUDE_DEFS

        for name in PRELUDE_DEFS:
            infer_program(prelude_program([name]))  # must not raise


class TestAnnotations:
    def test_every_node_gets_a_type(self, partition_sort):
        infer_program(partition_sort)
        for node in walk(partition_sort.letrec):
            assert node.ty is not None

    def test_car_spine_annotation(self, partition_sort):
        infer_program(partition_sort)
        table = annotate_cars(partition_sort)
        values = set(table.values())
        assert values == {1, 2}  # car¹ on int lists, car² on split results

    def test_car_spine_count_requires_types(self):
        prim = Prim(name="car")
        from repro.lang.errors import AnalysisError

        with pytest.raises(AnalysisError):
            car_spine_count(prim)

    def test_program_spine_bound(self, partition_sort, map_pair):
        infer_program(partition_sort)
        assert program_spine_bound(partition_sort) == 2
        infer_program(map_pair)
        assert program_spine_bound(map_pair) == 2

    def test_argument_spines(self, partition_sort):
        result = infer_program(partition_sort)
        split_ty = simplest_instance(result.scheme("split"))
        assert argument_spines(split_ty, 4) == [0, 1, 1, 1]


class TestPins:
    def test_pin_forces_instance(self):
        program = prelude_program(["append"])
        instance = TFun(
            list_of(INT, 2), TFun(list_of(INT, 2), list_of(INT, 2))
        )
        result = infer_program(program, pins={"append": instance})
        assert str(result.scheme("append")) == str(instance)
        assert program.binding("append").expr.ty == instance

    def test_pin_unknown_binding_raises(self):
        with pytest.raises(TypeInferenceError):
            infer_program(prelude_program(["append"]), pins={"nope": INT})

    def test_conflicting_pin_raises(self):
        with pytest.raises(TypeInferenceError):
            infer_program(prelude_program(["length"]), pins={"length": INT})


class TestInstantiation:
    def test_simplest_instance_maps_vars_to_int(self):
        scheme = infer_program(prelude_program(["append"])).scheme("append")
        assert str(simplest_instance(scheme)) == "int list -> int list -> int list"

    def test_uniform_instances(self):
        scheme = infer_program(prelude_program(["append"])).scheme("append")
        instances = uniform_instances(scheme, [BOOL, TList(INT)])
        assert str(instances[0]) == "bool list -> bool list -> bool list"
        assert str(instances[1]) == "int list list -> int list list -> int list list"

    def test_uniform_instances_needs_polymorphism(self):
        from repro.lang.errors import AnalysisError

        scheme = TypeScheme.mono(INT)
        with pytest.raises(AnalysisError):
            uniform_instances(scheme, [INT])


class TestPrimSchemes:
    @pytest.mark.parametrize("name", ["+", "==", "cons", "car", "cdr", "null", "dcons"])
    def test_prim_scheme_exists(self, name):
        prim_scheme(name)

    def test_cons_scheme_shape(self):
        scheme = prim_scheme("cons")
        assert len(scheme.vars) == 1

    def test_unknown_prim(self):
        with pytest.raises(TypeInferenceError):
            prim_scheme("bogus")
