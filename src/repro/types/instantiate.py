"""Monomorphic instantiation of polymorphic bindings (§5).

The escape analysis runs on monotyped programs.  For a polymorphic function
we analyze one instance; Theorem 1 (polymorphic invariance) guarantees the
*non-escaping prefix* ``s_i − k`` is the same for every instance.  These
helpers produce arbitrary instances so :mod:`repro.escape.poly` can check
the theorem empirically.
"""

from __future__ import annotations

from repro.lang.errors import AnalysisError
from repro.types.types import (
    INT,
    TFun,
    TList,
    TProd,
    TVar,
    Type,
    TypeScheme,
)


def instantiate_scheme(scheme: TypeScheme, assignment: dict[TVar, Type] | None = None) -> Type:
    """Instantiate ``scheme`` with ``assignment`` (missing vars → ``int``)."""
    assignment = assignment or {}

    def replace(ty: Type) -> Type:
        if isinstance(ty, TVar):
            return assignment.get(ty, INT)
        if isinstance(ty, TList):
            return TList(replace(ty.element))
        if isinstance(ty, TFun):
            return TFun(replace(ty.arg), replace(ty.result))
        if isinstance(ty, TProd):
            return TProd(replace(ty.fst), replace(ty.snd))
        return ty

    return replace(scheme.body)


def simplest_instance(scheme: TypeScheme) -> Type:
    """Every quantified variable ↦ ``int`` — the paper's canonical instance."""
    return instantiate_scheme(scheme, {})


def uniform_instances(scheme: TypeScheme, fillers: list[Type]) -> list[Type]:
    """One instance per filler type, mapping *all* quantified variables to
    that filler.  Used to exercise polymorphic invariance across instances
    whose spine counts differ."""
    if not scheme.vars:
        raise AnalysisError(f"{scheme} is not polymorphic")
    return [
        instantiate_scheme(scheme, {var: filler for var in scheme.vars})
        for filler in fillers
    ]
