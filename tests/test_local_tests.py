"""Local escape test results, including the Section 1 motivating example."""

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.lang.errors import AnalysisError
from repro.lang.prelude import prelude_program


class TestSection1Example:
    """Properties 1-3 the paper's introduction claims for pair/map."""

    def test_pair_top_spine_does_not_escape(self, map_pair):
        analysis = EscapeAnalysis(map_pair)
        result = analysis.global_test("pair", 1)
        assert result.non_escaping_spines >= 1  # property 1

    def test_map_top_spine_does_not_escape_globally(self, map_pair):
        analysis = EscapeAnalysis(map_pair)
        result = analysis.global_test("map", 2)
        assert result.non_escaping_spines >= 1  # property 2

    def test_call_top_two_spines_do_not_escape(self, map_pair):
        # property 3: in (map pair [[1,2],[3,4],[5,6]]) the top TWO spines
        # of the second argument do not escape.
        analysis = EscapeAnalysis(map_pair)
        result = analysis.local_test("map pair [[1, 2], [3, 4], [5, 6]]", i=2)
        assert result.param_spines == 2
        assert result.non_escaping_spines == 2

    def test_local_on_program_body(self, map_pair):
        analysis = EscapeAnalysis(map_pair)
        results = analysis.local_test(map_pair.body)
        assert len(results) == 2
        assert all(r.kind == "local" for r in results)


class TestLocalRefinesGlobal:
    def test_map_with_identity_keeps_elements(self):
        # Globally map's elements may escape; locally with a projecting f
        # nothing does, and with the identity the elements do.
        program = prelude_program(["map", "id_fn", "pair"])
        analysis = EscapeAnalysis(program)
        keeping = analysis.local_test("map id_fn [[1, 2], [3, 4]]", i=2)
        assert str(keeping.result) == "<1,1>"  # elements (inner spines) escape
        dropping = analysis.local_test("map pair [[1, 2], [3, 4]]", i=2)
        assert str(dropping.result) == "<0,0>"

    def test_local_never_exceeds_global_at_same_instance(self):
        # L uses actual argument behaviour; G uses the worst case, so
        # L(f, i, ...) ⊑ G(f, i) at the call's instance.
        from repro.types.types import INT, TFun, TList, list_of

        program = prelude_program(["map", "pair"])
        analysis = EscapeAnalysis(program)
        local = analysis.local_test("map pair [[1, 2]]", i=2)
        instance = TFun(TFun(TList(INT), INT), TFun(list_of(INT, 2), TList(INT)))
        global_ = analysis.global_test("map", 2, instance=instance)
        assert local.result.leq(global_.result)

    def test_append_local_matches_global_for_worstlike_args(self):
        program = prelude_program(["append"])
        analysis = EscapeAnalysis(program)
        results = analysis.local_test("append [1, 2] [3]")
        assert [str(r.result) for r in results] == ["<1,0>", "<1,1>"]


class TestLocalForms:
    def test_lambda_head(self):
        program = prelude_program(["append"])
        analysis = EscapeAnalysis(program)
        result = analysis.local_test("(lambda x. x) [1, 2]", i=1)
        assert str(result.result) == "<1,1>"

    def test_non_application_raises(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.local_test("ps")

    def test_index_out_of_range(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.local_test("ps [1]", i=2)

    def test_all_params_when_index_omitted(self, ps_analysis):
        results = ps_analysis.local_test("split 3 [1, 2] nil nil")
        assert len(results) == 4
        assert [r.param_index for r in results] == [1, 2, 3, 4]

    def test_ps_call_top_spine_safe(self, ps_analysis):
        result = ps_analysis.local_test("ps [5, 2, 7, 1, 3, 4]", i=1)
        assert result.non_escaping_spines == 1
