"""Tests for the benchmark-support package (workloads, tables, figures)
and the storage-metrics model."""

import pytest

from repro.bench.figures import spine_census, spine_figure, spine_figure_of_expr
from repro.bench.tables import render_table
from repro.bench.workloads import (
    literal,
    ps_create_list_program,
    ps_program,
    random_int_list,
    random_nested_list,
    reference_ps,
    reference_rev,
    rev_program,
)
from repro.lang.prelude import prelude_program
from repro.semantics.interp import Interpreter, run_program
from repro.semantics.metrics import StorageMetrics


class TestWorkloads:
    def test_random_int_list_is_deterministic(self):
        assert random_int_list(10, seed=3) == random_int_list(10, seed=3)

    def test_random_int_list_varies_with_seed(self):
        assert random_int_list(10, seed=1) != random_int_list(10, seed=2)

    def test_random_nested_shape(self):
        nested = random_nested_list(4, 3, seed=0)
        assert len(nested) == 4 and all(len(row) == 3 for row in nested)

    def test_literal_rendering(self):
        assert literal([1, 2]) == "[1, 2]"
        assert literal([[1], []]) == "[[1], []]"
        assert literal(True) == "true"
        assert literal(-3) == "-3"

    def test_literal_round_trips_through_interpreter(self):
        values = [[1, 2], [], [3]]
        interp = Interpreter()
        result = interp.eval_in(prelude_program([]), literal(values))
        assert interp.to_python(result) == values

    def test_ps_program_runs(self):
        values = random_int_list(12, seed=5)
        result, _ = run_program(ps_program(values))
        assert result == reference_ps(values)

    def test_rev_program_runs(self):
        values = random_int_list(8, seed=6)
        result, _ = run_program(rev_program(values))
        assert result == reference_rev(values)

    def test_ps_create_list_program(self):
        result, _ = run_program(ps_create_list_program(6))
        assert result == [1, 2, 3, 4, 5, 6]


class TestTables:
    def test_render_basic(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "333" in text

    def test_render_with_title(self):
        text = render_table(["x"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_columns_align(self):
        text = render_table(["col"], [["short"], ["much longer cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len("much longer cell")  # separator width

    def test_non_string_cells(self):
        text = render_table(["n"], [[42], [None]])
        assert "42" in text and "None" in text


class TestFigures:
    def test_spine_figure_flat(self):
        fig = spine_figure([1, 2, 3])
        assert "1 spine(s), 3 cell(s)" in fig

    def test_spine_figure_of_expr(self):
        program = prelude_program(["iota"])
        fig = spine_figure_of_expr(program, "iota 4")
        assert "1 spine(s), 4 cell(s)" in fig

    def test_census_empty(self):
        interp = Interpreter()
        assert spine_census(interp, interp.from_python([])) == {}


class TestMetricsModel:
    def test_totals(self):
        metrics = StorageMetrics(heap_allocs=5, region_allocs=2, reused=3)
        assert metrics.total_allocs == 7
        assert metrics.cells_constructed == 10

    def test_snapshot_and_diff(self):
        metrics = StorageMetrics()
        before = metrics.snapshot()
        metrics.heap_allocs += 4
        metrics.gc_runs += 1
        delta = metrics.diff(before)
        assert delta["heap_allocs"] == 4
        assert delta["gc_runs"] == 1
        assert delta["reused"] == 0

    def test_region_kind_breakdown(self):
        from repro.lang.ast import Prim
        from repro.semantics.heap import AllocKind, Heap
        from repro.semantics.values import NIL, VInt

        heap = Heap()
        heap.open_region(AllocKind.STACK, "act")
        prim = Prim(name="cons")
        prim.annotations["alloc"] = "region"
        heap.allocate(VInt(1), NIL, site=prim)
        assert heap.metrics.by_region_kind == {"stack:act": 1}
