"""The typed event vocabulary of the observability layer.

Every event the :class:`~repro.obs.tracer.Tracer` emits is a flat JSON
object with a common envelope — ``seq`` (monotonic, from 0), ``ts``
(seconds since the tracer started), ``type`` — plus the payload fields
listed in :data:`EVENT_FIELDS`.  The vocabulary covers the whole pipeline:

* **analysis** — ``solve`` (cache hit/miss), ``scc_solve_start`` /
  ``scc_solve_finish``, ``fixpoint_iteration`` (per-binding lattice
  values, the raw material of the Appendix A.1 tables),
  ``fixpoint_converged`` / ``fixpoint_widened``, ``escape_test``,
  ``query_stats``;
* **analysis store** — ``store_hit`` / ``store_miss`` / ``store_write``
  (the on-disk SCC tier of :mod:`repro.store`, keyed by provenance
  digest), ``store_reap`` (stale temp files swept at store open);
* **hardened engine** — ``budget_charge``, ``degradation``;
* **resilience layer** — ``retry`` (one backoff taken), ``timeout`` (an
  attempt preempted at its deadline), ``quarantine`` (a poison input
  excluded after exhausting attempts), ``circuit_state`` (a per-target
  breaker transition), ``worker_restart`` (the batch supervisor replacing
  a crashed or hung worker);
* **service** — ``serve_request`` (one daemon request: endpoint, HTTP
  status, degraded/coalesced flags);
* **optimizer** — ``decision``, ``transform_applied``,
  ``transform_skipped``;
* **runtime** — ``cell_alloc``, ``cell_reuse``, ``cell_reclaim``,
  ``region_push``, ``region_pop``, ``gc_run``;
* **structure** — ``span_start`` / ``span_end`` (hierarchical timing).

The schema is deliberately validation-friendly: :func:`validate_event`
checks one decoded event, :func:`validate_trace` a whole JSONL stream —
the check the CI trace-smoke step runs on every exported trace.
"""

from __future__ import annotations

from typing import Iterable


class TraceSchemaError(ValueError):
    """A trace event does not conform to the event schema."""


#: Envelope fields every event carries.
ENVELOPE_FIELDS = ("seq", "ts", "type")

#: Required payload fields per event type.
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    # structure
    "span_start": ("id", "name"),
    "span_end": ("id", "name", "dur_s", "self_s"),
    # flight recorder (the synthetic header of a black-box dump)
    "flight_dump": ("reason", "captured", "total"),
    # query engine / fixpoint
    "solve": ("cache",),
    "scc_solve_start": ("names",),
    "scc_solve_finish": ("names", "cache", "iterations"),
    "fixpoint_iteration": ("iteration", "values"),
    "fixpoint_converged": ("names", "iterations"),
    "fixpoint_widened": ("names", "cap"),
    "escape_test": ("kind", "function", "param", "result"),
    "query_stats": (
        "solve_hits",
        "solve_misses",
        "scc_hits",
        "scc_misses",
        "iterations",
        "eval_steps",
        # store_hits / store_misses / store_writes / worklist_evals ride
        # along as optional extras so older traces keep validating.
    ),
    # IR lowering + worklist engine
    "ir_lower": ("name", "instructions"),
    "worklist_push": ("name",),
    "worklist_pop": ("name",),
    "transfer_eval": ("block", "index", "op", "count"),
    # analysis store (on-disk SCC tier)
    "store_hit": ("digest",),
    "store_miss": ("digest",),
    "store_write": ("digest",),
    "store_reap": ("count",),
    # hardened engine
    "budget_charge": ("wall_s", "eval_steps", "iterations"),
    "degradation": ("reason", "stage"),
    # resilience layer (retry/timeout/quarantine/circuit, supervised workers)
    "retry": ("key", "attempt", "delay_s"),
    "timeout": ("key", "deadline_s"),
    "quarantine": ("key", "attempts", "reason"),
    "circuit_state": ("target", "state"),
    "worker_restart": ("key", "attempt", "cause"),
    # service (repro serve)
    "serve_request": ("endpoint", "status", "degraded", "coalesced"),
    # optimizer
    "decision": ("kind", "function", "param"),
    "transform_applied": ("kind", "detail"),
    "transform_skipped": ("kind", "reason"),
    # static checker (repro.check)
    "check_rule_fired": ("rule", "severity", "pass"),
    # instrumented runtime
    "cell_alloc": ("cell", "kind"),
    "cell_reuse": ("cell",),
    "cell_reclaim": ("count", "cause"),
    "region_push": ("kind", "label"),
    "region_pop": ("kind", "label", "freed"),
    "gc_run": ("marked", "swept", "live_after"),
}

#: Valid values for the ``cache`` field.
CACHE_OUTCOMES = ("hit", "miss")

#: Valid values for the ``state`` field of ``circuit_state`` events.
CIRCUIT_STATES = ("closed", "open", "half-open")


def validate_event(event: dict) -> None:
    """Check one decoded event against the schema; raise
    :class:`TraceSchemaError` on the first problem."""
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event is not an object: {event!r}")
    for field in ENVELOPE_FIELDS:
        if field not in event:
            raise TraceSchemaError(f"event is missing envelope field {field!r}: {event}")
    etype = event["type"]
    required = EVENT_FIELDS.get(etype)
    if required is None:
        raise TraceSchemaError(f"unknown event type {etype!r}")
    for field in required:
        if field not in event:
            raise TraceSchemaError(f"{etype} event is missing field {field!r}: {event}")
    if "cache" in event and event["cache"] not in CACHE_OUTCOMES:
        raise TraceSchemaError(
            f"cache must be one of {CACHE_OUTCOMES}, got {event['cache']!r}"
        )
    if etype == "circuit_state" and event["state"] not in CIRCUIT_STATES:
        raise TraceSchemaError(
            f"circuit state must be one of {CIRCUIT_STATES}, got {event['state']!r}"
        )


def validate_trace(events: Iterable[dict], lines: "Iterable[int] | None" = None) -> int:
    """Validate a whole event stream (schema + monotonic ``seq``); returns
    the number of events checked.

    A failure names the offending event's index in the stream — and its
    source line when ``lines`` supplies one per event (as
    :func:`validate_trace_file` does for JSONL files) — so a broken trace
    points at the bad record instead of raising a bare schema error.
    """
    count = 0
    previous_seq = -1
    line_of = iter(lines) if lines is not None else None
    for index, event in enumerate(events):
        line = next(line_of, None) if line_of is not None else None
        where = f"event {index}" + (f" (line {line})" if line is not None else "")
        try:
            validate_event(event)
        except TraceSchemaError as error:
            raise TraceSchemaError(f"{where}: {error}") from None
        seq = event["seq"]
        if not isinstance(seq, int) or seq <= previous_seq:
            raise TraceSchemaError(
                f"{where}: seq must increase monotonically: "
                f"{seq!r} after {previous_seq}"
            )
        previous_seq = seq
        count += 1
    return count


def validate_trace_file(path) -> int:
    """Validate a JSONL trace file, reporting the offending event's index
    *and* source line on failure; returns the number of events checked."""
    import json

    events: list[dict] = []
    lines: list[int] = []
    with open(path, encoding="utf-8") as stream:
        for lineno, text in enumerate(stream, start=1):
            if not text.strip():
                continue
            try:
                events.append(json.loads(text))
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"event {len(events)} (line {lineno}): not valid JSON: {error}"
                ) from None
            lines.append(lineno)
    return validate_trace(events, lines)
