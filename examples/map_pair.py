"""The paper's Section 1 motivating example: map/pair.

Demonstrates the three properties the introduction claims, the Figure 1
spine decomposition, and the dynamic observer confirming the analysis.

Run with:  python examples/map_pair.py
"""

from repro import analyze, paper_map_pair
from repro.bench.figures import spine_figure
from repro.escape.exact import Source, observe_escape


def main() -> None:
    program = paper_map_pair()
    analysis = analyze(program)

    print(spine_figure([[1, 2], [3, 4], [5, 6]]))
    print()

    # Property 1: the top spine of pair's parameter does not escape.
    p1 = analysis.global_test("pair", 1)
    print(f"G(pair, 1) = {p1.result}: {p1.describe()}")

    # Property 2: the top spine of map's list parameter does not escape
    # (its elements escape only to the extent the unknown f returns them).
    p2 = analysis.global_test("map", 2)
    print(f"G(map, 2)  = {p2.result}: {p2.describe()}")

    # Property 3: in the actual call, the top TWO spines of the literal do
    # not escape — both spines can live in map's activation record.
    call = "map pair [[1, 2], [3, 4], [5, 6]]"
    p3 = analysis.local_test(call, i=2)
    print(f"L(map, 2)  = {p3.result} for {call}")
    print(f"  -> {p3.describe()}")

    # The dynamic observer agrees: no cell of the argument reaches the
    # result.
    observed = observe_escape(program, "map", [Source("pair"), [[1, 2], [3, 4], [5, 6]]], 2)
    print(f"observed escape on this input: {observed.as_escapement()}")


if __name__ == "__main__":
    main()
