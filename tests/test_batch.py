"""The parallel batch driver (:mod:`repro.batch`) and its ``repro batch``
CLI: corpus collection, serial and process-parallel runs through a shared
store, warm-run accounting, and error containment."""

from __future__ import annotations

import json

import pytest

from repro.batch import BatchReport, FileReport, analyze_one, collect_inputs, run_batch
from repro.cli import main
from repro.lang.prelude import prelude_source
from repro.obs import RingBufferSink, Tracer, activate
from repro.obs.events import validate_trace
from repro.robust.faults import FaultPlan, SlowStage
from repro.robust.resilience import RetryPolicy

APPEND = prelude_source(["append"], "append [1, 2] [3]")
REV = prelude_source(["append", "rev"], "rev [1, 2, 3]")


@pytest.fixture
def corpus(tmp_path):
    root = tmp_path / "corpus"
    (root / "nested").mkdir(parents=True)
    (root / "append.nml").write_text(APPEND)
    (root / "nested" / "rev.nml").write_text(REV)
    return root


class TestCollectInputs:
    def test_directories_recurse_sorted(self, corpus):
        found = collect_inputs([corpus])
        assert [p.name for p in found] == ["append.nml", "rev.nml"]

    def test_duplicates_dropped_files_pass_through(self, corpus):
        direct = corpus / "append.nml"
        found = collect_inputs([direct, corpus])
        assert [p.name for p in found] == ["append.nml", "rev.nml"]

    def test_non_nml_files_ignored_in_directories(self, corpus):
        (corpus / "README.md").write_text("not a program")
        assert len(collect_inputs([corpus])) == 2


class TestAnalyzeOne:
    def test_reports_functions_and_stats(self, corpus):
        report = analyze_one(str(corpus / "append.nml"), None)
        assert report.ok
        assert report.functions == 1
        assert report.d >= 1
        assert report.stats["iterations"] > 0
        assert "ok" in report.line()

    def test_bad_file_is_contained(self, tmp_path):
        bad = tmp_path / "bad.nml"
        bad.write_text("this is not ( valid")
        report = analyze_one(str(bad), None)
        assert not report.ok
        assert report.error
        assert "ERROR" in report.line()

    def test_report_is_picklable(self, corpus):
        import pickle

        report = analyze_one(str(corpus / "append.nml"), None)
        assert pickle.loads(pickle.dumps(report)) == report


class TestRunBatch:
    def test_serial_cold_then_warm(self, corpus, tmp_path):
        store = tmp_path / "store"
        cold = run_batch([corpus], store_root=store, jobs=1, d=2)
        assert cold.ok
        assert cold.totals()["iterations"] > 0
        assert cold.totals()["store_writes"] > 0
        # append is one typed SCC shared by both files at pinned d: the
        # second file decodes the first file's fixpoint even in run one.
        assert cold.totals()["store_hits"] >= 1

        warm = run_batch([corpus], store_root=store, jobs=1, d=2)
        totals = warm.totals()
        assert totals["scc_misses"] == 0
        assert totals["iterations"] == 0
        assert totals["store_misses"] == 0
        assert totals["store_hits"] == cold.totals()["scc_hits"] + cold.totals()[
            "scc_misses"
        ]

    def test_parallel_warm_run_does_no_fixpoint_work(self, corpus, tmp_path):
        store = tmp_path / "store"
        run_batch([corpus], store_root=store, jobs=1, d=2)
        warm = run_batch([corpus], store_root=store, jobs=2, d=2)
        assert warm.jobs == 2
        assert warm.totals()["iterations"] == 0
        assert warm.totals()["scc_misses"] == 0

    def test_parallel_matches_serial_results(self, corpus, tmp_path):
        serial = run_batch([corpus], jobs=1)
        parallel = run_batch([corpus], store_root=tmp_path / "store", jobs=2)
        assert [r.path for r in parallel.reports] == [r.path for r in serial.reports]
        assert [(r.ok, r.d, r.functions) for r in parallel.reports] == [
            (r.ok, r.d, r.functions) for r in serial.reports
        ]

    def test_no_store_runs_standalone(self, corpus):
        report = run_batch([corpus], store_root=None, jobs=1)
        assert report.ok
        assert report.store_root is None
        assert report.totals().get("store_hits", 0) == 0

    def test_failed_file_does_not_sink_the_batch(self, corpus):
        (corpus / "bad.nml").write_text("][")
        report = run_batch([corpus], jobs=1)
        assert not report.ok
        assert sum(1 for r in report.reports if r.ok) == 2
        assert "1 failed" in report.summary()

    def test_empty_batch_is_not_ok(self):
        assert not BatchReport(reports=[], jobs=1, store_root=None).ok

    def test_totals_skip_failed_files_and_bools(self):
        report = BatchReport(
            reports=[
                FileReport(path="a", ok=True, stats={"iterations": 2, "store": {"hits": 1}}),
                FileReport(path="b", ok=False, error="x", stats={"iterations": 99}),
            ],
            jobs=1,
            store_root=None,
        )
        assert report.totals() == {"iterations": 2, "store_hits": 1}


class TestBatchCli:
    def test_batch_text_output(self, corpus, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["batch", str(corpus), "--store", store, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "append.nml: ok" in out
        assert "rev.nml: ok" in out
        assert "-- 2 file(s), 1 job(s)" in out
        assert f"store: {store}" in out

    def test_batch_default_store_next_to_corpus(self, corpus, capsys):
        assert main(["batch", str(corpus)]) == 0
        assert (corpus / ".repro-store").is_dir()

    def test_batch_no_store(self, corpus, capsys):
        assert main(["batch", str(corpus), "--no-store"]) == 0
        assert not (corpus / ".repro-store").exists()
        assert "no store" in capsys.readouterr().out

    def test_batch_json_warm_run_reports_zero_misses(self, corpus, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["batch", str(corpus), "--jobs", "2", "--store", store, "--d", "2", "--json"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"]
        assert doc["jobs"] == 2
        assert doc["totals"]["scc_misses"] == 0
        assert doc["totals"]["iterations"] == 0
        assert {f["path"].rsplit("/", 1)[-1] for f in doc["files"]} == {
            "append.nml",
            "rev.nml",
        }

    def test_batch_error_exit_code(self, corpus, capsys):
        (corpus / "bad.nml").write_text("][")
        assert main(["batch", str(corpus), "--no-store"]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_batch_empty_corpus_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["batch", str(empty)]) == 1
        assert "error" in capsys.readouterr().err


class TestSupervisedFailures:
    """The supervised worker pool: hung workers are preempted, crashed
    workers are replaced, poison inputs are quarantined — and every path
    is deterministic under a seeded plan."""

    RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05, seed=1)

    def test_hung_worker_is_killed_and_retried(self, corpus, tmp_path):
        ring = RingBufferSink(capacity=None)
        plan = FaultPlan(slow_stages=(SlowStage("worker", at=1, seconds=10.0),))
        with activate(Tracer(sinks=[ring])):
            report = run_batch(
                [corpus],
                store_root=tmp_path / "store",
                jobs=2,
                timeout_s=0.4,
                retry=self.RETRY,
                fault_plan=plan,
            )
        assert report.ok and report.answered
        assert max(r.attempts for r in report.reports) == 2
        types = [e["type"] for e in ring.events]
        assert "timeout" in types and "retry" in types
        restarts = [e for e in ring.events if e["type"] == "worker_restart"]
        assert [e["cause"] for e in restarts] == ["timeout"]
        validate_trace(ring.events)

    def test_crashed_worker_is_replaced(self, corpus, tmp_path):
        ring = RingBufferSink(capacity=None)
        plan = FaultPlan(worker_crash_at=1)
        with activate(Tracer(sinks=[ring])):
            report = run_batch(
                [corpus],
                store_root=tmp_path / "store",
                jobs=2,
                timeout_s=5.0,
                retry=self.RETRY,
                fault_plan=plan,
            )
        assert report.ok
        assert max(r.attempts for r in report.reports) == 2
        restarts = [e for e in ring.events if e["type"] == "worker_restart"]
        assert [e["cause"] for e in restarts] == ["worker-crashed"]
        validate_trace(ring.events)

    def test_always_hanging_file_is_quarantined_not_fatal(self, corpus, tmp_path):
        plan = FaultPlan(slow_stages=(SlowStage("worker", at=1, every=1, seconds=10.0),))
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.02, seed=1)
        report = run_batch(
            [corpus], jobs=2, timeout_s=0.25, retry=retry, fault_plan=plan
        )
        assert report.answered and not report.ok
        assert not report.hard_failures
        assert len(report.quarantined_files) == len(report.reports)
        assert report.exit_code() == 3
        quarantined = report.reports[0]
        assert quarantined.attempts == 2
        assert "QUARANTINED" in quarantined.line()
        doc = report.to_json()
        assert doc["exit_code"] == 3 and doc["quarantined"] == len(report.reports)

    def test_serial_injected_crash_retries_with_deterministic_jitter(
        self, corpus, tmp_path
    ):
        ring = RingBufferSink(capacity=None)
        plan = FaultPlan(worker_crash_at=1)
        with activate(Tracer(sinks=[ring])):
            report = run_batch(
                [corpus], jobs=1, retry=self.RETRY, fault_plan=plan
            )
        assert report.ok
        retries = [e for e in ring.events if e["type"] == "retry"]
        assert len(retries) == 1
        failed = report.reports[0]
        assert failed.attempts == 2
        # the delay taken is exactly the policy's pure function of
        # (seed, key, attempt) — a chaos schedule replays bit-identically
        assert retries[0]["delay_s"] == round(self.RETRY.delay(failed.path, 1), 9)
        assert retries[0]["key"] == failed.path

    def test_quarantined_file_carries_failure_history(self, corpus):
        plan = FaultPlan(slow_stages=(SlowStage("worker", at=1, every=1, seconds=10.0),))
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.02, seed=1)
        report = run_batch([corpus], jobs=1, timeout_s=0.25, retry=retry, fault_plan=plan)
        doc = report.to_json()
        entry = next(f for f in doc["files"] if f["quarantined"])
        assert entry["attempts"] == 2 and not entry["ok"]


class TestExitCodeTaxonomy:
    """``repro batch`` honors the 0/1/3/4 contract end to end."""

    def test_degraded_only_run_exits_3(self, corpus, capsys):
        args = [
            "batch", str(corpus), "--no-store", "--deadline-ms", "0.0001", "--json",
        ]
        assert main(args) == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] and doc["answered"]
        assert doc["exit_code"] == 3 and doc["degraded"] == len(doc["files"])
        assert all(f["degraded"] for f in doc["files"])

    def test_clean_run_still_exits_0(self, corpus):
        assert main(["batch", str(corpus), "--no-store"]) == 0

    def test_hard_failure_beats_degraded(self, corpus, capsys):
        (corpus / "bad.nml").write_text("][")
        args = ["batch", str(corpus), "--no-store", "--deadline-ms", "0.0001"]
        assert main(args) == 1


class TestInputValidation:
    """collect_inputs rejects bad paths loudly (exit 2 at the CLI) instead
    of silently analyzing an empty or aliased corpus."""

    def test_nonexistent_path_raises(self, tmp_path):
        from repro.batch import BatchInputError

        with pytest.raises(BatchInputError, match="no such file"):
            collect_inputs([tmp_path / "ghost"])

    def test_non_nml_explicit_file_raises(self, tmp_path):
        from repro.batch import BatchInputError

        readme = tmp_path / "README.md"
        readme.write_text("not a program")
        with pytest.raises(BatchInputError, match="not a .nml program"):
            collect_inputs([readme])

    def test_returns_resolved_paths_deduped_across_aliases(self, corpus):
        # The same file via its directory and via a ./-style alias must
        # collapse to ONE resolved entry, not two spellings of it.
        alias = corpus / "nested" / ".." / "append.nml"
        found = collect_inputs([alias, corpus])
        assert [p.name for p in found] == ["append.nml", "rev.nml"]
        assert all(p.is_absolute() and ".." not in p.parts for p in found)

    def test_cli_exits_2_on_bad_input(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "ghost")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestLegacyDeprecationWarning:
    """The legacy-engine warning is a driver concern: exactly once per
    run, regardless of --jobs N (each worker used to re-print it)."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        from repro.escape.engine import reset_legacy_warning

        reset_legacy_warning()
        yield
        reset_legacy_warning()

    def test_parallel_batch_warns_exactly_once(self, corpus, capfd):
        from repro.escape.engine import LEGACY_DEPRECATION

        args = ["batch", str(corpus), "--no-store", "--jobs", "2",
                "--engine", "legacy"]
        assert main(args) == 0
        err = capfd.readouterr().err
        assert err.count(LEGACY_DEPRECATION) == 1

    def test_serial_batch_warns_exactly_once(self, corpus, capfd):
        from repro.escape.engine import LEGACY_DEPRECATION

        assert main(["batch", str(corpus), "--no-store", "--engine", "legacy"]) == 0
        assert capfd.readouterr().err.count(LEGACY_DEPRECATION) == 1

    def test_worklist_engine_does_not_warn(self, corpus, capfd):
        assert main(["batch", str(corpus), "--no-store", "--engine", "worklist"]) == 0
        assert "deprecated" not in capfd.readouterr().err
