"""The basic escape domain ``B_e`` (§3.2, as reinterpreted in §3.4).

``B_e`` is the finite chain

    ⟨0,0⟩ ⊑ ⟨1,0⟩ ⊑ ⟨1,1⟩ ⊑ … ⊑ ⟨1,d⟩

whose points mean:

* ``⟨0,0⟩`` — no part of the interesting object may be contained in the
  value of the expression;
* ``⟨1,i⟩`` — the bottom ``i`` spines of the interesting object may be
  contained in the value (``i = 0`` for indivisible, non-list objects).

``d`` is a per-program constant: the deepest spine count of any list type in
the program (:func:`repro.types.spines.program_spine_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class Escapement:
    """A point ⟨escapes, spines⟩ of the ``B_e`` chain."""

    escapes: int
    spines: int

    def __post_init__(self) -> None:
        if self.escapes not in (0, 1):
            raise AnalysisError(f"escapes must be 0 or 1, got {self.escapes}")
        if self.spines < 0:
            raise AnalysisError(f"spines must be non-negative, got {self.spines}")
        if self.escapes == 0 and self.spines != 0:
            raise AnalysisError(f"⟨0,{self.spines}⟩ is not a point of B_e")

    # -- order structure ---------------------------------------------------

    def leq(self, other: "Escapement") -> bool:
        """``self ⊑ other`` — componentwise on the chain."""
        return self.escapes <= other.escapes and self.spines <= other.spines

    def join(self, other: "Escapement") -> "Escapement":
        """Least upper bound.  ``B_e`` is a chain, so this is max."""
        if self.leq(other):
            return other
        if other.leq(self):
            return self
        # Unreachable on a chain, but keep the lattice law explicit.
        return Escapement(
            max(self.escapes, other.escapes), max(self.spines, other.spines)
        )

    def meet(self, other: "Escapement") -> "Escapement":
        """Greatest lower bound."""
        return other if other.leq(self) else self

    # -- paper notation ------------------------------------------------------

    @property
    def is_none(self) -> bool:
        """True for ⟨0,0⟩: nothing of the interesting object escapes."""
        return self.escapes == 0

    def __str__(self) -> str:
        return f"<{self.escapes},{self.spines}>"


#: ⟨0,0⟩ — bottom of every ``B_e`` chain.
NONE_ESCAPES = Escapement(0, 0)


def escapes_bottom(spines: int) -> Escapement:
    """⟨1, spines⟩ — the bottom ``spines`` spines may escape."""
    return Escapement(1, spines)


class BeChain:
    """The chain ``B_e`` for a fixed program constant ``d``.

    Provides enumeration (for extensional comparison of abstract functions),
    bounds checking, and the top element ⟨1,d⟩.
    """

    def __init__(self, d: int):
        if d < 0:
            raise AnalysisError(f"spine bound d must be non-negative, got {d}")
        self.d = d

    @property
    def bottom(self) -> Escapement:
        return NONE_ESCAPES

    @property
    def top(self) -> Escapement:
        return Escapement(1, self.d)

    def points(self) -> list[Escapement]:
        """All ``d + 2`` points, bottom first."""
        return [NONE_ESCAPES] + [Escapement(1, i) for i in range(self.d + 1)]

    def __contains__(self, point: Escapement) -> bool:
        return point.escapes == 0 or point.spines <= self.d

    def check(self, point: Escapement) -> Escapement:
        if point not in self:
            raise AnalysisError(f"{point} exceeds the B_e chain bound d={self.d}")
        return point

    def height(self) -> int:
        """Length of the longest strictly-ascending chain (= d + 2)."""
        return self.d + 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BeChain(d={self.d})"


def join_all(points: "list[Escapement] | tuple[Escapement, ...]") -> Escapement:
    """⊔ of any number of points (⟨0,0⟩ for the empty join)."""
    result = NONE_ESCAPES
    for point in points:
        result = result.join(point)
    return result
