"""A mark–sweep garbage collector over the instrumented heap.

The collector exists to make the paper's cost claims measurable:
``gc_marked`` counts the cells the mark phase traverses, which is exactly
the work block reclamation avoids ("reclamation of larger segments of
memory ... avoiding the traversal of the individual objects", §1), and
``gc_swept`` counts cells returned to the allocator one at a time.

Region-resident cells (stack/block) are *not* swept — their lifetime is the
region's — but when reachable they still cost mark work, as they would in a
real collector that must trace through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs import tracer as obs
from repro.semantics.heap import AllocKind, Cell, Heap
from repro.semantics.values import Env, Value, VClosure, VCons, VPrim, VTuple


@dataclass(frozen=True)
class GcStats:
    marked: int
    swept: int
    live_after: int


class MarkSweepGC:
    """Stop-the-world mark–sweep.  ``threshold`` is the number of heap
    allocations *since the last collection* above which
    :meth:`maybe_collect` triggers — the usual allocation-budget trigger
    (a live-count trigger would collect at every safepoint once live data
    exceeded it)."""

    def __init__(self, heap: Heap, threshold: int = 10_000):
        self.heap = heap
        self.threshold = threshold
        self._allocs_at_last_gc = 0

    def collect(self, roots: Iterable["Value | Env"]) -> GcStats:
        heap = self.heap
        marked: set[Cell] = set()
        mark_work = 0

        # Environment frames are deduplicated by identity: letrec frames are
        # cyclic (their closures capture the frame itself).
        seen_frames: set[int] = set()
        stack: list[Value] = []

        def push_env(env: Env) -> None:
            current: Env | None = env
            while current is not None:
                if id(current.frame) not in seen_frames:
                    seen_frames.add(id(current.frame))
                    stack.extend(current.frame.values())
                current = current.parent

        for root in roots:
            if isinstance(root, Env):
                push_env(root)
            else:
                stack.append(root)

        sanitizer = heap.sanitizer
        while stack:
            value = stack.pop()
            if isinstance(value, VCons):
                cell = value.cell
                if cell.freed:
                    # A root-reachable freed cell: harmless unless read, but
                    # worth surfacing — the sanitizer records it as a
                    # warning (never a halt; sound region optimizations
                    # leave dead references behind by design).
                    if sanitizer is not None:
                        sanitizer.warn(
                            "dangling-reference",
                            cell,
                            "gc mark phase",
                            f"freed {cell.kind.value} cell still reachable from roots",
                        )
                    continue
                if cell in marked:
                    continue
                marked.add(cell)
                mark_work += 1
                stack.append(cell.car)
                stack.append(cell.cdr)
            elif isinstance(getattr(value, "env", None), Env):
                # any closure-like value (interpreter VClosure, machine
                # MClosure): its captured environment is reachable
                push_env(value.env)
            elif isinstance(value, VPrim):
                stack.extend(value.args)
            elif isinstance(value, VTuple):
                stack.append(value.fst)
                stack.append(value.snd)

        swept = 0
        for cell in list(heap.cells.values()):
            if cell.kind is AllocKind.HEAP and cell not in marked:
                cell.freed = True
                del heap.cells[cell.id]
                swept += 1

        heap.metrics.gc_runs += 1
        heap.metrics.gc_marked += mark_work
        heap.metrics.gc_swept += swept
        self._allocs_at_last_gc = heap.metrics.heap_allocs
        tracing = obs.tracing()
        if tracing is not None:
            tracing.emit(
                "gc_run", marked=mark_work, swept=swept, live_after=len(heap.cells)
            )
            if swept:
                tracing.emit("cell_reclaim", count=swept, cause="gc-sweep")
        return GcStats(marked=mark_work, swept=swept, live_after=len(heap.cells))

    def maybe_collect(self, roots: Iterable["Value | Env"]) -> GcStats | None:
        if self.heap.metrics.heap_allocs - self._allocs_at_last_gc >= self.threshold:
            return self.collect(roots)
        return None
