"""A1a — Appendix A.1: the fixpoint iterations for APPEND, SPLIT, PS.

The paper iterates each functional from bottom and shows convergence after
2 evaluations (the second confirming the first): append^(2) = append^(1),
split^(3) = split^(2), ps^(2) = ps^(1).  We count body re-evaluations until
the fingerprint stabilizes — detection costs one confirming pass, so the
counts are those paper counts plus one, and must stay that small.
"""

from repro.bench.tables import print_table
from repro.escape.abstract import AbstractEvaluator
from repro.escape.lattice import BeChain
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.types.infer import infer_program
from repro.types.spines import program_spine_bound


def solve(program):
    infer_program(program)
    evaluator = AbstractEvaluator(BeChain(program_spine_bound(program)))
    evaluator.solve_bindings(program.letrec, {})
    return evaluator


def test_a1_fixpoint_iteration_counts(benchmark):
    program = paper_partition_sort()
    evaluator = benchmark(solve, program)

    rows = []
    for trace in evaluator.traces:
        rows.append(
            [trace.name, trace.iterations, "yes" if trace.converged else "NO"]
        )
    print_table(
        ["function", "body evaluations", "converged"],
        rows,
        title="Appendix A.1 fixpoint iterations (joint letrec knot)",
    )
    for trace in evaluator.traces:
        assert trace.converged and not trace.widened
        assert trace.iterations <= 4  # paper: 2-3 plus the confirming pass


def test_a1_append_alone_converges_like_paper(benchmark):
    # Analyzed alone (as the paper presents it), append stabilizes at its
    # second evaluation; the third confirms it.
    evaluator = benchmark(solve, prelude_program(["append"]))
    trace = evaluator.traces[0]
    assert trace.converged
    assert trace.iterations == 2  # append⁽¹⁾ computed, append⁽²⁾ confirms it
    # The last two fingerprints are equal — the paper's append⁽²⁾ = append⁽¹⁾.
    assert trace.fingerprints[-1] == trace.fingerprints[-2]


def test_a1_derivation_replay(benchmark):
    # The paper writes out append⁽⁰⁾ = ⊥, append⁽¹⁾ = y ⊔ sub¹(x),
    # append⁽²⁾ = append⁽¹⁾.  Replaying G at each iterate shows the same
    # ascent: <0,0> then <1,0> stable.
    from repro.escape.report import fixpoint_derivation

    program = prelude_program(["append"])
    lines = benchmark(fixpoint_derivation, program, "append", 1)
    assert [line.rsplit(" ", 1)[1] for line in lines] == ["<0,0>", "<1,0>", "<1,0>"]
    print()
    for line in lines:
        print(f"  {line}")


def test_a1_fixpoint_cost_scales_with_knot(benchmark):
    # Analysis cost in evaluator steps, per function subset.
    def steps(names):
        program = prelude_program(names)
        evaluator = solve(program)
        return evaluator.steps

    all_steps = benchmark(steps, ["append", "split", "ps"])
    append_steps = steps(["append"])
    assert all_steps > append_steps  # bigger knot, more work
    print_table(
        ["knot", "abstract evaluator steps"],
        [["append", append_steps], ["append+split+ps", all_steps]],
        title="fixpoint cost",
    )
