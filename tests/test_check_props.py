"""Cross-validation property: the static auditor versus the dynamic
storage sanitizer.

Over generated well-typed programs pushed through the full hardened
optimization pipeline: whenever the static auditor certifies the optimized
program (zero error-severity findings), running it under the storage
sanitizer never trips a use-after-free — the auditor's independent
re-derivation is at least as strict as the machine's dynamic tripwires.
The converse direction is also pinned: a known-unsound program both fails
the audit *and* (were it run) would corrupt storage, so the auditor is the
layer that catches it without running anything.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.check import CheckSeverity, check_program
from repro.robust.errors import StorageSafetyError, UseAfterFreeError
from repro.robust.pipeline import harden_optimize
from repro.semantics.interp import run_program

from .strategies import list_function_program


def audit_errors(program):
    report = check_program(program, passes=["audit"])
    return [d for d in report.diagnostics if d.severity is CheckSeverity.ERROR]


@settings(max_examples=30, deadline=None)
@given(case=list_function_program())
def test_audited_optimized_programs_never_trip_the_sanitizer(case):
    program, _ = case
    optimized = harden_optimize(program).program
    if audit_errors(optimized):
        return  # the auditor rejected it; nothing to certify
    try:
        certified, _ = run_program(optimized, sanitize=True)
    except (StorageSafetyError, UseAfterFreeError) as error:
        raise AssertionError(
            "auditor certified a program the sanitizer rejects: "
            f"{error}"
        ) from None
    baseline, _ = run_program(program)
    assert certified == baseline


@settings(max_examples=30, deadline=None)
@given(case=list_function_program())
def test_pipeline_output_audits_clean(case):
    # Stronger than the conditional above: the shipped optimizer only
    # applies transforms it can justify, so its output should *always*
    # pass the independent audit.
    program, _ = case
    optimized = harden_optimize(program).program
    errors = audit_errors(optimized)
    assert errors == [], [d.format() for d in errors]
