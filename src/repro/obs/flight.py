"""The crash flight recorder: an always-on black box for degraded runs.

A :class:`FlightRecorder` is a tracer sink that keeps the last
``capacity`` events in a bounded ring — the same near-zero cost profile
as :class:`~repro.obs.sinks.RingBufferSink` — and *auto-dumps* a
validated trace artifact the moment a trigger event flows through it:

* ``degradation`` — the hardened engine fell back toward W^τ (exit 3);
* ``quarantine`` — the batch driver excluded a poison input;
* ``worker_restart`` — the supervisor replaced a crashed/hung worker;
* ``check_rule_fired`` with severity ``error`` — the auditor found an
  unsound optimization (exit 4).

The dump is a JSONL file headed by a synthetic ``flight_dump`` event
recording why and how much was captured, with the captured events
re-sequenced from 1 so the artifact passes :func:`validate_trace` as-is
— every flight dump is immediately `repro explain`-able.

Because the recorder is *always on* (the CLI installs one around every
command), triggers fire inside the process where degradation happened,
so the black box captures the causal run-up even when the process then
dies.  Dump files are only written when a dump directory is configured
(``--flight-dir`` / ``REPRO_FLIGHT_DIR``); without one the ring still
records and can be snapshotted on demand (``GET /debug/flight``).
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path

#: Default ring bound: enough for a full single-query run-up (the worklist
#: engine emits ~hundreds of events per solve), small enough to be cheap.
DEFAULT_FLIGHT_CAPACITY = 4_096

#: Cap on dump files per recorder, so a pathological run (every file of a
#: large batch degrading) cannot fill the disk with near-identical boxes.
DEFAULT_MAX_DUMPS = 8

#: Event types that trip an automatic dump.
TRIGGER_EVENTS = frozenset({"degradation", "quarantine", "worker_restart"})

#: Environment variable naming the dump directory (the CLI flag wins).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"


def _is_trigger(event: dict) -> "str | None":
    """The trigger reason if ``event`` should trip a dump, else ``None``."""
    etype = event["type"]
    if etype in TRIGGER_EVENTS:
        return etype
    if etype == "check_rule_fired" and event.get("severity") == "error":
        return "checker_error"
    return None


class FlightRecorder:
    """A bounded ring sink that dumps a validated black box on trouble."""

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        dump_dir: "str | Path | None" = None,
        max_dumps: int = DEFAULT_MAX_DUMPS,
        label: str = "flight",
    ):
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.max_dumps = max_dumps
        self.label = label
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.total = 0
        self.triggers = 0
        self.dumps: list[Path] = []

    # -- sink protocol -------------------------------------------------------

    def write(self, event: dict) -> None:
        self._ring.append(event)
        self.total += 1
        reason = _is_trigger(event)
        if reason is not None:
            self.triggers += 1
            if self.dump_dir is not None and len(self.dumps) < self.max_dumps:
                self.dumps.append(self._dump_to_dir(reason))

    # -- snapshots & dumps ---------------------------------------------------

    def snapshot(self) -> list[dict]:
        """The ring's contents right now, oldest first."""
        return list(self._ring)

    def dump_events(self, reason: str) -> list[dict]:
        """The black-box artifact as events: a synthetic ``flight_dump``
        header (seq 0) plus the captured window re-sequenced from 1, so
        the whole artifact passes ``validate_trace``."""
        captured = self.snapshot()
        header = {
            "seq": 0,
            "ts": 0.0,
            "type": "flight_dump",
            "reason": reason,
            "captured": len(captured),
            "total": self.total,
        }
        out = [header]
        for offset, event in enumerate(captured, start=1):
            copy = dict(event)
            copy["src_seq"] = copy.get("seq", offset)
            copy["seq"] = offset
            out.append(copy)
        return out

    def dump(self, path: "str | Path", reason: str = "manual") -> Path:
        """Write the black box to ``path`` as JSONL; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for event in self.dump_events(reason):
                handle.write(json.dumps(event, default=str) + "\n")
        os.replace(tmp, path)
        return path

    def _dump_to_dir(self, reason: str) -> Path:
        assert self.dump_dir is not None
        name = f"{self.label}-{len(self.dumps):03d}-{reason}.jsonl"
        return self.dump(self.dump_dir / name, reason)


# -- the process-wide recorder ------------------------------------------------
#
# The CLI installs one recorder per process (always on); components that
# need the black box on demand — the serve daemon's /debug/flight, the
# CLI's belt-and-braces dump on exit 3/4 — fetch it here.

_installed: FlightRecorder | None = None


def install(flight: FlightRecorder) -> FlightRecorder:
    """Make ``flight`` the process-wide recorder; returns it."""
    global _installed
    _installed = flight
    return flight


def recorder() -> FlightRecorder | None:
    """The process-wide recorder, or ``None`` before :func:`install`."""
    return _installed


def dump_dir_from_env() -> "Path | None":
    """The dump directory named by ``REPRO_FLIGHT_DIR``, if set."""
    value = os.environ.get(FLIGHT_DIR_ENV)
    return Path(value) if value else None
