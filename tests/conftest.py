"""Shared fixtures: the paper's programs and a corpus of prelude functions
with concrete test inputs (used by the safety validation property tests)."""

from __future__ import annotations

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import paper_map_pair, paper_partition_sort, prelude_program


@pytest.fixture
def partition_sort():
    return paper_partition_sort()


@pytest.fixture
def map_pair():
    return paper_map_pair()


@pytest.fixture
def ps_analysis(partition_sort):
    return EscapeAnalysis(partition_sort)


#: (prelude functions to load, function under test, concrete args, 1-based
#: interesting index) — every entry is exercised by the observer-vs-abstract
#: safety tests and by differential interpreter tests.
CORPUS: list[tuple[list[str], str, list, int]] = [
    (["append"], "append", [[1, 2, 3], [4, 5]], 1),
    (["append"], "append", [[1, 2, 3], [4, 5]], 2),
    (["append"], "append", [[], [4, 5]], 2),
    (["rev"], "rev", [[1, 2, 3, 4]], 1),
    (["length"], "length", [[1, 2, 3]], 1),
    (["sum"], "sum", [[1, 2, 3]], 1),
    (["last"], "last", [[1, 2, 3]], 1),
    (["take"], "take", [2, [1, 2, 3, 4]], 2),
    (["drop"], "drop", [2, [1, 2, 3, 4]], 2),
    (["copy"], "copy", [[1, 2, 3]], 1),
    (["iota"], "iota", [5], 1),
    (["member"], "member", [2, [1, 2, 3]], 2),
    (["interleave"], "interleave", [[1, 2], [3, 4, 5]], 1),
    (["interleave"], "interleave", [[1, 2], [3, 4, 5]], 2),
    (["snoc"], "snoc", [[1, 2], 9], 1),
    (["nth"], "nth", [1, [1, 2, 3]], 2),
    (["insert"], "insert", [2, [1, 3, 5]], 2),
    (["isort"], "isort", [[3, 1, 2]], 1),
    (["concat"], "concat", [[[1, 2], [3], []]], 1),
    (["heads"], "heads", [[[1, 2], [3, 4]]], 1),
    (["tails_tops"], "tails_tops", [[[1, 2], [3, 4]]], 1),
    (["ps"], "ps", [[5, 2, 7, 1, 3, 4]], 1),
    (["split"], "split", [3, [5, 2, 7, 1], [], []], 2),
    (["split"], "split", [3, [5, 2, 7, 1], [0], []], 3),
    (["split"], "split", [3, [5, 2, 7, 1], [], [9]], 4),
    (["rev_acc"], "rev_acc", [[1, 2, 3], []], 1),
    (["rev_acc"], "rev_acc", [[1, 2, 3], [0]], 2),
]


@pytest.fixture(params=CORPUS, ids=lambda c: f"{c[1]}@{c[3]}")
def corpus_case(request):
    names, function, args, index = request.param
    return prelude_program(names), function, args, index
