"""The §7 extension: escape analysis over tuples.

The paper's SPLIT returns its two lists as a 2-spine list because the core
language has no products.  With tuples, the natural ML phrasing
``split_pair : int -> int list -> int list -> int list -> int list * int list``
gets analyzed too — and produces exactly the paper's escape table.

Run with:  python examples/tuples.py
"""

from repro import analyze, prelude_program, run_program
from repro.bench.tables import render_table


def main() -> None:
    program = prelude_program(
        ["split", "split_pair", "ps", "ps_pair", "zip", "unzip"],
        "ps_pair [5, 2, 7, 1, 3, 4]",
    )
    analysis = analyze(program)

    rows = []
    for i in range(1, 5):
        rows.append(
            [
                i,
                str(analysis.global_test("split", i).result),
                str(analysis.global_test("split_pair", i).result),
            ]
        )
    print(
        render_table(
            ["param", "split (2-spine list)", "split_pair (tuple)"],
            rows,
            title="the tuple encoding reproduces Appendix A.1's SPLIT column",
        )
    )
    print()

    ps = analysis.global_test("ps", 1)
    ps_pair = analysis.global_test("ps_pair", 1)
    print(f"G(ps, 1)      = {ps.result}")
    print(f"G(ps_pair, 1) = {ps_pair.result}   (same: top spine never escapes)")
    print()

    for name in ("zip", "unzip"):
        result = analysis.global_test(name, 1)
        print(f"{name} : {analysis.scheme(name)}")
        print(f"  G({name}, 1) = {result.result} — {result.describe()}")

    result, _ = run_program(program)
    print()
    print(f"ps_pair [5, 2, 7, 1, 3, 4] = {result}")


if __name__ == "__main__":
    main()
