"""Standard interpreter tests: arithmetic, lists, control flow, closures,
letrec, dcons, regions, errors, and Python interop."""

import pytest

from repro.lang.errors import EvalError, UseAfterFreeError
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import prelude_program
from repro.semantics.interp import Interpreter, run_program
from repro.semantics.values import VBool, VClosure, VCons, VInt, VNil


def run(source: str):
    interp = Interpreter()
    value = interp.run(parse_program(source))
    return interp.to_python(value)


class TestArithmetic:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2", 3),
            ("10 - 3", 7),
            ("4 * 5", 20),
            ("17 / 5", 3),
            ("0 - 7", -7),
            ("2 + 3 * 4", 14),
            ("(2 + 3) * 4", 20),
        ],
    )
    def test_arith(self, source, expected):
        assert run(source) == expected

    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 == 1", True),
            ("1 == 2", False),
            ("1 <> 2", True),
            ("1 < 2", True),
            ("2 <= 2", True),
            ("3 > 4", False),
            ("4 >= 4", True),
        ],
    )
    def test_comparisons(self, source, expected):
        assert run(source) == expected

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            run("1 / 0")

    def test_arith_type_error(self):
        with pytest.raises(EvalError):
            run("1 + true")


class TestListsAndPrims:
    def test_list_literal(self):
        assert run("[1, 2, 3]") == [1, 2, 3]

    def test_nested_lists(self):
        assert run("[[1], [], [2, 3]]") == [[1], [], [2, 3]]

    def test_car_cdr(self):
        assert run("car [1, 2]") == 1
        assert run("cdr [1, 2]") == [2]

    def test_car_of_nil(self):
        with pytest.raises(EvalError):
            run("car nil")

    def test_cdr_of_nil(self):
        with pytest.raises(EvalError):
            run("cdr nil")

    def test_null(self):
        assert run("null nil") is True
        assert run("null [1]") is False

    def test_null_of_int(self):
        with pytest.raises(EvalError):
            run("null 3")

    def test_cons_allocates_one_cell(self):
        interp = Interpreter()
        interp.run(parse_program("cons 1 nil"))
        assert interp.metrics.heap_allocs == 1

    def test_aliasing_not_copying(self):
        # cdr returns the same cells, not a copy
        interp = Interpreter()
        value = interp.run(parse_program("letrec x = [1, 2, 3] in cdr x"))
        assert interp.metrics.heap_allocs == 3  # no extra cells

    def test_dcons_reuses(self):
        interp = Interpreter()
        value = interp.run(parse_program("letrec x = [9, 9] in dcons x 1 nil"))
        assert interp.to_python(value) == [1]
        assert interp.metrics.reused == 1
        assert interp.metrics.heap_allocs == 2  # only the literal

    def test_dcons_nil_donor_falls_back(self):
        interp = Interpreter()
        value = interp.run(parse_program("dcons nil 1 nil"))
        assert interp.to_python(value) == [1]
        assert interp.metrics.dcons_fallback == 1


class TestControlFlowAndFunctions:
    def test_if(self):
        assert run("if 1 < 2 then 10 else 20") == 10
        assert run("if 1 > 2 then 10 else 20") == 20

    def test_if_non_bool_condition(self):
        with pytest.raises(EvalError):
            run("if 1 then 2 else 3")

    def test_lambda_application(self):
        assert run("(lambda x. x + 1) 41") == 42

    def test_closure_captures_environment(self):
        assert run("letrec make = lambda n. lambda x. x + n in (make 10) 5") == 15

    def test_currying(self):
        assert run("letrec add = lambda a b. a + b in add 2 3") == 5

    def test_applying_non_function(self):
        with pytest.raises(EvalError):
            run("1 2")

    def test_unbound_variable(self):
        with pytest.raises(EvalError):
            run("zzz")

    def test_recursion(self):
        assert run("fact n = if n == 0 then 1 else n * fact (n - 1); fact 10") == 3628800

    def test_mutual_recursion(self):
        source = (
            "even n = if n == 0 then true else odd (n - 1);"
            "odd n = if n == 0 then false else even (n - 1);"
            "even 10"
        )
        assert run(source) is True

    def test_letrec_value_binding(self):
        assert run("letrec x = 1 + 1 in x * x") == 4

    def test_shadowing(self):
        assert run("letrec x = 1 in (lambda x. x + 1) 10") == 11

    def test_higher_order(self):
        assert run(
            "map f l = if (null l) then nil else cons (f (car l)) (map f (cdr l));"
            "map (lambda x. x * x) [1, 2, 3]"
        ) == [1, 4, 9]


class TestPreludePrograms:
    def test_partition_sort(self, partition_sort):
        result, _ = run_program(partition_sort)
        assert result == [1, 2, 3, 4, 5, 7]

    def test_eval_in(self, partition_sort):
        interp = Interpreter()
        value = interp.eval_in(partition_sort, "ps [9, 8, 7]")
        assert interp.to_python(value) == [7, 8, 9]

    def test_deep_recursion(self):
        program = prelude_program(["create_list", "length"], "length (create_list 2000)")
        result, _ = run_program(program)
        assert result == 2000


class TestInterop:
    def test_from_python_round_trip(self):
        interp = Interpreter()
        for obj in [0, -3, True, False, [], [1, 2], [[1], [2, [3]] if False else [2]]]:
            assert interp.to_python(interp.from_python(obj)) == obj

    def test_from_python_rejects_strings(self):
        with pytest.raises(EvalError):
            Interpreter().from_python("nope")

    def test_to_python_rejects_closures(self):
        interp = Interpreter()
        value = interp.run(parse_program("lambda x. x"))
        assert isinstance(value, VClosure)
        with pytest.raises(EvalError):
            interp.to_python(value)

    def test_bool_distinct_from_int(self):
        interp = Interpreter()
        assert interp.to_python(interp.from_python(True)) is True


class TestMetrics:
    def test_eval_steps_and_applications(self):
        interp = Interpreter()
        interp.run(parse_program("(lambda x. x) 1"))
        assert interp.metrics.applications == 1
        assert interp.metrics.eval_steps >= 3

    def test_metrics_snapshot_diff(self):
        interp = Interpreter()
        before = interp.metrics.snapshot()
        interp.run(parse_program("[1, 2, 3]"))
        delta = interp.metrics.diff(before)
        assert delta["heap_allocs"] == 3
