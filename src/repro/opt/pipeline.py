"""Ready-made optimization recipes, including the paper's own artifacts.

* :func:`paper_ps_prime`        — §A.3.2's ``PS'``: partition sort whose
  ``APPEND`` calls go to the reuse specialization ``APPEND'`` (safe because
  the first argument of ``APPEND`` inside ``PS`` is a ``PS`` result, whose
  top spine Theorem 2 proves unshared).
* :func:`paper_ps_double_prime` — §A.3.2's ``PS''``: additionally reuses
  the top-spine cells of ``PS``'s own argument (safe only when the actual
  argument is unshared — true for the program's literal list).
* :func:`paper_rev_prime`       — §A.3.2's ``REV'`` for the naive reverse.
* :func:`paper_stack_allocated` — §A.3.1 applied to the partition-sort
  program's literal argument.
* :func:`paper_block_allocated` — §A.3.3's ``PS (create_list i)`` with the
  producer's spine in a block region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeResults
from repro.robust.errors import Degradation
from repro.lang.ast import Program
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.opt.block_alloc import BlockAllocResult, block_allocate_producer
from repro.opt.reuse import (
    make_reuse_specialization,
    redirect_body_calls,
    redirect_calls,
)
from repro.opt.stack_alloc import StackAllocResult, stack_allocate_body

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.query import AnalysisSession


@dataclass
class PipelineResult:
    """A transformed program plus what was done to it.

    ``degradations`` records every candidate that was *skipped* — an
    analysis or transformation failure — with the original exception
    preserved, so a skipped optimization is auditable, never silent.
    """

    program: Program
    steps: list[str]
    degradations: "list[Degradation]" = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)


def paper_ps_prime(result: str = "ps [5, 2, 7, 1, 3, 4]") -> PipelineResult:
    """``PS'``: partition sort calling ``APPEND'`` (reuse of append's first
    argument, whose cells are PS-result cells and therefore unshared)."""
    program = paper_partition_sort(result)
    reuse = make_reuse_specialization(program, "append", 1, new_name="append_reuse")
    program = redirect_calls(reuse.program, "ps", "append", "append_reuse")
    return PipelineResult(
        program=program,
        steps=[
            f"specialized append -> append_reuse ({reuse.rewritten_sites} DCONS site)",
            "redirected append calls inside ps to append_reuse",
        ],
    )


def paper_ps_double_prime(result: str = "ps [5, 2, 7, 1, 3, 4]") -> PipelineResult:
    """``PS''``: PS' plus in-place reuse of PS's own argument spine.

    Only sound when PS's actual argument is unshared — true for the
    program's literal list (and for any freshly constructed argument).
    """
    base = paper_ps_prime(result)
    program = base.program
    reuse = make_reuse_specialization(program, "ps", 1, new_name="ps_reuse")
    program = redirect_calls(reuse.program, "ps_reuse", "append", "append_reuse")
    program = redirect_body_calls(program, "ps", "ps_reuse")
    return PipelineResult(
        program=program,
        steps=base.steps
        + [
            f"specialized ps -> ps_reuse ({reuse.rewritten_sites} DCONS site)",
            "redirected the program body to ps_reuse",
        ],
    )


def paper_rev_prime(result: str = "rev [1, 2, 3, 4, 5]") -> PipelineResult:
    """``REV'``: naive reverse reusing its argument's spine cells, calling
    ``APPEND'`` for the recursive append."""
    program = prelude_program(["rev"], result)
    append_reuse = make_reuse_specialization(program, "append", 1, new_name="append_reuse")
    rev_reuse = make_reuse_specialization(
        append_reuse.program, "rev", 1, new_name="rev_reuse"
    )
    program = redirect_calls(rev_reuse.program, "rev_reuse", "append", "append_reuse")
    program = redirect_body_calls(program, "rev", "rev_reuse")
    return PipelineResult(
        program=program,
        steps=[
            f"specialized append -> append_reuse ({append_reuse.rewritten_sites} DCONS site)",
            f"specialized rev -> rev_reuse ({rev_reuse.rewritten_sites} DCONS site)",
            "redirected append inside rev_reuse and the body to the specializations",
        ],
    )


def paper_stack_allocated(result: str = "ps [5, 2, 7, 1, 3, 4]") -> StackAllocResult:
    """§A.3.1: the literal list's spine lives in PS's activation record."""
    return stack_allocate_body(paper_partition_sort(result))


def paper_block_allocated(n: int = 100) -> BlockAllocResult:
    """§A.3.3: ``PS (create_list i)`` with the produced spine in a block."""
    program = prelude_program(
        ["append", "split", "ps", "create_list"], f"ps (create_list {n})"
    )
    return block_allocate_producer(program, "create_list")


def auto_reuse(
    program: Program,
    analysis: EscapeResults | None = None,
    session: "AnalysisSession | None" = None,
) -> PipelineResult:
    """Generic driver: reuse-specialize every (function, parameter) pair the
    analysis proves reusable.  The specializations are *added*; call sites
    are not redirected (that needs per-call sharing facts — see
    :func:`redirect_calls`).

    A function whose analysis fails, or a candidate whose specialization is
    inapplicable, is skipped and recorded in ``degradations`` with the
    original exception — budget breaches and unknown exceptions propagate.

    ``session`` seeds the *initial* analysis with an existing query
    session; once a specialization changes the program a fresh session is
    started for the transformed program (its fingerprint differs).
    """
    from repro.lang.errors import AnalysisError, OptimizationError, TypeInferenceError
    from repro.robust.errors import Degradation, reason_for

    analysis = analysis or EscapeAnalysis(program, session=session)
    steps: list[str] = []
    degradations: list[Degradation] = []
    for name in list(program.binding_names()):
        try:
            results = analysis.global_all(name)
        except (AnalysisError, TypeInferenceError, OptimizationError) as error:
            degradations.append(
                Degradation(
                    reason=reason_for(error),
                    stage=f"analyze:{name}",
                    message=str(error),
                    error=error,
                )
            )
            continue
        for result in results:
            if result.param_spines >= 1 and result.non_escaping_spines >= 1:
                try:
                    reuse = make_reuse_specialization(
                        program,
                        name,
                        result.param_index,
                        new_name=f"{name}_reuse{result.param_index}",
                        analysis=analysis,
                    )
                except OptimizationError as error:
                    degradations.append(
                        Degradation(
                            reason="optimization-skipped",
                            stage=f"reuse:{name}:{result.param_index}",
                            message=str(error),
                            error=error,
                        )
                    )
                    continue
                program = reuse.program
                analysis = EscapeAnalysis(program)
                steps.append(
                    f"{name} param {result.param_index} -> {reuse.new_name} "
                    f"({reuse.rewritten_sites} site)"
                )
    return PipelineResult(program=program, steps=steps, degradations=degradations)
