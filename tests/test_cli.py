"""CLI tests: every subcommand, both program sources (file, -e), errors."""

import json

import pytest

from repro.cli import _parse_observer_arg, main
from repro.escape.exact import Source
from repro.lang.prelude import prelude_source

APPEND = prelude_source(["append"], "append [1, 2] [3]")


@pytest.fixture
def append_file(tmp_path):
    path = tmp_path / "append.nml"
    path.write_text(APPEND)
    return str(path)


class TestRun:
    def test_run_file(self, append_file, capsys):
        assert main(["run", append_file]) == 0
        assert "[1, 2, 3]" in capsys.readouterr().out

    def test_run_inline(self, capsys):
        assert main(["run", "-e", "1 + 2 * 3"]) == 0
        assert capsys.readouterr().out.strip() == "7"

    def test_run_with_metrics(self, capsys):
        assert main(["run", "-e", "[1, 2, 3]", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "heap_allocs: 3" in out

    def test_run_with_gc(self, capsys):
        source = prelude_source(["rev", "iota"], "rev (iota 20)")
        assert main(["run", "-e", source, "--gc", "--gc-threshold", "30", "--metrics"]) == 0
        assert "gc_runs" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.nml"]) == 1
        assert "error" in capsys.readouterr().err

    def test_runtime_error(self, capsys):
        assert main(["run", "-e", "car nil"]) == 1
        assert "car of nil" in capsys.readouterr().err


class TestReportAndAnalyze:
    def test_report(self, append_file, capsys):
        assert main(["report", append_file]) == 0
        out = capsys.readouterr().out
        assert "G(append, 1) = <1,0>" in out
        assert "sharing" in out

    def test_analyze_all_functions(self, append_file, capsys):
        assert main(["analyze", append_file]) == 0
        out = capsys.readouterr().out
        assert "G(append, 1)" in out and "G(append, 2)" in out

    def test_analyze_single_function(self, capsys):
        source = prelude_source(["ps"])
        assert main(["analyze", "-e", source, "--function", "ps"]) == 0
        out = capsys.readouterr().out
        assert "G(ps, 1) = <1,0>" in out
        assert "G(append" not in out

    def test_analyze_with_sharing(self, capsys):
        assert main(["analyze", "-e", prelude_source(["ps"]), "--function", "ps", "--sharing"]) == 0
        assert "unshared" in capsys.readouterr().out

    def test_analyze_local(self, capsys):
        source = prelude_source(["map", "pair"])
        assert main(["analyze", "-e", source, "--local", "map pair [[1, 2], [3, 4]]"]) == 0
        out = capsys.readouterr().out
        assert "L(map, 1)" in out and "L(map, 2)" in out

    def test_parse_error_reported(self, capsys):
        assert main(["analyze", "-e", "f x = ((("]) == 1
        assert "error" in capsys.readouterr().err


class TestObserve:
    def test_observe_no_escape(self, append_file, capsys):
        assert main(["observe", append_file, "append", "[1, 2]", "[3]", "-i", "1"]) == 0
        assert "<0,0>" in capsys.readouterr().out

    def test_observe_escape(self, append_file, capsys):
        assert main(["observe", append_file, "append", "[1, 2]", "[3]", "-i", "2"]) == 0
        out = capsys.readouterr().out
        assert "<1,1>" in out and "level(s) 1" in out

    def test_observe_function_arg(self, capsys):
        source = prelude_source(["map", "pair"])
        assert main(
            ["observe", "-e", source, "map", "@pair", "[[1, 2], [3, 4]]", "-i", "2"]
        ) == 0
        assert "<0,0>" in capsys.readouterr().out

    def test_observe_json(self, append_file, capsys):
        assert main(
            ["observe", append_file, "append", "[1, 2]", "[3]", "-i", "2", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["function"] == "append"
        assert doc["param_index"] == 2
        assert doc["escapement"] == "<1,1>"
        assert doc["escaped"] is True
        assert doc["escaped_levels"] == [1]

    def test_observe_json_no_escape(self, append_file, capsys):
        assert main(
            ["observe", append_file, "append", "[1, 2]", "[3]", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["escaped"] is False
        assert doc["escaped_levels"] == []


class TestObserverArgParsing:
    def test_at_prefix_is_nml_source(self):
        parsed = _parse_observer_arg("@pair")
        assert isinstance(parsed, Source)
        assert parsed == "pair"

    def test_python_literals(self):
        assert _parse_observer_arg("[1, [2], 3]") == [1, [2], 3]
        assert _parse_observer_arg("42") == 42
        assert _parse_observer_arg("True") is True

    def test_invalid_literal_raises(self):
        with pytest.raises((ValueError, SyntaxError)):
            _parse_observer_arg("not a literal")


class TestSpines:
    def test_spines(self, capsys):
        assert main(["spines", "[[1, 2], [3]]"]) == 0
        out = capsys.readouterr().out
        assert "2 spine(s)" in out

    def test_spines_flat(self, capsys):
        assert main(["spines", "[1, 2, 3]"]) == 0
        assert "1 spine(s), 3 cell(s)" in capsys.readouterr().out


class TestOptimize:
    def test_reuse(self, capsys):
        assert main(["optimize", "-e", prelude_source(["append"]), "--reuse", "append:1"]) == 0
        out = capsys.readouterr().out
        assert "dcons" in out and "append_reuse" in out

    def test_reuse_default_index(self, capsys):
        assert main(["optimize", "-e", prelude_source(["rev"]), "--reuse", "rev"]) == 0
        assert "rev_reuse" in capsys.readouterr().out

    def test_stack(self, capsys):
        source = prelude_source(["ps"], "ps [5, 2, 7]")
        assert main(["optimize", "-e", source, "--stack"]) == 0
        assert "cons site(s) moved" in capsys.readouterr().out

    def test_block(self, capsys):
        source = prelude_source(["ps", "create_list"], "ps (create_list 5)")
        assert main(["optimize", "-e", source, "--block", "create_list"]) == 0
        out = capsys.readouterr().out
        assert "create_list_block" in out

    def test_unsound_reuse_refused(self, capsys):
        assert main(["optimize", "-e", prelude_source(["append"]), "--reuse", "append:2"]) == 1
        assert "unsound" in capsys.readouterr().err


class TestMachineFlag:
    def test_run_on_machine(self, capsys):
        source = prelude_source(["ps"], "ps [5, 2, 7, 1, 3, 4]")
        assert main(["run", "-e", source, "--machine", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "[1, 2, 3, 4, 5, 7]" in out
        assert "heap_allocs: 64" in out  # same count as the interpreter

    def test_machine_with_gc(self, capsys):
        source = prelude_source(["rev", "iota"], "rev (iota 25)")
        assert main(
            ["run", "-e", source, "--machine", "--gc", "--gc-threshold", "40", "--metrics"]
        ) == 0
        assert "gc_runs" in capsys.readouterr().out


class TestDisasm:
    def test_disassembles_program(self, append_file, capsys):
        assert main(["disasm", append_file]) == 0
        out = capsys.readouterr().out
        assert "closure append(x)" in out
        assert "branch" in out
        assert "push_prim cons" in out


class TestRobustFlags:
    def test_robust_exact_exit_zero(self, append_file, capsys):
        assert main(["analyze", append_file, "--robust"]) == 0
        out = capsys.readouterr().out
        assert "G(append, 1) = <1,0>" in out
        assert "degraded" not in out

    def test_budget_flag_implies_robust_and_exit_three(self, append_file, capsys):
        assert main(["analyze", append_file, "--max-iterations", "1"]) == 3
        captured = capsys.readouterr()
        assert "[degraded: iteration-budget-exceeded]" in captured.out
        assert "warning: degraded" in captured.err
        # The degraded answer is the sound worst case, not a crash.
        assert "G(append, 1) = <1,1>" in captured.out

    def test_strict_turns_degradation_into_an_error(self, append_file, capsys):
        assert main(["analyze", append_file, "--max-iterations", "1", "--strict"]) == 1
        assert "error: degraded" in capsys.readouterr().err

    def test_strict_with_exact_result_is_fine(self, append_file):
        assert main(["analyze", append_file, "--robust", "--strict"]) == 0

    def test_deadline_flag(self, append_file, capsys):
        assert main(["analyze", append_file, "--deadline-ms", "0"]) == 3
        assert "deadline-exceeded" in capsys.readouterr().out

    def test_robust_local_test(self, append_file, capsys):
        assert (
            main(["analyze", append_file, "--robust", "--local", "append [1] [2]"]) == 0
        )
        assert "L(append" in capsys.readouterr().out

    def test_optimize_robust(self, capsys):
        source = prelude_source(["append"], "append [1, 2] [3]")
        code = main(["optimize", "-e", source, "--robust"])
        out = capsys.readouterr().out
        assert code in (0, 3)
        assert "applied:" in out or "no storage optimization" in out

    def test_optimize_robust_strict_degraded(self, capsys):
        source = prelude_source(["ps"], "ps [5, 2, 7]")
        code = main(["optimize", "-e", source, "--robust", "--max-steps", "1"])
        captured = capsys.readouterr()
        assert code == 3
        assert "degraded" in captured.err

    def test_run_sanitize_clean_program(self, append_file, capsys):
        assert main(["run", append_file, "--sanitize"]) == 0
        assert "[1, 2, 3]" in capsys.readouterr().out


class TestJsonOutput:
    def test_analyze_json(self, append_file, capsys):
        assert main(["analyze", append_file, "--json", "--stats"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "exact"
        by_param = {(r["function"], r["param_index"]): r for r in doc["results"]}
        assert by_param[("append", 1)]["result"] == "<1,0>"
        assert by_param[("append", 2)]["result"] == "<1,1>"
        assert doc["stats"]["solve_misses"] == 1

    def test_analyze_json_local(self, capsys):
        source = prelude_source(["map", "pair"])
        assert main(
            ["analyze", "-e", source, "--local", "map pair [[1, 2], [3, 4]]", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert all(r["kind"] == "local" for r in doc["results"])
        assert len(doc["results"]) == 2

    def test_analyze_json_robust_degraded(self, append_file, capsys):
        assert main(
            ["analyze", append_file, "--max-iterations", "1", "--json"]
        ) == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "robust"
        assert doc["degraded"] is True
        first = doc["results"][0]
        assert first["degraded"] is True
        assert first["degradation"]["reason"] == "iteration-budget-exceeded"

    def test_analyze_json_robust_exact(self, append_file, capsys):
        assert main(["analyze", append_file, "--robust", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["degraded"] is False
        assert all(r["degraded"] is False for r in doc["results"])

    def test_report_json(self, append_file, capsys):
        assert main(["report", append_file, "--json", "--stats"]) == 0
        doc = json.loads(capsys.readouterr().out)
        append = next(f for f in doc["functions"] if f["name"] == "append")
        assert append["is_function"] is True
        assert append["converged"] is True
        assert 2 <= append["iterations"] <= 3
        assert append["results"][0]["result"] == "<1,0>"
        assert "sharing" in doc and "stats" in doc


class TestTraceAndProfile:
    def test_trace_command_emits_valid_jsonl(self, append_file, capsys):
        from repro.obs.events import validate_trace

        assert main(["trace", append_file]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert validate_trace(events) == len(events)
        assert any(e["type"] == "fixpoint_converged" for e in events)

    def test_trace_command_out_file(self, append_file, tmp_path, capsys):
        from repro.obs.events import validate_trace
        from repro.obs.sinks import read_trace

        out = tmp_path / "trace.jsonl"
        assert main(["trace", append_file, "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "wrote" in captured.err
        events = read_trace(out)
        assert validate_trace(events) == len(events)

    def test_trace_command_with_run_records_runtime(self, append_file, capsys):
        assert main(["trace", append_file, "--run"]) == 0
        events = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert any(e["type"] == "cell_alloc" for e in events)

    def test_trace_command_profile_to_stderr(self, append_file, capsys):
        assert main(["trace", append_file, "--profile"]) == 0
        assert "=== profile ===" in capsys.readouterr().err

    def test_analyze_trace_flag_writes_jsonl(self, append_file, tmp_path):
        from repro.obs.events import validate_trace
        from repro.obs.sinks import read_trace

        out = tmp_path / "analyze.jsonl"
        assert main(["analyze", append_file, "--trace", str(out)]) == 0
        events = read_trace(out)
        assert validate_trace(events) == len(events)
        assert any(e["type"] == "escape_test" for e in events)

    def test_analyze_profile_flag(self, append_file, capsys):
        assert main(["analyze", append_file, "--profile"]) == 0
        captured = capsys.readouterr()
        assert "G(append, 1)" in captured.out
        assert "=== profile ===" in captured.err

    def test_run_trace_flag_records_runtime(self, append_file, tmp_path):
        from repro.obs.sinks import read_trace

        out = tmp_path / "run.jsonl"
        assert main(["run", append_file, "--trace", str(out)]) == 0
        events = read_trace(out)
        assert any(e["type"] == "cell_alloc" for e in events)
        assert any(e["type"] == "span_end" and e["name"] == "run" for e in events)

    def test_optimize_profile_flag(self, capsys):
        source = prelude_source(["ps"], "ps [5, 2, 7]")
        assert main(["optimize", "-e", source, "--robust", "--profile"]) in (0, 3)
        assert "=== profile ===" in capsys.readouterr().err

    def test_replayed_iteration_table_matches_live_analysis(
        self, append_file, tmp_path
    ):
        """End to end through the CLI: the trace file alone reproduces the
        fixpoint iteration table without re-running the analysis."""
        from repro.escape.analyzer import EscapeAnalysis
        from repro.lang.parser import parse_program
        from repro.obs.profile import iteration_table
        from repro.obs.sinks import read_trace
        from pathlib import Path

        out = tmp_path / "trace.jsonl"
        assert main(["trace", append_file, "--out", str(out)]) == 0

        analysis = EscapeAnalysis(parse_program(Path(append_file).read_text()))
        analysis.global_all("append")
        live = analysis.last_solved.trace("append")

        row = iteration_table(read_trace(out))["append"]
        assert row.iterations == live.iterations
        assert row.converged is live.converged
        assert row.values == [str(fp) for fp in live.fingerprints]


class TestExitCodeTaxonomy:
    """The one exit-code vocabulary every subcommand shares: 0 ok, 1 error,
    3 degraded (robust fallback answered), 4 checker findings."""

    def test_constants(self):
        from repro.cli import EXIT_DEGRADED, EXIT_ERROR, EXIT_FINDINGS, EXIT_OK

        assert (EXIT_OK, EXIT_ERROR, EXIT_DEGRADED, EXIT_FINDINGS) == (0, 1, 3, 4)

    def test_help_epilog_documents_all_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out
        for fragment in ["0 ok", "1 error", "3 degraded", "4 findings"]:
            assert fragment in out

    def test_ok(self, capsys):
        assert main(["run", "-e", "1 + 1"]) == 0
        capsys.readouterr()

    def test_error(self, capsys):
        assert main(["run", "-e", "car nil"]) == 1
        capsys.readouterr()

    def test_degraded(self, append_file, capsys):
        assert main(["analyze", append_file, "--max-iterations", "1"]) == 3
        capsys.readouterr()

    def test_findings(self, capsys):
        source = "f x = dcons (cons 1 nil) 2 x; f [1]"
        assert main(["check", "-e", source]) == 4
        capsys.readouterr()


class TestCanonicalJson:
    """Every machine-readable emission is canonical: sorted keys, stable
    bytes.  The cross-seed test runs real subprocesses because
    PYTHONHASHSEED is frozen at interpreter start."""

    def test_json_outputs_have_sorted_keys(self, append_file, capsys):
        for args in (
            ["report", append_file, "--json"],
            ["analyze", append_file, "--json"],
            ["check", append_file, "--json"],
            ["batch", append_file, "--no-store", "--json"],
        ):
            assert main(args) in (0, 4)
            doc = json.loads(capsys.readouterr().out)
            assert list(doc) == sorted(doc)

    def test_observe_json_sorted(self, append_file, capsys):
        assert main(["observe", append_file, "append", "[1]", "[2]"]) == 0
        capsys.readouterr()
        assert main(
            ["observe", append_file, "append", "[1]", "[2]", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert list(doc) == sorted(doc)

    # check/batch --json carry wall-clock timings, so full byte identity
    # is only demanded of the timing-free outputs (snapshot artifacts pin
    # the corpus-scale version of this property in test_diff.py).
    @pytest.mark.parametrize(
        "args",
        [
            ["report", "{path}", "--json"],
            ["analyze", "{path}", "--json"],
        ],
        ids=["report", "analyze"],
    )
    def test_byte_identical_across_hash_seeds(self, append_file, args):
        import os
        import subprocess
        import sys

        outputs = []
        for seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            result = subprocess.run(
                [sys.executable, "-m", "repro"]
                + [a.format(path=append_file) for a in args],
                capture_output=True,
                env=env,
                cwd=os.getcwd(),
            )
            assert result.returncode == 0, result.stderr.decode()
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
