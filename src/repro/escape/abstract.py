"""The abstract escape semantics evaluator (§3.4) and its fixpoint engine
(§3.5).

The evaluator computes ``E⟦e⟧env_e`` over the abstract domains of
:mod:`repro.escape.domain`:

* literals and ``nil`` are bottom;
* application applies the function component;
* ``lambda`` builds ``⟨V, λy.E⟦e⟧env[x↦y]⟩`` where ``V`` joins the
  contained parts of the free identifiers (the closure holds them);
* ``if`` joins both branches (the compile-time approximation of the
  oracle);
* ``letrec`` is solved by Kleene iteration from bottom.

Termination (§3.5) rests on the domains being finite.  Convergence is
detected by comparing *fingerprints*: an abstract value is evaluated at a
finite sample of its argument domain, recursively through its result type.
For first-order types the sample is the whole ``B_e`` chain, so comparison
is exact extensional equality; for higher-order argument positions the
sample is the set of points the escape tests themselves use (bottom and the
worst-case functions ``W^τ``).  A safety net caps the iteration count and
*widens* to the worst-case value if the cap is hit — safe (maximal
escapement), though no program in the paper comes close to needing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.escape.domain import (
    BOTTOM,
    ERR,
    AbsFun,
    ClosureFun,
    EscapeValue,
)
from repro.escape.lattice import BeChain, Escapement
from repro.escape.primitives import abstract_prim
from repro.escape.worst import worst_fun
from repro.lang.ast import (
    App,
    Binding,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Var,
    free_vars,
)
from repro.lang.errors import AnalysisError
from repro.obs import tracer as obs
from repro.robust import faults
from repro.types.types import TFun, TList, TProd, Type, contains_function, spines

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.robust.budget import BudgetMeter

AbsEnv = dict[str, EscapeValue]

#: Nested tuple of Escapement points — the comparable image of a value.
Fingerprint = "Escapement | tuple"


def _strip_lists(ty: Type) -> Type:
    while isinstance(ty, TList):
        ty = ty.element
    return ty


def sample_domain(ty: Type, chain: BeChain) -> list[EscapeValue]:
    """A finite sample of ``D_e^τ`` used for extensional comparison.

    Complete for first-order ``τ`` (the whole ``B_e`` chain with the only
    possible function component, ``err``); for function types, bottom and
    worst-case functions at the boundary ``B_e`` points.
    """
    core = _strip_lists(ty)
    if not isinstance(core, TFun) and not (
        isinstance(core, TProd) and contains_function(core)
    ):
        return [EscapeValue(p, ERR) for p in chain.points()]
    w = worst_fun(ty)
    bes: list[Escapement] = []
    for be in (chain.bottom, Escapement(1, spines(ty)), chain.top):
        if be not in bes:
            bes.append(be)
    samples: list[EscapeValue] = []
    for be in bes:
        samples.append(EscapeValue(be, ERR))
        samples.append(EscapeValue(be, w))
    return samples


def fingerprint(value: EscapeValue, ty: Type, chain: BeChain) -> Fingerprint:
    """The comparable image of ``value`` at type ``τ``.

    Base types map to their ``B_e`` point; function types map to
    ``(b, (image at each argument sample))``, recursing through the result
    type.  Fingerprints of equal abstract functions are equal; equal
    fingerprints mean "indistinguishable at every sampled point", which for
    first-order types is full extensional equality.
    """
    core = _strip_lists(ty)
    if isinstance(core, TProd):
        # A tuple value is the join of its components; probe it at both
        # component types so functional behaviour inside tuples is compared.
        if not contains_function(core):
            return value.be
        return (
            value.be,
            (
                "prod",
                fingerprint(value, core.fst, chain),
                fingerprint(value, core.snd, chain),
            ),
        )
    if not isinstance(core, TFun):
        return value.be
    results = tuple(
        fingerprint(value.apply(sample), core.result, chain)
        for sample in sample_domain(core.arg, chain)
    )
    return (value.be, ("fun", *results))


@dataclass
class FixpointTrace:
    """The iteration history of one letrec binding (cf. Appendix A.1)."""

    name: str
    fingerprints: list[Fingerprint] = field(default_factory=list)
    converged: bool = False
    widened: bool = False

    @property
    def iterations(self) -> int:
        """Number of body re-evaluations performed."""
        return len(self.fingerprints)


class AbstractEvaluator:
    """Evaluates expressions in the abstract escape semantics.

    One evaluator is built per analysis run; it carries the program's
    ``B_e`` chain, collects fixpoint traces (per letrec binding), and counts
    evaluation steps so benches can report analysis cost.
    """

    def __init__(
        self,
        chain: BeChain,
        max_iterations: int | None = None,
        memoize: bool = False,
        meter: "BudgetMeter | None" = None,
    ):
        self.chain = chain
        self.max_iterations = max_iterations
        #: Optional budget meter (wall-clock deadline + work limits) from
        #: the hardened engine; breaches raise
        #: :class:`~repro.robust.errors.BudgetExceeded`, which the engine
        #: turns into a sound W^τ degradation.
        self.meter = meter
        self.steps = 0
        self.traces: list[FixpointTrace] = []
        # Optional application cache: abstract evaluation is pure, so a
        # closure applied twice to the same abstract value gives the same
        # result.  Keyed by (closure identity, argument value); addresses
        # the §7 worry about fixpoint cost (see the AB3 ablation bench).
        self.memo: dict | None = {} if memoize else None
        #: Per-iteration environments of the most recent solve (index 0 is
        #: the bottom environment) — lets tooling replay the Appendix A.1
        #: derivation (``append⁽¹⁾``, ``append⁽²⁾``, ...).
        self.iterates: list[AbsEnv] = []

    # -- public API ----------------------------------------------------------

    def eval(self, expr: Expr, env: AbsEnv) -> EscapeValue:
        """``E⟦expr⟧env``."""
        self.steps += 1
        if self.meter is not None:
            self.meter.tick_eval()
        if isinstance(expr, (IntLit, BoolLit, NilLit)):
            return BOTTOM
        if isinstance(expr, Prim):
            return abstract_prim(expr)
        if isinstance(expr, Var):
            value = env.get(expr.name)
            if value is None:
                raise AnalysisError(
                    f"identifier {expr.name!r} is not in the abstract environment",
                    expr.span,
                )
            return value
        if isinstance(expr, App):
            fn_value = self.eval(expr.fn, env)
            arg_value = self.eval(expr.arg, env)
            return fn_value.apply(arg_value)
        if isinstance(expr, Lambda):
            return self._eval_lambda(expr, env)
        if isinstance(expr, If):
            self.eval(expr.cond, env)  # a bool escapes nothing; evaluated for cost
            then_value = self.eval(expr.then, env)
            else_value = self.eval(expr.otherwise, env)
            return then_value.join(else_value)
        if isinstance(expr, Letrec):
            solved = self.solve_bindings(expr, env)
            return self.eval(expr.body, solved)
        raise AnalysisError(f"cannot abstractly evaluate {type(expr).__name__}", expr.span)

    def _eval_lambda(self, expr: Lambda, env: AbsEnv) -> EscapeValue:
        # V = ⟨0,0⟩ ⊔ ⨆_{z ∈ F} (env⟦z⟧)₍₁₎ — the closure contains its free
        # identifiers.
        contained = self.chain.bottom
        for name in free_vars(expr):
            bound = env.get(name)
            if bound is None:
                raise AnalysisError(
                    f"free identifier {name!r} of a lambda is not in the abstract environment",
                    expr.span,
                )
            contained = contained.join(bound.be)
        captured = dict(env)
        return EscapeValue(contained, ClosureFun(expr.param, expr.body, captured, self))

    # -- letrec fixpoint ---------------------------------------------------

    def default_iteration_cap(self, n_bindings: int) -> int:
        """A bound comfortably above the lattice height of the bindings."""
        return self.chain.height() * max(1, n_bindings) * 4 + 8

    def solve_bindings(self, letrec: Letrec, env: AbsEnv) -> AbsEnv:
        """Kleene iteration: the least fixpoint of the letrec bindings,
        returned as ``env`` extended with the converged values."""
        faults.check_stage("solve")
        bindings = letrec.bindings
        if not bindings:
            return env
        for binding in bindings:
            if binding.expr.ty is None:
                raise AnalysisError(
                    f"binding {binding.name!r} is not type-annotated; "
                    "run infer_program before the escape analysis",
                    binding.span,
                )

        cap = self.max_iterations or self.default_iteration_cap(len(bindings))
        traces = {b.name: FixpointTrace(b.name) for b in bindings}
        self.traces.extend(traces.values())

        current: AbsEnv = {b.name: BOTTOM for b in bindings}
        previous_fps = {
            b.name: fingerprint(BOTTOM, b.expr.ty, self.chain) for b in bindings
        }
        self.iterates = [dict(current)]
        tracing = obs.tracing()
        names = [b.name for b in bindings]

        for k in range(1, cap + 1):
            if self.meter is not None:
                self.meter.tick_iteration()
            iter_env = {**env, **current}
            new_values = {b.name: self.eval(b.expr, iter_env) for b in bindings}
            new_fps = {
                b.name: fingerprint(new_values[b.name], b.expr.ty, self.chain)
                for b in bindings
            }
            for b in bindings:
                traces[b.name].fingerprints.append(new_fps[b.name])
            current = new_values
            self.iterates.append(dict(current))
            if tracing is not None:
                tracing.emit(
                    "fixpoint_iteration",
                    iteration=k,
                    values={name: str(new_fps[name]) for name in names},
                )
            if new_fps == previous_fps:
                for trace in traces.values():
                    trace.converged = True
                if tracing is not None:
                    tracing.emit("fixpoint_converged", names=names, iterations=k)
                break
            previous_fps = new_fps
        else:
            # Safety net: widen to the worst case (maximal escapement).
            for binding in bindings:
                current[binding.name] = EscapeValue(
                    self.chain.top, worst_fun(binding.expr.ty)
                )
                traces[binding.name].widened = True
            if tracing is not None:
                tracing.emit("fixpoint_widened", names=names, cap=cap)

        return {**env, **current}

    # -- convenience --------------------------------------------------------

    def values_equal(self, left: EscapeValue, right: EscapeValue, ty: Type) -> bool:
        """Extensional equality at type ``τ`` (exact for first-order τ)."""
        return fingerprint(left, ty, self.chain) == fingerprint(right, ty, self.chain)

    def value_leq(self, left: EscapeValue, right: EscapeValue, ty: Type) -> bool:
        """Extensional ⊑ at type ``τ``, compared pointwise on fingerprints."""
        return _fp_leq(
            fingerprint(left, ty, self.chain), fingerprint(right, ty, self.chain)
        )


def _fp_leq(left: Fingerprint, right: Fingerprint) -> bool:
    if isinstance(left, Escapement) and isinstance(right, Escapement):
        return left.leq(right)
    assert isinstance(left, tuple) and isinstance(right, tuple)
    left_be, left_body = left
    right_be, right_body = right
    if not left_be.leq(right_be):
        return False
    assert left_body[0] == right_body[0]  # same structure tag: fun or prod
    return all(
        _fp_leq(l, r) for l, r in zip(left_body[1:], right_body[1:], strict=True)
    )
