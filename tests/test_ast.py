"""AST utility tests: equality, traversal, free variables, transform,
clone, rename."""

import pytest

from repro.lang.ast import (
    App,
    IntLit,
    Lambda,
    Letrec,
    Prim,
    Var,
    clone,
    clone_program,
    count_nodes,
    free_vars,
    rename_var,
    transform,
    uncurry_app,
    walk,
)
from repro.lang.parser import parse_expr, parse_program


class TestStructuralEquality:
    def test_equal_ignores_uids_and_spans(self):
        assert parse_expr("f (x + 1)") == parse_expr("f  (x+1)")

    def test_different_structure_not_equal(self):
        assert parse_expr("f x") != parse_expr("f y")

    def test_prim_vs_var(self):
        assert Prim(name="cons") != Var(name="cons")

    def test_hash_consistent_with_eq(self):
        a, b = parse_expr("[1, 2]"), parse_expr("[1, 2]")
        assert hash(a) == hash(b)

    def test_letrec_equality_covers_bindings(self):
        assert parse_expr("letrec f x = x in f") == parse_expr("letrec f x = x in f")
        assert parse_expr("letrec f x = x in f") != parse_expr("letrec f x = 1 in f")

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            Prim(name="frobnicate")


class TestTraversal:
    def test_walk_yields_every_node(self):
        expr = parse_expr("f (g x) y")
        names = [n.name for n in walk(expr) if isinstance(n, Var)]
        assert names == ["f", "g", "x", "y"]  # pre-order

    def test_count_nodes(self):
        assert count_nodes(parse_expr("x")) == 1
        assert count_nodes(parse_expr("f x")) == 3

    def test_walk_enters_letrec_bindings(self):
        expr = parse_expr("letrec f x = g x in f 1")
        names = {n.name for n in walk(expr) if isinstance(n, Var)}
        assert "g" in names


class TestFreeVars:
    def test_variable_is_free(self):
        assert free_vars(parse_expr("x")) == {"x"}

    def test_lambda_binds(self):
        assert free_vars(parse_expr("lambda x. x y")) == {"y"}

    def test_letrec_binds_mutually(self):
        expr = parse_expr("letrec f x = g x; g y = f y in f z")
        assert free_vars(expr) == {"z"}

    def test_primitives_are_not_free_vars(self):
        assert free_vars(parse_expr("cons x nil")) == {"x"}

    def test_shadowed_name_still_free_outside(self):
        assert free_vars(parse_expr("x (lambda x. x)")) == {"x"}

    def test_if_collects_all_branches(self):
        assert free_vars(parse_expr("if a then b else c")) == {"a", "b", "c"}


class TestTransform:
    def test_identity_transform_preserves_structure(self):
        expr = parse_expr("f (x + 1)")
        assert transform(expr, lambda n: None) == expr

    def test_rewrite_leaf(self):
        expr = parse_expr("x + x")
        rewritten = transform(
            expr, lambda n: IntLit(value=1) if isinstance(n, Var) else None
        )
        assert rewritten == parse_expr("1 + 1")

    def test_rewrite_is_bottom_up(self):
        # inner rewrite happens before the outer predicate sees the node
        expr = parse_expr("f (g x)")
        seen = []
        transform(expr, lambda n: seen.append(type(n).__name__) or None)
        assert seen.index("Var") < seen.index("App")


class TestClone:
    def test_clone_is_structurally_equal(self):
        expr = parse_expr("letrec f x = if null x then nil else f (cdr x) in f [1]")
        assert clone(expr) == expr

    def test_clone_has_fresh_uids(self):
        expr = parse_expr("f x")
        copied = clone(expr)
        original_uids = {n.uid for n in walk(expr)}
        assert all(n.uid not in original_uids for n in walk(copied))

    def test_clone_does_not_share_annotation_dicts(self):
        expr = parse_expr("cons 1 nil")
        copied = clone(expr)
        copied.annotations["alloc"] = "region"
        assert "alloc" not in expr.annotations

    def test_clone_program(self, partition_sort):
        copied = clone_program(partition_sort)
        assert copied == partition_sort
        assert copied.letrec is not partition_sort.letrec


class TestRenameVar:
    def test_renames_free_occurrences(self):
        assert rename_var(parse_expr("f (f x)"), "f", "g") == parse_expr("g (g x)")

    def test_respects_lambda_shadowing(self):
        expr = parse_expr("f (lambda f. f 1)")
        renamed = rename_var(expr, "f", "g")
        assert renamed == parse_expr("g (lambda f. f 1)")

    def test_respects_letrec_shadowing(self):
        expr = parse_expr("letrec f x = f x in f 1")
        assert rename_var(expr, "f", "g") == expr

    def test_rename_no_occurrence_is_identity(self):
        expr = parse_expr("a + b")
        assert rename_var(expr, "zz", "qq") is expr

    def test_rename_keeps_other_names(self):
        assert rename_var(parse_expr("f x y"), "x", "z") == parse_expr("f z y")


class TestUncurry:
    def test_uncurry_app_of_non_app(self):
        head, args = uncurry_app(parse_expr("x"))
        assert head == Var(name="x") and args == []

    def test_uncurry_roundtrip(self):
        expr = parse_expr("f a b c")
        head, args = uncurry_app(expr)
        assert len(args) == 3
