"""The collector zoo: pluggable garbage collectors over the instrumented heap.

The collectors exist to make the paper's cost claims measurable:
``gc_marked`` counts the cells the mark phase traverses, which is exactly
the work block reclamation avoids ("reclamation of larger segments of
memory ... avoiding the traversal of the individual objects", §1), and
``gc_swept`` counts cells returned to the allocator one at a time.

Three collectors share the :class:`Collector` interface:

* :class:`MarkSweepGC` — stop-the-world mark–sweep, the baseline.  The
  mark loop deduplicates at *push* time, so every live cell enters the
  mark stack exactly once even on heavily shared spines (``mark_pushes``
  exposes the push count for regression tests).
* :class:`LivenessDirectedGC` — mark–sweep guided by the interprocedural
  heap-liveness facts (:mod:`repro.analysis.heap_liveness`).  Each
  environment binding carries a *live-depth budget*: marking descends one
  spine level per remaining budget unit and stops at zero, so cells that
  are reachable but statically dead are never marked and get swept —
  Karkare-style dead-but-reachable reclamation.  An empty budget map
  degrades to full-reachability marking (= mark–sweep).
* :class:`CopyingGC` — a Cheney-style semi-space model: breadth-first
  evacuation from the roots (cells are Python objects, so "copying" is
  modeled as evacuation order + a ``copied`` count on the ``gc_run``
  event); unreached cells are reclaimed wholesale.

Every collector emits the same ``gc_run`` / ``cell_reclaim`` obs events
with a ``collector=`` label so traces distinguish the zoo members.

Region-resident cells (stack/block) are *not* swept — their lifetime is the
region's — but when reachable they still cost mark work, as they would in a
real collector that must trace through them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.obs import tracer as obs
from repro.semantics.heap import AllocKind, Cell, Heap
from repro.semantics.values import Env, Value, VClosure, VCons, VPrim, VTuple

__all__ = [
    "GcStats",
    "Collector",
    "MarkSweepGC",
    "LivenessDirectedGC",
    "CopyingGC",
    "COLLECTORS",
    "make_collector",
]

#: Selectable collector names, in CLI `--gc` order.
COLLECTORS = ("mark-sweep", "liveness", "copying")


@dataclass(frozen=True)
class GcStats:
    marked: int
    swept: int
    live_after: int


def _dec_budget(budget: "int | None") -> "int | None":
    """One spine level deeper: ``⊤`` stays ``⊤``, ``k`` becomes ``k-1``."""
    if budget is None:
        return None
    return budget - 1


class Collector:
    """Shared trigger, sweep, metrics, and event plumbing for the zoo.

    ``threshold`` is the number of heap allocations *since the last
    collection* above which :meth:`maybe_collect` triggers — the usual
    allocation-budget trigger (a live-count trigger would collect at
    every safepoint once live data exceeded it).  ``budgets`` maps binder
    names to live-depth budgets (``None`` = unbounded); only
    :class:`LivenessDirectedGC` consults it, but the parameter lives here
    so call sites construct every collector uniformly.
    """

    name = "abstract"

    def __init__(
        self,
        heap: Heap,
        threshold: int = 10_000,
        budgets: "Mapping[str, int | None] | None" = None,
    ):
        self.heap = heap
        self.threshold = threshold
        self.budgets = dict(budgets) if budgets else {}
        self._allocs_at_last_gc = 0
        #: Cons cells pushed onto the mark stack during the last collect;
        #: with push-time dedup this equals the distinct live cells seen.
        self.mark_pushes = 0

    def budget_of(self, name: str) -> "int | None":
        """Live-depth budget for binder ``name``; unknown names are
        unbounded (the only sound default)."""
        return self.budgets.get(name)

    def collect(self, roots: Iterable["Value | Env"]) -> GcStats:
        heap = self.heap
        marked, mark_work, extras = self._mark(roots)
        swept = self._sweep(marked)

        heap.metrics.gc_runs += 1
        heap.metrics.gc_marked += mark_work
        heap.metrics.gc_swept += swept
        self._allocs_at_last_gc = heap.metrics.heap_allocs
        tracing = obs.tracing()
        if tracing is not None:
            tracing.emit(
                "gc_run",
                marked=mark_work,
                swept=swept,
                live_after=len(heap.cells),
                collector=self.name,
                **extras,
            )
            if swept:
                tracing.emit(
                    "cell_reclaim",
                    count=swept,
                    cause="gc-sweep",
                    collector=self.name,
                )
        return GcStats(marked=mark_work, swept=swept, live_after=len(heap.cells))

    def maybe_collect(self, roots: Iterable["Value | Env"]) -> GcStats | None:
        if self.heap.metrics.heap_allocs - self._allocs_at_last_gc >= self.threshold:
            return self.collect(roots)
        return None

    # -- subclass hooks ----------------------------------------------------

    def _mark(
        self, roots: Iterable["Value | Env"]
    ) -> "tuple[set[Cell], int, dict]":
        raise NotImplementedError

    def _sweep(self, marked: "set[Cell]") -> int:
        heap = self.heap
        swept = 0
        for cell in list(heap.cells.values()):
            if cell.kind is AllocKind.HEAP and cell not in marked:
                cell.freed = True
                del heap.cells[cell.id]
                swept += 1
        return swept

    def _trace(
        self, roots: Iterable["Value | Env"], fifo: bool = False
    ) -> "tuple[set[Cell], int]":
        """Full-reachability trace: depth-first (mark stack) or
        breadth-first (evacuation queue).  Cons cells are deduplicated at
        push time, so shared spines cost one push per distinct cell."""
        marked: set[Cell] = set()
        mark_work = 0
        self.mark_pushes = 0

        # Environment frames are deduplicated by identity: letrec frames are
        # cyclic (their closures capture the frame itself).
        seen_frames: set[int] = set()
        buf: deque[Value] = deque()
        sanitizer = self.heap.sanitizer

        def push(value: Value) -> None:
            nonlocal mark_work
            if isinstance(value, VCons):
                cell = value.cell
                if cell.freed:
                    # A root-reachable freed cell: harmless unless read, but
                    # worth surfacing — the sanitizer records it as a
                    # warning (never a halt; sound region optimizations
                    # leave dead references behind by design).
                    if sanitizer is not None:
                        sanitizer.warn(
                            "dangling-reference",
                            cell,
                            "gc mark phase",
                            f"freed {cell.kind.value} cell still reachable from roots",
                        )
                    return
                if cell in marked:
                    return
                marked.add(cell)
                mark_work += 1
                self.mark_pushes += 1
            buf.append(value)

        def push_env(env: Env) -> None:
            current: Env | None = env
            while current is not None:
                if id(current.frame) not in seen_frames:
                    seen_frames.add(id(current.frame))
                    for value in current.frame.values():
                        push(value)
                current = current.parent

        for root in roots:
            if isinstance(root, Env):
                push_env(root)
            else:
                push(root)

        while buf:
            value = buf.popleft() if fifo else buf.pop()
            if isinstance(value, VCons):
                push(value.cell.car)
                push(value.cell.cdr)
            elif isinstance(getattr(value, "env", None), Env):
                # any closure-like value (interpreter VClosure, machine
                # MClosure): its captured environment is reachable
                push_env(value.env)
            elif isinstance(value, VPrim):
                for arg in value.args:
                    push(arg)
            elif isinstance(value, VTuple):
                push(value.fst)
                push(value.snd)
        return marked, mark_work


class MarkSweepGC(Collector):
    """Stop-the-world mark–sweep over the full reachable graph."""

    name = "mark-sweep"

    def _mark(self, roots):
        marked, mark_work = self._trace(roots, fifo=False)
        return marked, mark_work, {}


class CopyingGC(Collector):
    """Cheney-style semi-space model: breadth-first evacuation.

    Cells are Python objects with stable identity, so evacuation is
    modeled rather than performed — what changes versus mark–sweep is the
    traversal discipline (FIFO scan of the to-space) and the ``copied``
    count on the ``gc_run`` event; unreached from-space cells are
    reclaimed wholesale by the shared sweep.
    """

    name = "copying"

    def _mark(self, roots):
        marked, mark_work = self._trace(roots, fifo=True)
        return marked, mark_work, {"copied": mark_work}


class LivenessDirectedGC(Collector):
    """Mark–sweep that trusts the static heap-liveness facts.

    Every environment binding is traced under its live-depth budget:
    budget ``k`` marks spine levels ``0..k-1`` (``car`` descends with
    ``k-1``, ``cdr`` keeps ``k``), budget ``0`` marks nothing — the cell
    is reachable but provably never read, so the sweep reclaims it.
    Values without a static story (mid-evaluation temporaries, prim
    arguments, tuple fields, unknown names) trace unbounded.

    A shared cell reached under several budgets is re-traced only on a
    strict improvement (finite budgets below ``⊤``), so marking
    terminates and every cell ends at its best (deepest) budget.
    """

    name = "liveness"

    def _mark(self, roots):
        marked: set[Cell] = set()
        mark_work = 0
        pruned = 0
        self.mark_pushes = 0

        seen_frames: set[int] = set()
        stack: "list[tuple[Value, int | None]]" = []
        # Best (deepest) budget each cell has been scheduled under; a
        # strict improvement re-schedules the cell so its spine is marked
        # to the deeper bound.
        best: "dict[Cell, int | None]" = {}
        sanitizer = self.heap.sanitizer

        def improves(new: "int | None", old: "int | None") -> bool:
            if old is None:
                return False
            return new is None or new > old

        def push(value: Value, budget: "int | None") -> None:
            nonlocal pruned
            if isinstance(value, VCons):
                if budget is not None and budget <= 0:
                    pruned += 1
                    return  # statically dead access path: leave for sweep
                cell = value.cell
                if cell.freed:
                    if sanitizer is not None:
                        sanitizer.warn(
                            "dangling-reference",
                            cell,
                            "gc mark phase",
                            f"freed {cell.kind.value} cell still reachable from roots",
                        )
                    return
                if cell in best and not improves(budget, best[cell]):
                    return
                best[cell] = budget
                self.mark_pushes += 1
            stack.append((value, budget))

        def push_env(env: Env) -> None:
            current: Env | None = env
            while current is not None:
                if id(current.frame) not in seen_frames:
                    seen_frames.add(id(current.frame))
                    for name, value in current.frame.items():
                        push(value, self.budget_of(name))
                current = current.parent

        for root in roots:
            if isinstance(root, Env):
                push_env(root)
            else:
                push(root, None)

        while stack:
            value, budget = stack.pop()
            if isinstance(value, VCons):
                cell = value.cell
                if best.get(cell) != budget:
                    continue  # superseded by a deeper schedule
                marked.add(cell)
                mark_work += 1
                push(value.cell.car, _dec_budget(budget))
                push(value.cell.cdr, budget)
            elif isinstance(getattr(value, "env", None), Env):
                # A closure may run later with its whole captured
                # environment; its bindings keep their own budgets.
                push_env(value.env)
            elif isinstance(value, VPrim):
                for arg in value.args:
                    push(arg, None)
            elif isinstance(value, VTuple):
                push(value.fst, None)
                push(value.snd, None)
        return marked, mark_work, {"pruned": pruned}


def make_collector(
    name: str,
    heap: Heap,
    threshold: int = 10_000,
    budgets: "Mapping[str, int | None] | None" = None,
) -> Collector:
    """Construct a zoo member by its ``--gc`` name."""
    if name == "mark-sweep":
        return MarkSweepGC(heap, threshold=threshold)
    if name == "liveness":
        return LivenessDirectedGC(heap, threshold=threshold, budgets=budgets)
    if name == "copying":
        return CopyingGC(heap, threshold=threshold)
    raise ValueError(
        f"unknown collector {name!r}; expected one of {', '.join(COLLECTORS)}"
    )
