"""The observability layer: tracer, metrics, sinks, schema, trace replay.

The centerpiece is the acceptance contract of the subsystem: with tracing
*off* the analysis is bit-identical to an untraced run, and with tracing
*on* the exported JSONL trace alone — no re-run — reproduces the Appendix
A.1 iteration table and the query session's cache accounting.
"""

import io
import json

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    MetricsSink,
    RingBufferSink,
    Tracer,
    activate,
    read_trace,
    validate_trace,
)
from repro.obs import tracer as obs
from repro.obs.events import TraceSchemaError, validate_event
from repro.obs.metrics import format_key, metric_key
from repro.obs.profile import (
    cache_stats,
    iteration_table,
    profile_report,
    runtime_stats,
    span_profile,
    worklist_stats,
)
from repro.obs.sinks import replay
from repro.semantics.interp import Interpreter
from repro.semantics.metrics import StorageMetrics


class TestTracer:
    def test_events_are_numbered_and_timestamped(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.emit("solve", cache="hit")
        tracer.emit("solve", cache="miss")
        events = ring.events
        assert [e["seq"] for e in events] == [0, 1]
        assert all(e["ts"] >= 0 for e in events)
        assert events[0]["cache"] == "hit"

    def test_spans_nest_and_attribute_self_time(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.emit("solve", cache="miss")
        events = ring.events
        starts = [e for e in events if e["type"] == "span_start"]
        ends = [e for e in events if e["type"] == "span_end"]
        assert [s["name"] for s in starts] == ["outer", "inner"]
        # The inner span and the emitted event are attributed to their parent.
        assert starts[1]["span"] == starts[0]["id"]
        solve = next(e for e in events if e["type"] == "solve")
        assert solve["span"] == starts[1]["id"]
        outer_end = next(e for e in ends if e["name"] == "outer")
        inner_end = next(e for e in ends if e["name"] == "inner")
        assert outer_end["dur_s"] >= inner_end["dur_s"]
        assert outer_end["self_s"] <= outer_end["dur_s"]

    def test_disabled_tracer_collects_nothing(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring], enabled=False)
        tracer.emit("solve", cache="hit")
        with tracer.span("outer") as span:
            assert span is None
        assert ring.events == []

    def test_no_active_tracer_means_noop_module_api(self):
        assert obs.tracing() is None
        obs.emit("solve", cache="hit")  # must not raise
        with obs.span("anything"):
            pass

    def test_activate_installs_and_restores(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        assert obs.tracing() is None
        with activate(tracer):
            assert obs.tracing() is tracer
            obs.emit("solve", cache="hit")
            inner = Tracer(sinks=[])
            with activate(inner):
                assert obs.tracing() is inner
            assert obs.tracing() is tracer
        assert obs.tracing() is None
        assert ring.total == 1


class TestMetricsRegistry:
    def test_labelled_counters(self):
        reg = MetricsRegistry()
        reg.inc("cells", kind="heap")
        reg.inc("cells", kind="heap")
        reg.inc("cells", kind="stack")
        assert reg.counter("cells", kind="heap") == 2
        assert reg.counter("cells", kind="stack") == 1
        assert reg.counter("cells", kind="block") == 0
        snap = reg.snapshot()
        assert snap["cells{kind=heap}"] == 2

    def test_key_format_is_canonical(self):
        assert metric_key("n", b=1, a=2) == ("n", (("a", "2"), ("b", "1")))
        assert format_key(metric_key("n", b=1, a=2)) == "n{a=2,b=1}"
        assert format_key(metric_key("n")) == "n"

    def test_histograms_summarize(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1.0)
        reg.observe("lat", 3.0)
        snap = reg.snapshot()
        assert snap["lat.count"] == 2
        assert snap["lat.sum"] == 4.0
        assert snap["lat.mean"] == 2.0

    def test_ingest_storage_includes_region_kinds(self):
        metrics = StorageMetrics()
        metrics.heap_allocs = 5
        metrics.region_allocs = 3
        metrics.by_region_kind["stack"] = 3
        reg = MetricsRegistry()
        reg.ingest_storage(metrics)
        snap = reg.snapshot()
        assert snap["storage.heap_allocs"] == 5
        assert snap["storage.region_allocs{kind=stack}"] == 3

    def test_ingest_session(self):
        analysis = EscapeAnalysis(paper_partition_sort())
        analysis.global_all("append")
        reg = MetricsRegistry()
        reg.ingest_session(analysis.stats)
        snap = reg.snapshot()
        assert snap["session.queries"] == analysis.stats.queries
        assert snap["session.eval_steps"] == analysis.stats.eval_steps


class TestStorageMetricsSnapshot:
    def test_snapshot_includes_labelled_region_kinds(self):
        metrics = StorageMetrics()
        metrics.region_allocs = 4
        metrics.by_region_kind = {"stack": 1, "block:b1": 3}
        snap = metrics.snapshot()
        assert snap["region_allocs{kind=stack}"] == 1
        assert snap["region_allocs{kind=block:b1}"] == 3

    def test_diff_tolerates_new_region_kinds(self):
        metrics = StorageMetrics()
        earlier = metrics.snapshot()
        assert "region_allocs{kind=stack}" not in earlier
        metrics.region_allocs = 2
        metrics.by_region_kind["stack"] = 2
        delta = metrics.diff(earlier)
        assert delta["region_allocs"] == 2
        assert delta["region_allocs{kind=stack}"] == 2


class TestSinks:
    def test_jsonl_round_trip(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        tracer = Tracer(sinks=[sink])
        tracer.emit("solve", cache="miss")
        with tracer.span("solve"):
            pass
        sink.close()
        buffer.seek(0)
        events = read_trace(buffer)
        assert validate_trace(events) == 3
        assert events[0]["type"] == "solve"

    def test_jsonl_open_writes_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink.open(path)
        Tracer(sinks=[sink]).emit("cell_reuse", cell=7)
        sink.close()
        events = read_trace(path)
        assert events == [
            {"seq": 0, "ts": events[0]["ts"], "type": "cell_reuse", "cell": 7}
        ]

    def test_ring_buffer_bounds_memory(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=[ring])
        for _ in range(5):
            tracer.emit("cell_reuse", cell=1)
        assert ring.total == 5
        assert len(ring.events) == 2
        assert ring.events[-1]["seq"] == 4

    def test_metrics_sink_folds_the_stream(self):
        reg = MetricsRegistry()
        sink = MetricsSink(reg)
        tracer = Tracer(sinks=[sink])
        tracer.emit("cell_alloc", cell=1, kind="heap")
        tracer.emit("cell_alloc", cell=2, kind="stack")
        tracer.emit("cell_reclaim", count=4, cause="gc-sweep")
        tracer.emit("solve", cache="hit")
        tracer.emit("scc_solve_finish", names=["f"], cache="miss", iterations=3)
        tracer.emit("degradation", reason="deadline-exceeded", stage="plan")
        assert reg.counter("cells_allocated", kind="heap") == 1
        assert reg.counter("cells_allocated", kind="stack") == 1
        assert reg.counter("cells_reclaimed", cause="gc-sweep") == 4
        assert reg.counter("solves", cache="hit") == 1
        assert reg.counter("fixpoint_iterations") == 3
        assert reg.counter("degradations", reason="deadline-exceeded") == 1

    def test_replay_feeds_recorded_events_to_fresh_sinks(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.emit("cell_alloc", cell=1, kind="heap")
        reg = MetricsRegistry()
        replay(ring.events, MetricsSink(reg))
        assert reg.counter("cells_allocated", kind="heap") == 1


class TestSchema:
    def test_valid_event_passes(self):
        validate_event({"seq": 0, "ts": 0.0, "type": "solve", "cache": "hit"})

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown event type"):
            validate_event({"seq": 0, "ts": 0.0, "type": "nonsense"})

    def test_missing_payload_field_rejected(self):
        with pytest.raises(TraceSchemaError, match="missing field"):
            validate_event({"seq": 0, "ts": 0.0, "type": "gc_run", "marked": 1})

    def test_bad_cache_value_rejected(self):
        with pytest.raises(TraceSchemaError, match="cache"):
            validate_event({"seq": 0, "ts": 0.0, "type": "solve", "cache": "maybe"})

    def test_non_monotonic_seq_rejected(self):
        events = [
            {"seq": 1, "ts": 0.0, "type": "cell_reuse", "cell": 1},
            {"seq": 0, "ts": 0.0, "type": "cell_reuse", "cell": 1},
        ]
        with pytest.raises(TraceSchemaError, match="monotonically"):
            validate_trace(events)

    def test_every_emitted_event_conforms(self, tmp_path):
        """The instrumentation itself must respect its own vocabulary."""
        ring = RingBufferSink()
        with activate(Tracer(sinks=[ring])):
            analysis = EscapeAnalysis(paper_partition_sort())
            for name in ("append", "split", "ps"):
                analysis.global_all(name)
        assert validate_trace(ring.events) > 0


class TestBitIdentityWhenDisabled:
    def test_traced_and_untraced_runs_agree(self):
        """AB4's gate: tracing must observe, never perturb."""
        baseline = EscapeAnalysis(paper_partition_sort())
        for name in ("append", "split", "ps"):
            baseline.global_all(name)

        ring = RingBufferSink()
        with activate(Tracer(sinks=[ring])):
            traced = EscapeAnalysis(paper_partition_sort())
            for name in ("append", "split", "ps"):
                traced.global_all(name)

        assert ring.total > 0
        for stat in ("solve_hits", "solve_misses", "scc_hits", "scc_misses",
                     "iterations", "eval_steps", "queries"):
            assert getattr(baseline.stats, stat) == getattr(traced.stats, stat)
        for name in ("append", "split", "ps"):
            base_trace = baseline.last_solved.trace(name)
            live_trace = traced.last_solved.trace(name)
            assert base_trace.fingerprints == live_trace.fingerprints
            assert base_trace.converged == live_trace.converged


class TestTraceReplay:
    """The tentpole acceptance: the JSONL trace alone reproduces the
    Appendix A.1 iteration table and the session's cache accounting."""

    @pytest.fixture
    def traced(self, tmp_path):
        path = tmp_path / "psort.jsonl"
        sink = JsonlSink.open(path)
        analysis = EscapeAnalysis(paper_partition_sort())
        with activate(Tracer(sinks=[sink])):
            for name in ("append", "split", "ps"):
                analysis.global_all(name)
        sink.close()
        return analysis, read_trace(path)

    def test_trace_is_schema_valid(self, traced):
        _, events = traced
        assert validate_trace(events) == len(events)

    def test_iteration_table_replays_appendix_a1(self, traced):
        analysis, events = traced
        table = iteration_table(events)
        assert set(table) == {"append", "split", "ps"}
        for name, row in table.items():
            live = analysis.last_solved.trace(name)
            assert row.iterations == live.iterations
            assert row.converged is live.converged
            assert row.values == [str(fp) for fp in live.fingerprints]
            # A.1: every function converges within 2–3 body evaluations.
            assert 2 <= row.iterations <= 3

    def test_cache_stats_replay_session_accounting(self, traced):
        analysis, events = traced
        replayed = cache_stats(events)
        stats = analysis.stats
        assert replayed["solve_hits"] == stats.solve_hits
        assert replayed["solve_misses"] == stats.solve_misses
        assert replayed["scc_hits"] == stats.scc_hits
        assert replayed["scc_misses"] == stats.scc_misses
        assert replayed["iterations"] == stats.iterations
        assert replayed["queries"] == stats.queries
        assert replayed["eval_steps"] == stats.eval_steps

    def test_profile_report_renders(self, traced):
        _, events = traced
        report = profile_report(events)
        assert "=== profile ===" in report
        assert "cache hit ratios" in report
        assert "append" in report


class TestWorklistEvents:
    """The worklist engine's event vocabulary, and its replay: a trace
    alone reports the per-instruction transfer costs."""

    def test_new_event_types_validate(self):
        for payload in (
            {"type": "ir_lower", "name": "append", "instructions": 12},
            {"type": "worklist_push", "name": "split"},
            {"type": "worklist_pop", "name": "split"},
            {"type": "transfer_eval", "block": "ps", "index": 3, "op": "apply",
             "count": 7},
        ):
            validate_event({"seq": 0, "ts": 0.0, **payload})

    def test_new_event_types_require_their_fields(self):
        for payload in (
            {"type": "ir_lower", "name": "append"},
            {"type": "worklist_push"},
            {"type": "transfer_eval", "block": "ps", "index": 3, "op": "apply"},
        ):
            with pytest.raises(TraceSchemaError, match="missing field"):
                validate_event({"seq": 0, "ts": 0.0, **payload})

    @pytest.fixture
    def worklist_trace(self):
        ring = RingBufferSink(capacity=None)
        analysis = EscapeAnalysis(paper_partition_sort(), engine="worklist")
        with activate(Tracer(sinks=[ring])):
            for name in ("append", "split", "ps"):
                analysis.global_all(name)
        return analysis, ring.events

    def test_worklist_engine_emits_the_vocabulary(self, worklist_trace):
        _, events = worklist_trace
        types = {e["type"] for e in events}
        assert {"ir_lower", "worklist_push", "worklist_pop",
                "transfer_eval"} <= types
        assert validate_trace(events) == len(events)

    def test_worklist_stats_replay_from_the_trace_alone(self, worklist_trace):
        analysis, events = worklist_trace
        stats = worklist_stats(events)
        # every binding lowered once, with its real instruction count
        assert set(stats.lowered) >= {"append", "split", "ps"}
        assert all(n > 0 for n in stats.lowered.values())
        # each binding is popped at least as often as it is evaluated
        assert stats.pops >= 3
        assert stats.pushes >= 1  # self-recursive bindings re-queue
        assert stats.transfer_evals > 0
        assert stats.transfer_evals <= analysis.stats.worklist_evals
        hottest = stats.hottest(3)
        assert len(hottest) == 3
        assert hottest[0].count >= hottest[1].count >= hottest[2].count

    def test_cache_stats_fold_worklist_evals(self, worklist_trace):
        analysis, events = worklist_trace
        assert cache_stats(events)["worklist_evals"] == (
            analysis.stats.worklist_evals
        )

    def test_profile_report_has_a_worklist_section(self, worklist_trace):
        _, events = worklist_trace
        report = profile_report(events)
        assert "worklist:" in report
        assert "hottest instructions:" in report
        assert "transfer eval(s)" in report

    def test_legacy_engine_emits_no_worklist_events(self):
        ring = RingBufferSink()
        analysis = EscapeAnalysis(paper_partition_sort(), engine="legacy")
        with activate(Tracer(sinks=[ring])):
            analysis.global_all("append")
        types = {e["type"] for e in ring.events}
        assert not types & {"ir_lower", "worklist_push", "worklist_pop",
                            "transfer_eval"}
        stats = worklist_stats(ring.events)
        assert stats.pops == 0 and not stats.instr_costs


class TestRuntimeEvents:
    def test_interpreter_emits_cell_and_gc_events(self):
        ring = RingBufferSink()
        program = prelude_program(["rev", "iota"], "rev (iota 20)")
        with activate(Tracer(sinks=[ring])):
            interp = Interpreter(auto_gc=True, gc_threshold=10)
            interp.run(program)
        stats = runtime_stats(ring.events)
        assert stats["allocs_heap"] > 0
        assert stats["gc_runs"] >= 1
        spans = span_profile(ring.events)
        assert any(s.name == "run" for s in spans)
        assert validate_trace(ring.events) > 0


class TestOptimizerEvents:
    def test_plan_and_apply_emit_decisions_and_transforms(self):
        from repro.opt.driver import apply_plan, plan_optimizations

        ring = RingBufferSink()
        program = prelude_program(["ps"], "ps [5, 2, 7]")
        with activate(Tracer(sinks=[ring])):
            plan = plan_optimizations(program)
            apply_plan(plan)
        events = ring.events
        decisions = [e for e in events if e["type"] == "decision"]
        assert len(decisions) == len(plan.decisions)
        assert any(e["type"] == "transform_applied" for e in events)
        assert validate_trace(events) > 0


class TestHardenedEngineEvents:
    def test_budget_charge_and_degradation_events(self):
        from repro.robust.budget import AnalysisBudget
        from repro.robust.engine import HardenedAnalysis

        ring = RingBufferSink()
        with activate(Tracer(sinks=[ring])):
            engine = HardenedAnalysis(
                paper_partition_sort(),
                budget=AnalysisBudget(max_fixpoint_iterations=1),
            )
            robust = engine.global_test("append", 1)
        assert robust.degraded
        events = ring.events
        degradations = [e for e in events if e["type"] == "degradation"]
        assert degradations and degradations[0]["reason"] == "iteration-budget-exceeded"
        charges = [e for e in events if e["type"] == "budget_charge"]
        assert charges and charges[-1]["iterations"] >= 1


class TestSinkDurability:
    """The crash-durability satellites: JSONL lines reach disk as they are
    written, and the default ring buffer is bounded."""

    class _CrashStream(io.StringIO):
        """Records what had been flushed — the post-crash view of a file
        whose buffered tail was lost."""

        def __init__(self):
            super().__init__()
            self.flushed = ""

        def flush(self):
            self.flushed = self.getvalue()
            super().flush()

    def test_jsonl_flushes_every_line_by_default(self):
        stream = self._CrashStream()
        tracer = Tracer(sinks=[JsonlSink(stream)])
        for cell in range(3):
            tracer.emit("cell_reuse", cell=cell)
        # no close(): the "crashed" file still holds every line written
        events = read_trace(io.StringIO(stream.flushed))
        assert [e["cell"] for e in events] == [0, 1, 2]

    def test_jsonl_flush_interval_bounds_the_lost_tail(self):
        stream = self._CrashStream()
        tracer = Tracer(sinks=[JsonlSink(stream, flush_every=4)])
        for cell in range(6):
            tracer.emit("cell_reuse", cell=cell)
        survived = read_trace(io.StringIO(stream.flushed))
        assert [e["cell"] for e in survived] == [0, 1, 2, 3]
        assert len(stream.getvalue().splitlines()) == 6

    def test_jsonl_close_drains_the_tail(self):
        stream = self._CrashStream()
        sink = JsonlSink(stream, flush_every=100)
        Tracer(sinks=[sink]).emit("cell_reuse", cell=9)
        sink.close()
        assert [e["cell"] for e in read_trace(io.StringIO(stream.flushed))] == [9]

    def test_jsonl_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            JsonlSink(io.StringIO(), flush_every=0)

    def test_ring_buffer_default_is_bounded(self):
        from repro.obs.sinks import DEFAULT_RING_CAPACITY

        ring = RingBufferSink()
        assert ring.capacity == DEFAULT_RING_CAPACITY
        tracer = Tracer(sinks=[ring])
        tracer.emit("cell_reuse", cell=1)
        assert ring.total == 1 and len(ring.events) == 1

    def test_ring_buffer_unbounded_is_explicit(self):
        ring = RingBufferSink(capacity=None)
        assert ring.capacity is None
        tracer = Tracer(sinks=[ring])
        for cell in range(10):
            tracer.emit("cell_reuse", cell=cell)
        assert len(ring.events) == ring.total == 10

    def test_truncated_ring_keeps_exact_total(self):
        ring = RingBufferSink(capacity=3)
        tracer = Tracer(sinks=[ring])
        for cell in range(8):
            tracer.emit("cell_reuse", cell=cell)
        assert ring.total == 8
        assert [e["cell"] for e in ring.events] == [5, 6, 7]

    def test_profile_report_notes_truncation(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=[ring])
        with tracer.span("solve"):
            pass
        for _ in range(3):
            tracer.emit("cell_reuse", cell=1)
        report = profile_report(ring.events, total=ring.total)
        assert "truncated" in report
        assert f"last {len(ring.events)} of {ring.total}" in report

    def test_profile_report_quiet_when_complete(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.emit("cell_reuse", cell=1)
        assert "truncated" not in profile_report(ring.events, total=ring.total)


class TestStoreEvents:
    def test_store_events_replay_in_cache_stats(self, tmp_path):
        from repro.store import AnalysisStore

        ring = RingBufferSink()
        with activate(Tracer(sinks=[ring])):
            EscapeAnalysis(
                paper_partition_sort(), store=AnalysisStore(tmp_path / "s")
            ).global_test("append", 1)
            EscapeAnalysis(
                paper_partition_sort(), store=AnalysisStore(tmp_path / "s")
            ).global_test("append", 1)
        assert validate_trace(ring.events) > 0
        stats = cache_stats(ring.events)
        assert stats["store_writes"] == 3
        assert stats["store_hits"] == 3
        assert stats["store_misses"] == 3
        report = profile_report(ring.events)
        assert "store: 3/6 hit(s) (50%)" in report

    def test_metrics_sink_counts_store_reads_and_writes(self, tmp_path):
        from repro.store import AnalysisStore

        reg = MetricsRegistry()
        with activate(Tracer(sinks=[MetricsSink(reg)])):
            EscapeAnalysis(
                paper_partition_sort(), store=AnalysisStore(tmp_path / "s")
            ).global_test("append", 1)
        assert reg.counter("store.reads", outcome="miss") == 3
        assert reg.counter("store.writes") == 3


class TestResilienceEventVocabulary:
    """The resilience/service event types added with the always-answer
    layer: present in the schema, field-checked, and value-checked."""

    def _event(self, type_, **fields):
        return {"seq": 0, "ts": 0.0, "type": type_, **fields}

    def test_new_event_types_validate(self):
        validate_event(self._event("store_reap", count=2))
        validate_event(self._event("retry", key="a.nml", attempt=1, delay_s=0.05))
        validate_event(self._event("timeout", key="a.nml", deadline_s=0.5))
        validate_event(
            self._event("quarantine", key="a.nml", attempts=3, reason="timeout")
        )
        validate_event(self._event("circuit_state", target="a", state="open"))
        validate_event(
            self._event("worker_restart", key="a.nml", attempt=1, cause="timeout")
        )
        validate_event(
            self._event(
                "serve_request",
                endpoint="analyze",
                status=200,
                degraded=False,
                coalesced=False,
            )
        )

    def test_circuit_state_values_are_checked(self):
        with pytest.raises(TraceSchemaError, match="circuit state"):
            validate_event(
                self._event("circuit_state", target="a", state="exploded")
            )

    def test_new_event_types_require_their_fields(self):
        with pytest.raises(TraceSchemaError, match="missing field"):
            validate_event(self._event("retry", key="a.nml"))
        with pytest.raises(TraceSchemaError, match="missing field"):
            validate_event(self._event("serve_request", endpoint="analyze"))
