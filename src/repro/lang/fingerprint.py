"""Stable structural fingerprints for nml expressions and programs.

The query engine (:mod:`repro.query`) keys its caches by *what a program
is*, not by object identity: a solve is cached under
``(program_fp, pins_fp, d, max_iterations)`` and a per-SCC fixpoint under
the typed fingerprint of its bindings.  These helpers produce that key
material — a sha256 over a canonical token stream of the AST.

Two fingerprint flavours exist:

* ``include_types=False`` (the default) hashes the *structure* only — node
  kinds, scalar fields, binder names, and annotations.  Spans and uids are
  deliberately excluded (they change on every parse/clone), matching the
  structural ``__eq__`` of :mod:`repro.lang.ast`.
* ``include_types=True`` additionally hashes every node's inferred
  monotype (via :func:`repro.types.types.type_fingerprint`).  The abstract
  escape semantics reads the ``car^s`` annotations off node types, so two
  typed fingerprints being equal means the abstract evaluator sees the
  same program — the property per-SCC fixpoint reuse rests on.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from repro.lang.ast import (
    Binding,
    BoolLit,
    Expr,
    IntLit,
    Lambda,
    Letrec,
    Prim,
    Program,
    Var,
)
from repro.types.types import type_fingerprint

#: Token-stream separator; never occurs inside a token.
_SEP = "\x1f"


def _emit(expr: Expr, include_types: bool, out: list[str]) -> None:
    out.append(type(expr).__name__)
    if include_types:
        out.append(type_fingerprint(expr.ty) if expr.ty is not None else "?")
    if isinstance(expr, (IntLit, BoolLit)):
        out.append(str(expr.value))
    elif isinstance(expr, (Prim, Var)):
        out.append(expr.name)
    elif isinstance(expr, Lambda):
        out.append(expr.param)
    elif isinstance(expr, Letrec):
        for binding in expr.bindings:
            out.append(f"bind:{binding.name}")
    if expr.annotations:
        out.append(
            "@" + ",".join(f"{k}={expr.annotations[k]!r}" for k in sorted(expr.annotations))
        )
    out.append("(")
    for child in expr.children():
        _emit(child, include_types, out)
    out.append(")")


def _digest(tokens: list[str]) -> str:
    return hashlib.sha256(_SEP.join(tokens).encode("utf-8")).hexdigest()


def expr_fingerprint(expr: Expr, include_types: bool = False) -> str:
    """The canonical fingerprint of one expression (sub)tree."""
    tokens: list[str] = []
    _emit(expr, include_types, tokens)
    return _digest(tokens)


def bindings_fingerprint(
    bindings: Iterable[Binding], include_types: bool = False
) -> str:
    """The fingerprint of a group of letrec bindings, in the given order."""
    tokens: list[str] = []
    for binding in bindings:
        tokens.append(f"binding:{binding.name}")
        _emit(binding.expr, include_types, tokens)
    return _digest(tokens)


def program_fingerprint(program: Program, include_types: bool = False) -> str:
    """The canonical fingerprint of a whole program."""
    return expr_fingerprint(program.letrec, include_types=include_types)


def stable_digest(doc: object) -> str:
    """A sha256 hex digest of a JSON-representable document.

    Canonical encoding (sorted keys, no whitespace, explicit separators),
    so the digest is identical across processes, platforms, and
    ``PYTHONHASHSEED`` values.  This is the primitive under the query
    engine's per-SCC provenance digests (:func:`repro.query.scc_digest`),
    which replace the process-local ``id()`` tokens the cache originally
    used — equal digests mean "same analysis inputs", wherever computed.
    """
    canonical = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
