"""Lowering resolved nml ASTs into the flat IR of :mod:`repro.ir.nodes`.

The walk is syntax-directed and allocation-free beyond the blocks
themselves: every AST node becomes exactly one instruction (if-arms are
flattened into the enclosing block; lambda bodies and nested letrecs get
their own blocks, since their evaluation is deferred).  Dependency sets are
computed during the walk — a ``load`` depends on its name, compound
instructions union their operands' sets, and nesting constructs subtract
the names they bind — so the result is ready for change-propagation
without a separate analysis pass.

Every lowered top-level block emits one ``ir_lower`` observability event
(name + instruction count), so traces show the lowering work alongside the
fixpoint it feeds.
"""

from __future__ import annotations

from repro.ir.nodes import Block, Instr
from repro.lang.ast import (
    App,
    Binding,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
)
from repro.lang.errors import AnalysisError
from repro.obs import tracer as obs

__all__ = ["lower_expr", "lower_binding", "lower_program"]


def _emit(block: Block, ins: Instr, deps: frozenset[str]) -> int:
    block.instrs.append(ins)
    block.deps.append(deps)
    return len(block.instrs) - 1


def _lower_into(block: Block, expr: Expr) -> int:
    """Lower ``expr`` into ``block``; returns the index of its value."""
    if isinstance(expr, (IntLit, BoolLit, NilLit)):
        return _emit(block, Instr("const", expr), frozenset())
    if isinstance(expr, Prim):
        return _emit(block, Instr("prim", expr), frozenset())
    if isinstance(expr, Var):
        return _emit(
            block, Instr("load", expr, name=expr.name), frozenset((expr.name,))
        )
    if isinstance(expr, App):
        fn = _lower_into(block, expr.fn)
        arg = _lower_into(block, expr.arg)
        return _emit(
            block,
            Instr("apply", expr, operands=(fn, arg)),
            block.deps[fn] | block.deps[arg],
        )
    if isinstance(expr, If):
        cond = _lower_into(block, expr.cond)
        then = _lower_into(block, expr.then)
        otherwise = _lower_into(block, expr.otherwise)
        return _emit(
            block,
            Instr("branch", expr, operands=(cond, then, otherwise)),
            block.deps[cond] | block.deps[then] | block.deps[otherwise],
        )
    if isinstance(expr, Lambda):
        body = lower_expr(expr.body, label=f"{block.label}.λ{expr.param}")
        free = tuple(sorted(body.free_names - {expr.param}))
        return _emit(
            block,
            Instr(
                "close",
                expr,
                param=expr.param,
                names=free,
                blocks=(body,),
            ),
            frozenset(free),
        )
    if isinstance(expr, Letrec):
        bound = frozenset(b.name for b in expr.bindings)
        blocks = tuple(
            lower_expr(b.expr, label=f"{block.label}.{b.name}") for b in expr.bindings
        ) + (lower_expr(expr.body, label=f"{block.label}.in"),)
        free = frozenset().union(*(b.free_names for b in blocks)) - bound
        return _emit(
            block,
            Instr(
                "enter",
                expr,
                names=tuple(b.name for b in expr.bindings),
                blocks=blocks,
            ),
            free,
        )
    raise AnalysisError(f"cannot lower {type(expr).__name__} to IR", expr.span)


def lower_expr(expr: Expr, label: str = "<expr>") -> Block:
    """Lower one expression to a sealed :class:`Block`."""
    block = Block(label=label)
    _lower_into(block, expr)
    return block.finish()


def lower_binding(binding: Binding) -> Block:
    """Lower one letrec binding's expression; emits ``ir_lower``."""
    block = lower_expr(binding.expr, label=binding.name)
    obs.emit("ir_lower", name=binding.name, instructions=block.size())
    return block


def lower_program(program: Program) -> dict[str, Block]:
    """Lower every top-level binding (callers lower the body on demand)."""
    return {b.name: lower_binding(b) for b in program.bindings}
