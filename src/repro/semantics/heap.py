"""The instrumented cons-cell heap, with regions.

Every non-empty list value points at a :class:`Cell` allocated here.  Cells
record where they were placed:

* ``heap``  — ordinary GC-managed allocation;
* ``stack`` — a region tied to a call's activation (§A.3.1): popped, and
  its cells freed, when the call returns;
* ``block`` — a "local heap" (§A.3.3): released all at once, with no
  per-cell traversal, when its owning call returns;
* ``reused`` is not a placement but an event: ``dcons`` recycles an
  existing cell in place (§A.3.2).

Touching a freed cell raises
:class:`~repro.lang.errors.UseAfterFreeError` — the tripwire that would
expose an unsound optimization.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.lang.ast import Prim
from repro.lang.errors import EvalError, StorageSafetyError, UseAfterFreeError
from repro.obs import tracer as obs
from repro.robust import faults
from repro.semantics.metrics import StorageMetrics
from repro.semantics.values import Env, Value, VClosure, VCons, VPrim, VTuple


class AllocKind(enum.Enum):
    HEAP = "heap"
    STACK = "stack"
    BLOCK = "block"


@dataclass(eq=False)
class Cell:
    """One cons cell.  ``car``/``cdr`` are mutable so ``dcons`` can reuse
    the cell in place."""

    id: int
    car: Value
    cdr: Value
    kind: AllocKind
    region: "Region | None" = None
    site_uid: int | None = None
    freed: bool = False
    #: reuse generation: bumped by every ``dcons`` that recycles this cell,
    #: so references created before the reuse are detectably stale
    version: int = 0

    def __hash__(self) -> int:
        return self.id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = " FREED" if self.freed else ""
        return f"Cell#{self.id}[{self.kind.value}{status}]"


@dataclass(eq=False)
class Region:
    """A group of cells reclaimed together."""

    id: int
    kind: AllocKind  # STACK or BLOCK
    label: str = ""
    cells: list[Cell] = field(default_factory=list)
    closed: bool = False


@dataclass(frozen=True)
class StorageViolation:
    """One storage-safety violation detected by the sanitizer."""

    kind: str  # "use-after-reuse" | "read-after-free" | "reclaim-live-cell" | "dangling-reference"
    cell_id: int
    context: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"{self.kind}: cell #{self.cell_id} in {self.context}"
        if self.detail:
            text += f" ({self.detail})"
        return text


class StorageSanitizer:
    """Opt-in storage-safety instrumentation for one heap.

    Detects the three ways an unsound optimization mis-executes:

    * **use-after-reuse** — a read through a reference created before a
      ``dcons`` recycled the cell (the reference observes the new contents
      as if they were the old list);
    * **read-after-free** — a read of a cell reclaimed with its stack or
      block region (also covered by the always-on
      :class:`~repro.lang.errors.UseAfterFreeError` tripwire; the sanitizer
      records it with region provenance);
    * **reclaim-live-cell** — a region close that frees cells still
      reachable from the interpreter's live roots.

    Violations are recorded; with ``halt`` (the default) they also raise
    :class:`~repro.lang.errors.StorageSafetyError` at the faulting access.
    GC-time *dangling-reference* findings (a freed cell still reachable
    from a root) are recorded as warnings only: a dead-but-referenced cell
    is harmless unless actually read, and sound region optimizations
    routinely leave such references behind.
    """

    def __init__(self, halt: bool = True):
        self.halt = halt
        self.violations: list[StorageViolation] = []
        self.warnings: list[StorageViolation] = []

    def report(self, kind: str, cell: Cell, context: str, detail: str = "") -> None:
        violation = StorageViolation(kind, cell.id, context, detail)
        self.violations.append(violation)
        if self.halt:
            raise StorageSafetyError(f"storage sanitizer: {violation}")

    def warn(self, kind: str, cell: Cell, context: str, detail: str = "") -> None:
        self.warnings.append(StorageViolation(kind, cell.id, context, detail))

    @property
    def clean(self) -> bool:
        return not self.violations


class Heap:
    """Allocation, regions, reachability, and the free/reuse events.

    One heap is owned by one :class:`~repro.semantics.interp.Interpreter`;
    they share a :class:`~repro.semantics.metrics.StorageMetrics`.  An
    optional :class:`StorageSanitizer` adds reuse/reclamation safety checks.
    """

    def __init__(
        self,
        metrics: StorageMetrics | None = None,
        sanitizer: StorageSanitizer | None = None,
    ):
        self.metrics = metrics or StorageMetrics()
        self.sanitizer = sanitizer
        self._ids = itertools.count(1)
        self._region_ids = itertools.count(1)
        #: live cells, by id (freed cells are removed but still referenced
        #: by any dangling VCons values, keeping use-after-free detectable)
        self.cells: dict[int, Cell] = {}
        self.region_stack: list[Region] = []

    # -- allocation --------------------------------------------------------

    def allocate(self, car: Value, cdr: Value, site: Prim | None = None) -> Cell:
        """Allocate a fresh cell, honouring the site's ``alloc`` annotation:
        ``"region"`` targets the innermost open region, anything else (or no
        open region) goes to the GC heap."""
        faults.check_alloc()
        placement = site.annotations.get("alloc") if site is not None else None
        region: Region | None = None
        if placement == "region" and self.region_stack:
            region = self.region_stack[-1]
        if region is not None:
            kind = region.kind
            self.metrics.region_allocs += 1
            key = f"{kind.value}:{region.label}" if region.label else kind.value
            self.metrics.by_region_kind[key] = self.metrics.by_region_kind.get(key, 0) + 1
        else:
            kind = AllocKind.HEAP
            self.metrics.heap_allocs += 1
        cell = Cell(
            id=next(self._ids),
            car=car,
            cdr=cdr,
            kind=kind,
            region=region,
            site_uid=site.uid if site is not None else None,
        )
        self.cells[cell.id] = cell
        if region is not None:
            region.cells.append(cell)
        tracing = obs.tracing()
        if tracing is not None:
            tracing.emit("cell_alloc", cell=cell.id, kind=kind.value)
        return cell

    def reuse(self, cell: Cell, car: Value, cdr: Value) -> Cell:
        """``dcons``: destructively overwrite ``cell`` (§6's DCONS).

        Bumps the cell's reuse generation so any reference created before
        this reuse is detectably stale (see :meth:`check_ref`)."""
        self.check_live(cell, "dcons")
        cell.car = car
        cell.cdr = cdr
        cell.version += 1
        self.metrics.reused += 1
        tracing = obs.tracing()
        if tracing is not None:
            tracing.emit("cell_reuse", cell=cell.id)
        return cell

    # -- access guards -------------------------------------------------------

    def check_live(self, cell: Cell, context: str) -> None:
        if cell.freed:
            if self.sanitizer is not None:
                self.sanitizer.report(
                    "read-after-free",
                    cell,
                    context,
                    f"reclaimed with its {cell.kind.value} region",
                )
            raise UseAfterFreeError(
                f"{context}: cell #{cell.id} was reclaimed with its "
                f"{cell.kind.value} region"
            )

    def check_ref(self, ref: VCons, context: str) -> Cell:
        """Sanitized access through a list reference: liveness plus the
        use-after-reuse generation check."""
        cell = ref.cell
        self.check_live(cell, context)
        if self.sanitizer is not None and ref.version != cell.version:
            self.sanitizer.report(
                "use-after-reuse",
                cell,
                context,
                f"reference generation {ref.version}, cell generation "
                f"{cell.version}: the cell was recycled by dcons after this "
                "reference was created",
            )
        return cell

    def read_car(self, cell: Cell, context: str = "car") -> Value:
        self.check_live(cell, context)
        return cell.car

    def read_cdr(self, cell: Cell, context: str = "cdr") -> Value:
        self.check_live(cell, context)
        return cell.cdr

    def car_of(self, ref: VCons, context: str = "car") -> Value:
        """Read ``car`` through a reference (sanitizer-aware)."""
        return self.check_ref(ref, context).car

    def cdr_of(self, ref: VCons, context: str = "cdr") -> Value:
        """Read ``cdr`` through a reference (sanitizer-aware)."""
        return self.check_ref(ref, context).cdr

    # -- regions -----------------------------------------------------------------

    def open_region(self, kind: AllocKind, label: str = "") -> Region:
        if kind is AllocKind.HEAP:
            raise EvalError("regions are stack or block, not heap")
        region = Region(id=next(self._region_ids), kind=kind, label=label)
        self.region_stack.append(region)
        obs.emit("region_push", kind=kind.value, label=label)
        return region

    def close_region(
        self,
        region: Region,
        escaping: "Value | None" = None,
        live_roots: "tuple[Value | Env, ...] | list[Value | Env] | None" = None,
    ) -> int:
        """Free every cell of ``region`` at once.

        If ``escaping`` is given (the value the region's scope returned),
        raise :class:`UseAfterFreeError` immediately when any freed cell is
        still reachable from it — surfacing an unsound optimization at the
        point of deallocation rather than at a later read.

        With a sanitizer installed and ``live_roots`` given (the
        interpreter's full root set), reclamation of any region cell still
        reachable from those roots is reported as a ``reclaim-live-cell``
        violation — catching block reclamation of live cells even when the
        escaping value itself is clean.
        """
        if self.region_stack and self.region_stack[-1] is region:
            self.region_stack.pop()
        else:  # tolerate out-of-order closes from error paths
            self.region_stack = [r for r in self.region_stack if r is not region]
        if region.closed:
            return 0

        if escaping is not None:
            still_needed = self.reachable_cells(escaping)
            leaked = [cell for cell in region.cells if cell in still_needed]
            if leaked:
                raise UseAfterFreeError(
                    f"{len(leaked)} cell(s) of {region.kind.value} region "
                    f"{region.label or region.id} escape its scope "
                    f"(first: #{leaked[0].id}) — the optimization that placed "
                    "them there is unsound for this program"
                )

        if self.sanitizer is not None and live_roots is not None:
            still_live = self.reachable_cells(*live_roots)
            held = [cell for cell in region.cells if cell in still_live]
            if held:
                self.sanitizer.report(
                    "reclaim-live-cell",
                    held[0],
                    f"close {region.kind.value} region {region.label or region.id}",
                    f"{len(held)} cell(s) still reachable from live roots",
                )

        freed = 0
        for cell in region.cells:
            if not cell.freed:
                cell.freed = True
                self.cells.pop(cell.id, None)
                freed += 1
        region.closed = True
        if region.kind is AllocKind.STACK:
            self.metrics.stack_reclaimed += freed
        else:
            self.metrics.block_reclaimed += freed
        tracing = obs.tracing()
        if tracing is not None:
            tracing.emit(
                "region_pop", kind=region.kind.value, label=region.label, freed=freed
            )
            if freed:
                tracing.emit(
                    "cell_reclaim", count=freed, cause=f"{region.kind.value}-region"
                )
        return freed

    # -- reachability ------------------------------------------------------------

    def reachable_cells(self, *roots: "Value | Env") -> set[Cell]:
        """Every cell reachable from the given values/environments, looking
        through cons cells, closures, and partial primitive applications.

        Environment *frames* are deduplicated by identity: a letrec frame
        contains closures whose captured environment is that same frame, so
        a naive walk would loop forever.
        """
        seen: set[Cell] = set()
        seen_frames: set[int] = set()
        stack: list[Value] = []

        def push_env(env: Env) -> None:
            current: Env | None = env
            while current is not None:
                if id(current.frame) not in seen_frames:
                    seen_frames.add(id(current.frame))
                    stack.extend(current.frame.values())
                current = current.parent

        for root in roots:
            if isinstance(root, Env):
                push_env(root)
            else:
                stack.append(root)
        while stack:
            value = stack.pop()
            if isinstance(value, VCons):
                cell = value.cell
                if cell in seen:
                    continue
                seen.add(cell)
                if not cell.freed:
                    stack.append(cell.car)
                    stack.append(cell.cdr)
            elif isinstance(getattr(value, "env", None), Env):
                # any closure-like value (interpreter VClosure, machine
                # MClosure): its captured environment is reachable
                push_env(value.env)
            elif isinstance(value, VPrim):
                stack.extend(value.args)
            elif isinstance(value, VTuple):
                stack.append(value.fst)
                stack.append(value.snd)
        return seen

    def live_heap_count(self) -> int:
        return sum(1 for cell in self.cells.values() if cell.kind is AllocKind.HEAP)

    # -- spine decomposition (Definition 1 / Figure 1) -----------------------------

    def spine_map(self, value: Value, max_level: int = 64) -> dict[Cell, set[int]]:
        """Map each cell reachable from a list value to the set of spine
        levels it occupies: level ``i`` = reachable with exactly ``i − 1``
        ``car`` operations (any number of ``cdr``)."""
        result: dict[Cell, set[int]] = {}
        seen: set[tuple[int, int]] = set()
        stack: list[tuple[Value, int]] = [(value, 1)]
        while stack:
            current, level = stack.pop()
            if not isinstance(current, VCons) or level > max_level:
                continue
            cell = current.cell
            if (cell.id, level) in seen:
                continue
            seen.add((cell.id, level))
            result.setdefault(cell, set()).add(level)
            if not cell.freed:
                stack.append((cell.cdr, level))  # same spine
                stack.append((cell.car, level + 1))  # next spine down
        return result

    def spine_levels(self, value: Value, max_level: int = 64) -> dict[int, list[Cell]]:
        """The inverse view: spine level → cells on it (Figure 1)."""
        by_level: dict[int, list[Cell]] = {}
        for cell, levels in self.spine_map(value, max_level).items():
            for level in levels:
                by_level.setdefault(level, []).append(cell)
        for cells in by_level.values():
            cells.sort(key=lambda c: c.id)
        return by_level
