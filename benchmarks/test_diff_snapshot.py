"""DF1 — the differential harness: snapshot cost and artifact stability.

What ``repro diff`` adds on top of the batch driver is a per-file
*artifact*; this bench prices it.  A corpus sharing the prelude's
``append`` knot is snapshotted twice through one store: the cold run pays
every fixpoint, the warm run decodes everything — and (the property the
tentpole is built on) **the artifact trees are byte-identical**, because a
store hit now reproduces the complete analysis result, sharing partition
included (serialize codec 2).

Exported to ``BENCH_diff.json``: wall-time cold vs warm, artifact bytes
per file, and the self-compare verdict.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.tables import print_table
from repro.diff.compare import compare_trees
from repro.diff.snapshot import INDEX_NAME, snapshot_corpus, tree_digest
from repro.lang.prelude import prelude_source

CORPUS = {
    "partition_sort.nml": prelude_source(["ps"], "ps [5, 2, 7, 1, 3, 4]"),
    "reverse.nml": prelude_source(["append", "rev"], "rev [1, 2, 3, 4]"),
    "concat.nml": prelude_source(["append", "concat"], "concat [[1], [2, 3]]"),
    "isort.nml": prelude_source(["isort"], "isort [3, 1, 2]"),
}

PINNED_D = 2


def _write_corpus(root: Path) -> Path:
    corpus = root / "corpus"
    corpus.mkdir()
    for name, source in CORPUS.items():
        (corpus / name).write_text(source)
    return corpus


def test_df1_snapshot_cost_and_stability(benchmark, tmp_path):
    corpus = _write_corpus(tmp_path)
    store = tmp_path / "store"
    cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"

    start = time.perf_counter()
    cold = snapshot_corpus([corpus], cold_dir, store_root=store, d=PINNED_D)
    cold_s = time.perf_counter() - start
    assert cold.ok

    start = time.perf_counter()
    warm = snapshot_corpus([corpus], warm_dir, store_root=store, d=PINNED_D)
    warm_s = time.perf_counter() - start
    assert warm.ok

    # The stability gates: warm bytes == cold bytes, self-compare empty.
    # (The snapshot worker deliberately reports no session stats — they are
    # warmth-dependent — so the warm-run gate is byte-identity itself;
    # ST1 pins the zero-iteration property for the underlying batch.)
    assert tree_digest(cold_dir) == tree_digest(warm_dir)
    comparison = compare_trees(cold_dir, warm_dir)
    assert comparison.empty and comparison.exit_code() == 0

    artifacts = sorted(
        p for p in cold_dir.rglob("*.json") if p.name != INDEX_NAME
    )
    sizes = {p.name: p.stat().st_size for p in artifacts}
    rows = [
        [name, f"{size:,} B"] for name, size in sorted(sizes.items())
    ] + [
        ["cold snapshot", f"{cold_s * 1000:.1f} ms"],
        ["warm snapshot", f"{warm_s * 1000:.1f} ms"],
    ]
    print_table(["artifact / run", "size / time"], rows, title="DF1: snapshot cost")

    def warm_snapshot():
        out = tmp_path / "bench-out"
        snapshot_corpus([corpus], out, store_root=store, d=PINNED_D)

    benchmark(warm_snapshot)

    out = Path(__file__).resolve().parent.parent / "BENCH_diff.json"
    out.write_text(
        json.dumps(
            {
                "corpus": sorted(CORPUS),
                "d": PINNED_D,
                "cold_wall_s": round(cold_s, 6),
                "warm_wall_s": round(warm_s, 6),
                "artifact_bytes": sizes,
                "artifact_bytes_total": sum(sizes.values()),
                "byte_identical": True,
                "self_compare_empty": True,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
