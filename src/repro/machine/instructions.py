"""Instruction set of the abstract machine (§3.3's operational layer).

The paper frames the escape semantics as an abstraction of "a certain
implementation that uses a stack and a heap"; this is that implementation,
made concrete: a stack machine with structured code (branch/closure bodies
are nested code tuples), an operand stack, environment frames, and explicit
region instructions compiled from the optimizers' annotations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Prim

#: A code block: a tuple of instructions, executed left to right.
Code = tuple


class Instr:
    """Base class of machine instructions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class PushInt(Instr):
    value: int


@dataclass(frozen=True, slots=True)
class PushBool(Instr):
    value: bool


@dataclass(frozen=True, slots=True)
class PushNil(Instr):
    pass


@dataclass(frozen=True, slots=True)
class PushPrim(Instr):
    """Push a primitive as a first-class (curryable) value.

    The :class:`~repro.lang.ast.Prim` node is carried so allocation-site
    annotations (``alloc = "region"``) survive compilation.
    """

    prim: Prim


@dataclass(frozen=True, slots=True)
class Load(Instr):
    name: str


@dataclass(frozen=True, slots=True)
class MakeClosure(Instr):
    """Build a closure over the current environment."""

    param: str
    body: Code
    name: str = ""


@dataclass(frozen=True, slots=True)
class Apply(Instr):
    """Pop argument then function; enter the function."""


@dataclass(frozen=True, slots=True)
class Branch(Instr):
    """Pop a boolean; execute one of the sub-blocks, then continue."""

    then_code: Code
    else_code: Code


@dataclass(frozen=True, slots=True)
class LetrecEnter(Instr):
    """Push a fresh (shared, mutable) environment frame for a letrec knot."""

    names: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Store(Instr):
    """Pop a value into the current letrec frame."""

    name: str


@dataclass(frozen=True, slots=True)
class EnvRestore(Instr):
    """Pop one environment level (closes a letrec scope)."""


@dataclass(frozen=True, slots=True)
class RegionOpen(Instr):
    kind: str  # "stack" | "block"
    label: str = ""


@dataclass(frozen=True, slots=True)
class RegionClose(Instr):
    """Close the innermost machine-opened region; the value on top of the
    stack is the region scope's result (checked for escapes)."""


def flatten(code: Code):
    """Yield every instruction, recursing through nested closure bodies and
    branch arms — the machine-code footprint of a program, independent of
    the nesting structure ``disassemble`` shows."""
    for instr in code:
        yield instr
        if isinstance(instr, MakeClosure):
            yield from flatten(instr.body)
        elif isinstance(instr, Branch):
            yield from flatten(instr.then_code)
            yield from flatten(instr.else_code)


def instruction_counts(code: Code) -> dict[str, int]:
    """Per-opcode instruction counts of ``code``, nested blocks included —
    the code-size fact snapshot artifacts carry so the corpus differ can
    report size deltas per opcode (a lost ``dcons`` shows up here too)."""
    counts: dict[str, int] = {}
    for instr in flatten(code):
        name = type(instr).__name__
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def disassemble(code: Code, indent: int = 0) -> str:
    """Human-readable listing, nested blocks indented."""
    pad = "  " * indent
    lines: list[str] = []
    for instr in code:
        if isinstance(instr, MakeClosure):
            lines.append(f"{pad}closure {instr.name or ''}({instr.param}):")
            lines.append(disassemble(instr.body, indent + 1))
        elif isinstance(instr, Branch):
            lines.append(f"{pad}branch:")
            lines.append(f"{pad}  then:")
            lines.append(disassemble(instr.then_code, indent + 2))
            lines.append(f"{pad}  else:")
            lines.append(disassemble(instr.else_code, indent + 2))
        elif isinstance(instr, PushPrim):
            lines.append(f"{pad}push_prim {instr.prim.name}")
        else:
            text = repr(instr).replace("()", "")
            lines.append(f"{pad}{text}")
    return "\n".join(lines)
