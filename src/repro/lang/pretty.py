"""Pretty printer for nml.

Produces surface syntax that round-trips through the parser: infix operators
regain their notation, fully-literal cons chains print as ``[...]`` list
literals, and curried lambdas print as multi-parameter definitions inside
letrec.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
    uncurry_app,
    uncurry_lambda,
)

_INFIX = {"+", "-", "*", "/", "==", "<>", "<", "<=", ">", ">="}

# Precedence levels, mirroring the parser: higher binds tighter.
_PREC_COMPARISON = 1
_PREC_CONS = 2
_PREC_ADD = 3
_PREC_MUL = 4
_PREC_APP = 5
_PREC_ATOM = 6

_INFIX_PREC = {
    "==": _PREC_COMPARISON,
    "<>": _PREC_COMPARISON,
    "<": _PREC_COMPARISON,
    "<=": _PREC_COMPARISON,
    ">": _PREC_COMPARISON,
    ">=": _PREC_COMPARISON,
    "+": _PREC_ADD,
    "-": _PREC_ADD,
    "*": _PREC_MUL,
    "/": _PREC_MUL,
}


def pretty(expr: Expr, indent: int = 0) -> str:
    """Render ``expr`` as parseable nml source."""
    return _render(expr, 0, indent)


def pretty_program(program: Program) -> str:
    """Render a program in script form (definitions then result)."""
    lines: list[str] = []
    for binding in program.bindings:
        params, body = uncurry_lambda(binding.expr)
        header = " ".join([binding.name, *params])
        lines.append(f"{header} = {_render(body, 0, 0)};")
    if not isinstance(program.body, NilLit):
        lines.append(_render(program.body, 0, 0))
    return "\n".join(lines) + "\n"


def _paren(text: str, needed: bool) -> str:
    return f"({text})" if needed else text


def _as_literal_list(expr: Expr) -> list[Expr] | None:
    """If ``expr`` is a complete cons chain ending in nil, its elements."""
    elements: list[Expr] = []
    while True:
        if isinstance(expr, NilLit):
            return elements
        head, args = uncurry_app(expr)
        if isinstance(head, Prim) and head.name == "cons" and len(args) == 2:
            elements.append(args[0])
            expr = args[1]
        else:
            return None


def _render(expr: Expr, prec: int, indent: int) -> str:
    pad = "  " * indent

    if isinstance(expr, IntLit):
        return str(expr.value) if expr.value >= 0 else _paren(str(expr.value), prec > _PREC_ADD)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, NilLit):
        return "nil"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Prim):
        # A bare primitive in non-application position; parenthesize the
        # operators so the result re-parses.
        return f"({expr.name})" if expr.name in _INFIX else expr.name

    if isinstance(expr, If):
        cond = _render(expr.cond, 0, indent + 1)
        then = _render(expr.then, 0, indent + 1)
        other = _render(expr.otherwise, 0, indent + 1)
        text = f"if {cond} then {then}\n{pad}  else {other}"
        return _paren(text, prec > 0)

    if isinstance(expr, Lambda):
        params, body = uncurry_lambda(expr)
        text = f"lambda {' '.join(params)}. {_render(body, 0, indent)}"
        return _paren(text, prec > 0)

    if isinstance(expr, Letrec):
        parts = []
        for binding in expr.bindings:
            params, body = uncurry_lambda(binding.expr)
            header = " ".join([binding.name, *params])
            parts.append(f"{header} = {_render(body, 0, indent + 1)}")
        joined = ";\n".join(f"{pad}  {part}" for part in parts)
        text = f"letrec\n{joined}\n{pad}in {_render(expr.body, 0, indent)}"
        return _paren(text, prec > 0)

    if isinstance(expr, App):
        literal = _as_literal_list(expr)
        if literal is not None:
            inner = ", ".join(_render(el, 0, indent) for el in literal)
            return f"[{inner}]"
        head, args = uncurry_app(expr)
        if isinstance(head, Prim) and head.name == "mkpair" and len(args) == 2:
            left = _render(args[0], 0, indent)
            right = _render(args[1], 0, indent)
            return f"({left}, {right})"
        if isinstance(head, Prim) and head.name in _INFIX and len(args) == 2:
            op_prec = _INFIX_PREC[head.name]
            left = _render(args[0], op_prec, indent)
            right = _render(args[1], op_prec + 1, indent)
            return _paren(f"{left} {head.name} {right}", prec >= op_prec + 1)
        if isinstance(head, Prim) and head.name == "cons" and len(args) == 2:
            left = _render(args[0], _PREC_CONS + 1, indent)
            right = _render(args[1], _PREC_CONS, indent)
            return _paren(f"{left} :: {right}", prec > _PREC_CONS)
        rendered = [_render(head, _PREC_APP, indent)]
        rendered += [_render(arg, _PREC_ATOM, indent) for arg in args]
        return _paren(" ".join(rendered), prec > _PREC_APP)

    raise TypeError(f"cannot pretty-print {type(expr).__name__}")
