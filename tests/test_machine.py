"""Abstract machine tests: compilation, execution, differential equivalence
with the tree-walking interpreter (results AND storage counters), regions,
dcons, GC, and deep recursion."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.lang.errors import EvalError, UseAfterFreeError
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import prelude_program
from repro.machine.compiler import compile_expr, compile_program
from repro.machine.instructions import (
    Apply,
    Branch,
    Load,
    MakeClosure,
    PushInt,
    PushPrim,
    disassemble,
)
from repro.machine.machine import Machine, run_compiled
from repro.semantics.interp import run_program

from .strategies import list_function_program


def run(source: str):
    machine = Machine()
    value = machine.run(parse_program(source))
    return machine.to_python(value)


class TestCompilation:
    def test_literal(self):
        assert compile_expr(parse_expr("42")) == (PushInt(42),)

    def test_application_is_fn_arg_apply(self):
        code = compile_expr(parse_expr("f x"))
        assert code == (Load("f"), Load("x"), Apply())

    def test_if_compiles_to_branch(self):
        code = compile_expr(parse_expr("if b then 1 else 2"))
        assert isinstance(code[-1], Branch)
        assert code[-1].then_code == (PushInt(1),)

    def test_lambda_compiles_to_closure(self):
        code = compile_expr(parse_expr("lambda x. x"))
        assert isinstance(code[0], MakeClosure)
        assert code[0].body == (Load("x"),)

    def test_prim_site_preserved(self):
        expr = parse_expr("cons 1 nil")
        expr_prim = expr.fn.fn  # the Prim node
        code = compile_expr(expr)
        pushes = [i for i in code if isinstance(i, PushPrim)]
        assert pushes[0].prim is expr_prim  # same node: annotations survive

    def test_disassemble_renders(self):
        text = disassemble(compile_expr(parse_expr("if b then f 1 else 2")))
        assert "branch" in text and "Load" in text


class TestExecution:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2 * 3", 7),
            ("[1, 2, 3]", [1, 2, 3]),
            ("car [9, 8]", 9),
            ("if 1 < 2 then 10 else 20", 10),
            ("(lambda x. x + 1) 41", 42),
            ("letrec f x = if x == 0 then 0 else 2 + f (x - 1) in f 5", 10),
            ("fst (1, 2) + snd (3, 4)", 5),
            ("letrec x = 1 in (letrec x = 2 in x) + x", 3),  # scope restore
        ],
    )
    def test_programs(self, source, expected):
        assert run(source) == expected

    def test_runtime_errors_propagate(self):
        with pytest.raises(EvalError):
            run("car nil")
        with pytest.raises(EvalError):
            run("1 2")
        with pytest.raises(EvalError):
            run("1 / 0")

    def test_deep_recursion_needs_no_python_stack(self):
        program = prelude_program(["create_list", "length"], "length (create_list 50000)")
        result, _ = run_compiled(program)
        assert result == 50000

    def test_dcons_reuses_on_machine(self):
        machine = Machine()
        value = machine.run(parse_program("letrec x = [9, 9] in dcons x 1 nil"))
        assert machine.to_python(value) == [1]
        assert machine.metrics.reused == 1


CORPUS_SOURCES = [
    (["ps"], "ps [5, 2, 7, 1, 3, 4]"),
    (["rev"], "rev [1, 2, 3, 4]"),
    (["map", "pair"], "map pair [[1, 2], [3, 4]]"),
    (["zip", "unzip"], "unzip (zip [1, 2] [3, 4])"),
    (["foldr"], "foldr (+) 0 [1, 2, 3, 4]"),
    (["isort"], "isort [3, 1, 2]"),
    (["filter"], "filter (lambda x. x > 1) [0, 1, 2, 3]"),
    (["concat"], "concat [[1], [], [2, 3]]"),
    (["ps_pair"], "ps_pair [4, 1, 3]"),
]


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("names,expr", CORPUS_SOURCES, ids=lambda v: v if isinstance(v, str) else "")
    def test_results_and_counters_match_interpreter(self, names, expr):
        program = prelude_program(names, expr)
        interp_result, interp_metrics = run_program(program)
        machine_result, machine_metrics = run_compiled(program)
        assert machine_result == interp_result
        # identical storage behaviour, event for event
        assert machine_metrics.heap_allocs == interp_metrics.heap_allocs
        assert machine_metrics.reused == interp_metrics.reused
        assert machine_metrics.applications == interp_metrics.applications

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(case=list_function_program())
    def test_generated_programs_agree(self, case):
        program, _ = case
        try:
            interp_result, interp_metrics = run_program(program)
        except EvalError as error:
            with pytest.raises(EvalError):
                run_compiled(program)
            return
        machine_result, machine_metrics = run_compiled(program)
        assert machine_result == interp_result
        assert machine_metrics.heap_allocs == interp_metrics.heap_allocs


class TestOptimizedProgramsOnMachine:
    def test_stack_allocation(self):
        from repro.opt.pipeline import paper_stack_allocated

        result, metrics = run_compiled(paper_stack_allocated().program)
        assert result == [1, 2, 3, 4, 5, 7]
        assert metrics.stack_reclaimed == 6

    def test_reuse_ps_double_prime(self):
        from repro.opt.pipeline import paper_ps_double_prime

        result, metrics = run_compiled(paper_ps_double_prime().program)
        assert result == [1, 2, 3, 4, 5, 7]
        assert metrics.reused == 14  # identical to the interpreter

    def test_block_allocation(self):
        from repro.opt.pipeline import paper_block_allocated

        result, metrics = run_compiled(paper_block_allocated(12).program)
        assert result == list(range(1, 13))
        assert metrics.block_reclaimed == 12

    def test_unsound_region_caught_on_machine(self):
        from repro.lang.ast import Prim, walk

        program = prelude_program(["drop"], "drop 1 [1, 2, 3]")
        for node in walk(program.body):
            if isinstance(node, Prim) and node.name == "cons":
                node.annotations["alloc"] = "region"
        program.body.annotations["region"] = {"kind": "stack", "label": "bogus"}
        with pytest.raises(UseAfterFreeError):
            run_compiled(program)


class TestMachineGc:
    def test_auto_gc_preserves_results(self):
        program = prelude_program(["rev", "iota"], "rev (iota 30)")
        machine = Machine(auto_gc=True, gc_threshold=50)
        value = machine.run(program)
        assert machine.to_python(value) == list(range(1, 31))
        assert machine.metrics.gc_runs >= 1
        assert machine.metrics.gc_swept > 0

    def test_gc_roots_cover_machine_closures(self):
        # a closure on the operand stack keeps its captured list alive
        program = prelude_program(
            ["const_fn", "rev", "iota"],
            "letrec keep = const_fn [7, 8, 9] in (lambda z. keep 0) (rev (iota 20))",
        )
        machine = Machine(auto_gc=True, gc_threshold=10)
        value = machine.run(program)
        assert machine.to_python(value) == [7, 8, 9]
