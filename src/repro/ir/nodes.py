"""The flat instruction stream resolved nml lowers to.

A :class:`Block` is a flat list of :class:`Instr` in evaluation order; each
instruction produces exactly one abstract value, operands are indices of
earlier instructions (explicit def–use edges), and the block's value is the
value of its ``result`` instruction (always the last one).  Source spans
and the originating AST node are preserved on every instruction so
diagnostics and value serialization keep working over lowered code.

The instruction set mirrors the abstract escape semantics (§3.4) one
construct per node:

========  ======================  ========================================
op        operands                meaning (transfer function)
========  ======================  ========================================
const     —                       literal / nil → ⊥
prim      —                       a primitive's abstract function
load      —                       read ``name`` from the environment
apply     (fn, arg)               ``fn₍₂₎(arg)``
close     —                       build ⟨⊔ free containments, closure⟩;
                                  the body is the nested ``blocks[0]``
branch    (cond, then, else)      join of both branches (cond evaluated
                                  for cost only — a bool escapes nothing)
enter     —                       a nested letrec: solve its fixpoint,
                                  then evaluate ``blocks[-1]`` (the body)
========  ======================  ========================================

Only ``close`` and ``enter`` nest blocks; ``branch`` arms are lowered
*flat* into the enclosing block because the abstract semantics evaluates
both arms unconditionally — which is exactly what lets the worklist engine
cache branch arms instruction by instruction.

Each block precomputes, per instruction, the transitive set of environment
names the instruction's value depends on (``deps``) and the forward
def–use edges (``users``).  ``deps`` is what the worklist solver intersects
with the changed-name set to decide which instructions to re-execute;
``free_names`` (= ``deps`` of the result) is the block's external
environment footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.lang.ast import Expr
    from repro.lang.errors import Span

#: The instruction opcodes, in the order the table above lists them.
OPS = ("const", "prim", "load", "apply", "close", "branch", "enter")


@dataclass
class Instr:
    """One instruction: an operator, its def–use edges, and provenance."""

    op: str
    #: Originating AST node — spans for diagnostics, the lambda body for
    #: closure construction, the letrec for nested fixpoints.
    node: "Expr"
    #: Indices of the instructions whose values this one consumes.
    operands: tuple[int, ...] = ()
    #: ``load``: the environment name read.
    name: str | None = None
    #: ``close``: the lambda's parameter.
    param: str | None = None
    #: ``close``: the free names the closure contains (joined into the
    #: containment component); ``enter``: the nested letrec's binding names.
    names: tuple[str, ...] = ()
    #: ``close``: (body,); ``enter``: one block per binding, then the body.
    blocks: tuple["Block", ...] = ()

    @property
    def span(self) -> "Span":
        return self.node.span


@dataclass(eq=False)  # identity equality: blocks are used as cache keys
class Block:
    """A flat instruction stream with one result value."""

    label: str
    instrs: list[Instr] = field(default_factory=list)
    #: Index of the instruction whose value is the block's value.
    result: int = -1
    #: Per instruction: the transitive set of environment names its value
    #: depends on (through operands and nested blocks, shadowing honoured).
    deps: list[frozenset[str]] = field(default_factory=list)
    #: Per instruction: indices of the instructions that consume its value.
    users: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def free_names(self) -> frozenset[str]:
        """The environment names this block (transitively) reads."""
        if self.result < 0:
            return frozenset()
        return self.deps[self.result]

    def __len__(self) -> int:
        return len(self.instrs)

    def size(self) -> int:
        """Instruction count including nested blocks."""
        total = len(self.instrs)
        for ins in self.instrs:
            for nested in ins.blocks:
                total += nested.size()
        return total

    def finish(self) -> "Block":
        """Seal the block: set the result and derive the ``users`` edges."""
        self.result = len(self.instrs) - 1
        users: list[list[int]] = [[] for _ in self.instrs]
        for i, ins in enumerate(self.instrs):
            for operand in ins.operands:
                users[operand].append(i)
        self.users = [tuple(u) for u in users]
        return self
