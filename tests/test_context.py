"""Trace context propagation (:mod:`repro.obs.context`): minting and
parsing W3C-style traceparent headers, the ambient thread-local context,
tracer stamping, and causal shard merging."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.obs import RingBufferSink, Tracer, activate, emit
from repro.obs.context import (
    TraceContext,
    attach,
    current,
    merge_trace_files,
    merge_traces,
)
from repro.obs.events import validate_trace


class TestTraceContext:
    def test_mint_shapes(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_id is None
        assert ctx.hop == 0

    def test_mint_is_unique(self):
        assert TraceContext.mint().trace_id != TraceContext.mint().trace_id

    def test_child_keeps_trace_bumps_hop(self):
        root = TraceContext.mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_id == root.span_id
        assert child.hop == 1
        assert child.child().hop == 2

    def test_traceparent_round_trip(self):
        ctx = TraceContext.mint()
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-abc-def-01",  # wrong lengths
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # unknown version
            "00-" + "g" * 32 + "-" + "b" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "a" * 32 + "-" + "b" * 16,  # missing flags
        ],
    )
    def test_malformed_traceparent_is_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_traceparent_is_case_insensitive(self):
        header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16

    def test_wire_round_trip(self):
        ctx = TraceContext.mint().child()
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None


class TestAmbientContext:
    def test_attach_scopes_nest_and_restore(self):
        assert current() is None
        outer = TraceContext.mint()
        inner = outer.child()
        with attach(outer):
            assert current() is outer
            with attach(inner):
                assert current() is inner
            assert current() is outer
            with attach(None):
                assert current() is None
        assert current() is None

    def test_context_is_thread_local(self):
        ready = threading.Barrier(2)
        seen = {}

        def worker(name):
            ctx = TraceContext.mint()
            with attach(ctx):
                ready.wait(timeout=5)
                seen[name] = (ctx.trace_id, current().trace_id)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for minted, observed in seen.values():
            assert minted == observed
        assert seen[0][0] != seen[1][0]

    def test_tracer_stamps_events_with_context(self):
        ring = RingBufferSink()
        ctx = TraceContext.mint().child()
        with activate(Tracer(sinks=[ring])):
            emit("store_reap", count=0)
            with attach(ctx):
                emit("store_reap", count=1)
        unstamped, stamped = ring.events
        assert "trace_id" not in unstamped
        assert stamped["trace_id"] == ctx.trace_id
        assert stamped["hop"] == 1


def _shard(ctx_events):
    """Build a schema-valid shard from (trace_id, hop, type) triples."""
    shard = []
    for seq, (trace_id, hop, etype) in enumerate(ctx_events):
        event = {"seq": seq, "ts": float(seq), "type": etype, "count": 0}
        if trace_id:
            event["trace_id"] = trace_id
            event["hop"] = hop
        shard.append(event)
    return shard


class TestMergeTraces:
    def test_causal_order_lower_hops_first(self):
        driver = _shard([("t1", 0, "store_reap"), ("t2", 0, "store_reap")])
        worker = _shard([("t1", 1, "cell_reclaim"), ("t2", 1, "cell_reclaim")])
        # Fix the worker's cell_reclaim required field.
        for event in worker:
            event["cause"] = "test"
        merged = merge_traces([driver, worker], ["driver", "worker"])
        # Traces keep first-seen order; within a trace the driver's hop-0
        # event precedes the worker's hop-1 event.
        kinds = [(e["trace_id"], e["hop"]) for e in merged]
        assert kinds == [("t1", 0), ("t1", 1), ("t2", 0), ("t2", 1)]

    def test_reseqenced_with_provenance(self):
        driver = _shard([("t1", 0, "store_reap")])
        worker = _shard([("t1", 1, "store_reap"), ("t1", 1, "store_reap")])
        merged = merge_traces([driver, worker], ["driver", "worker"])
        assert [e["seq"] for e in merged] == [0, 1, 2]
        assert [e["shard"] for e in merged] == ["driver", "worker", "worker"]
        assert [e["src_seq"] for e in merged] == [0, 0, 1]
        validate_trace(merged)

    def test_shard_order_preserved_within_hop(self):
        shard = _shard(
            [("t1", 0, "store_reap"), ("t1", 0, "store_reap"), ("t1", 0, "store_reap")]
        )
        merged = merge_traces([shard])
        assert [e["src_seq"] for e in merged] == [0, 1, 2]

    def test_labels_must_match_shards(self):
        with pytest.raises(ValueError, match="one-to-one"):
            merge_traces([[]], ["a", "b"])

    def test_merge_trace_files(self, tmp_path):
        paths = []
        for name, hop in (("driver", 0), ("worker", 1)):
            path = tmp_path / f"{name}.jsonl"
            with open(path, "w") as handle:
                for event in _shard([("t1", hop, "store_reap")]):
                    handle.write(json.dumps(event) + "\n")
            paths.append(path)
        out = tmp_path / "merged.jsonl"
        count = merge_trace_files(paths, out)
        assert count == 2
        merged = [json.loads(line) for line in out.read_text().splitlines()]
        assert [e["shard"] for e in merged] == ["driver", "worker"]


class TestTraceCli:
    def _write_shard(self, path, events):
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")

    def test_merge_then_validate(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._write_shard(a, _shard([("t1", 0, "store_reap")]))
        self._write_shard(b, _shard([("t1", 1, "store_reap")]))
        out = tmp_path / "merged.jsonl"
        assert main(["trace", "merge", str(a), str(b), "--out", str(out)]) == 0
        assert "merged 2 shard(s)" in capsys.readouterr().err
        assert main(["trace", "validate", str(out)]) == 0
        assert "2 event(s) valid" in capsys.readouterr().out

    def test_validate_invalid_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        self._write_shard(
            bad, [{"seq": 0, "ts": 0.0, "type": "not_a_real_event"}]
        )
        assert main(["trace", "validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "invalid trace" in err
        assert "event 0 (line 1)" in err

    def test_validate_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["trace", "validate", str(tmp_path / "nope.jsonl")]) == 1

    def test_merge_requires_out(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        self._write_shard(a, _shard([("t1", 0, "store_reap")]))
        assert main(["trace", "merge", str(a)]) == 1
        assert "--out" in capsys.readouterr().err
