"""``repro.obs`` — unified tracing, metrics, and profiling.

The observation layer every other subsystem emits into:

* :mod:`repro.obs.tracer` — the :class:`Tracer` (hierarchical spans, typed
  events) and the module-level ``emit`` / ``span`` / ``tracing`` API the
  instrumented modules call; **no tracer is active by default**, so every
  instrumentation point is a single ``None`` check when disabled;
* :mod:`repro.obs.events` — the typed event vocabulary and its validator;
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of labelled
  counters/gauges/histograms that subsumes the legacy counter pots;
* :mod:`repro.obs.sinks` — JSONL export, in-memory ring buffer, streaming
  metrics aggregation;
* :mod:`repro.obs.profile` — profile reports and trace *replay* (the
  Appendix A.1 iteration table and the cache accounting, recomputed from a
  trace file without re-running the analysis).

Typical use::

    from repro import obs
    from repro.obs.sinks import RingBufferSink

    ring = RingBufferSink()  # bounded: keeps the last 65 536 events
    with obs.activate(obs.Tracer(sinks=[ring])):
        EscapeAnalysis(program).global_test("append", 1)
    table = obs.profile.iteration_table(ring.events)

``RingBufferSink()`` keeps the *last* ``DEFAULT_RING_CAPACITY`` events and
an exact ``total``; pass ``capacity=None`` only when a run is known to be
short, as an unbounded buffer grows with the trace.
"""

from repro.obs import context, events, explain, flight, metrics, profile, sinks
from repro.obs.context import TraceContext, attach, current, merge_traces
from repro.obs.events import validate_event, validate_trace, validate_trace_file
from repro.obs.explain import Explanation, explain_binding, format_explanation
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JsonlSink, MetricsSink, RingBufferSink, read_trace
from repro.obs.tracer import Span, Tracer, activate, emit, span, tracing

__all__ = [
    "Tracer",
    "Span",
    "activate",
    "emit",
    "span",
    "tracing",
    "TraceContext",
    "attach",
    "current",
    "merge_traces",
    "FlightRecorder",
    "Explanation",
    "explain_binding",
    "format_explanation",
    "MetricsRegistry",
    "JsonlSink",
    "MetricsSink",
    "RingBufferSink",
    "read_trace",
    "validate_event",
    "validate_trace",
    "validate_trace_file",
    "context",
    "events",
    "explain",
    "flight",
    "metrics",
    "profile",
    "sinks",
]
