"""Deterministic fault injection for the hardened engine and runtime.

A :class:`FaultPlan` says *what* to break and *when*, by ordinal — the
``n``-th heap allocation fails, every ``k``-th interpreter safepoint forces
a full GC, the ``n``-th entry to a named stage raises — so a failing run is
exactly reproducible.  Activating a plan installs a process-local
:class:`FaultInjector`; the instrumented code calls the cheap module-level
hooks (:func:`check_alloc`, :func:`check_stage`, :func:`take_forced_gc`),
which are no-ops when no plan is active.

Stages currently instrumented:

* ``"solve"``    — entry to a letrec fixpoint solve
  (:meth:`~repro.escape.abstract.AbstractEvaluator.solve_bindings`);
* ``"query"``    — entry to one hardened-engine query attempt
  (:class:`~repro.robust.engine.HardenedAnalysis`);
* ``"plan"``, ``"reuse"``, ``"stack"``, ``"block"``, ``"validate"`` — the
  hardened optimization pipeline (:mod:`repro.robust.pipeline`);
* ``"store_load"``, ``"store_write"`` — the on-disk analysis store
  (:mod:`repro.store`): a ``store_load`` fault reads as a miss, a
  ``store_write`` fault loses the write (both are absorbed, by design);
* ``"worker"``   — entry to one supervised batch worker attempt
  (:mod:`repro.batch`), the stage the supervisor's crash/hang faults key on;
* ``"serve"``    — entry to one daemon request execution
  (:mod:`repro.serve`).

Beyond raising, a plan can *tear* a store write (``torn_write_at``: the
payload lands truncated and the temp file is orphaned, exactly the residue
of a writer killed between create and rename), *crash* a worker process
(``worker_crash_at``: ``os._exit`` mid-task, the supervisor must replace
it), and *stall* a stage (``slow_stages``: a deterministic sleep, the hung
worker the per-file timeout must reap).

Use as a context manager so a failing test cannot leak faults into the
next one::

    with faults.inject(FaultPlan(fail_alloc_at=5)):
        ...
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

from repro.lang.errors import HeapAllocationError
from repro.robust.errors import InjectedFault, Severity


@dataclass(frozen=True)
class StageFault:
    """Fail the ``at``-th entry (1-based) to stage ``stage``."""

    stage: str
    at: int = 1
    severity: Severity = Severity.DEGRADABLE
    message: str = ""


@dataclass(frozen=True)
class SlowStage:
    """Stall the ``at``-th entry (1-based) to stage ``stage`` for
    ``seconds`` — the deterministic "hung worker" / "slow disk" fault.
    With ``every`` set, every ``every``-th entry from ``at`` onward stalls.
    """

    stage: str
    at: int = 1
    seconds: float = 0.05
    every: int | None = None

    def matches(self, count: int) -> bool:
        if self.every is not None:
            return count >= self.at and (count - self.at) % self.every == 0
        return count == self.at


@dataclass(frozen=True)
class FaultPlan:
    """What to inject.  All ordinals are 1-based; ``None`` disables.

    * ``fail_alloc_at``    — the single allocation ordinal that fails;
    * ``fail_alloc_every`` — every ``n``-th allocation fails (adversarial
      sustained memory pressure);
    * ``gc_every``         — force a full collection at every ``n``-th
      interpreter safepoint, regardless of thresholds;
    * ``stage_faults``     — exceptions raised at chosen stage entries
      (the ``"store_load"`` / ``"store_write"`` stages turn these into
      failed reads/lost writes, absorbed by the store's contract);
    * ``slow_stages``      — deterministic stalls at chosen stage entries
      (a ``"worker"`` stall is the hung worker a per-file timeout reaps);
    * ``torn_write_at``    — the ``n``-th store write is torn: the entry
      lands truncated on disk and the temp file is orphaned, simulating a
      writer that died between create and rename (``torn_write_every``
      repeats it);
    * ``worker_crash_at``  — the ``n``-th supervised worker attempt dies
      hard (``os._exit`` in a worker process, an exception in-process);
    * ``unsound_reuse_at`` — the ``n``-th reuse specialization silently
      skips its escape/liveness safety gate, producing a genuinely unsound
      ``DCONS`` program — the adversarial input the static auditor
      (:mod:`repro.check.audit`) must catch without running it.
    """

    fail_alloc_at: int | None = None
    fail_alloc_every: int | None = None
    gc_every: int | None = None
    stage_faults: tuple[StageFault, ...] = field(default_factory=tuple)
    slow_stages: tuple[SlowStage, ...] = field(default_factory=tuple)
    torn_write_at: int | None = None
    torn_write_every: int | None = None
    worker_crash_at: int | None = None
    unsound_reuse_at: int | None = None


class FaultInjector:
    """The runtime counters for one active plan."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.allocs = 0
        self.safepoints = 0
        self.reuse_gates = 0
        self.store_writes = 0
        self.worker_entries = 0
        self.stage_entries: dict[str, int] = {}
        #: every fault actually fired, for test assertions
        self.fired: list[str] = []

    def on_alloc(self) -> None:
        self.allocs += 1
        plan = self.plan
        if plan.fail_alloc_at is not None and self.allocs == plan.fail_alloc_at:
            self.fired.append(f"alloc@{self.allocs}")
            raise HeapAllocationError(
                f"injected allocation failure at allocation #{self.allocs}"
            )
        if plan.fail_alloc_every is not None and self.allocs % plan.fail_alloc_every == 0:
            self.fired.append(f"alloc@{self.allocs}")
            raise HeapAllocationError(
                f"injected allocation failure at allocation #{self.allocs}"
            )

    def on_stage(self, stage: str) -> None:
        count = self.stage_entries.get(stage, 0) + 1
        self.stage_entries[stage] = count
        for slow in self.plan.slow_stages:
            if slow.stage == stage and slow.matches(count):
                self.fired.append(f"slow:{stage}@{count}")
                time.sleep(slow.seconds)
        for fault in self.plan.stage_faults:
            if fault.stage == stage and fault.at == count:
                self.fired.append(f"{stage}@{count}")
                raise InjectedFault(
                    fault.message or f"injected fault at stage {stage!r} entry #{count}",
                    stage=stage,
                    severity=fault.severity,
                )

    def take_torn_write(self) -> bool:
        """True when the current store write must land torn (truncated
        entry plus an orphaned temp file — the residue of a writer that
        died between create and rename)."""
        self.store_writes += 1
        plan = self.plan
        if plan.torn_write_at is not None and self.store_writes == plan.torn_write_at:
            self.fired.append(f"torn_write@{self.store_writes}")
            return True
        if (
            plan.torn_write_every is not None
            and self.store_writes % plan.torn_write_every == 0
        ):
            self.fired.append(f"torn_write@{self.store_writes}")
            return True
        return False

    def take_worker_crash(self) -> bool:
        """True when the current supervised worker attempt must die hard."""
        self.worker_entries += 1
        if self.plan.worker_crash_at == self.worker_entries:
            self.fired.append(f"worker_crash@{self.worker_entries}")
            return True
        return False

    def take_unsound_reuse(self) -> bool:
        """True when the current reuse specialization must skip its safety
        gate (the compiler-bug simulation the auditor exists to catch)."""
        self.reuse_gates += 1
        if self.plan.unsound_reuse_at == self.reuse_gates:
            self.fired.append(f"unsound_reuse@{self.reuse_gates}")
            return True
        return False

    def take_forced_gc(self) -> bool:
        if self.plan.gc_every is None:
            return False
        self.safepoints += 1
        if self.safepoints % self.plan.gc_every == 0:
            self.fired.append(f"gc@{self.safepoints}")
            return True
        return False


#: The active injector, if any.  Process-local by design: the engine is
#: synchronous and the harness is for tests.
_ACTIVE: FaultInjector | None = None


@contextlib.contextmanager
def inject(plan: FaultPlan):
    """Activate ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    injector = FaultInjector(plan)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def active() -> FaultInjector | None:
    return _ACTIVE


# -- hooks called from instrumented code (no-ops when inactive) -------------


def check_alloc() -> None:
    if _ACTIVE is not None:
        _ACTIVE.on_alloc()


def check_stage(stage: str) -> None:
    if _ACTIVE is not None:
        _ACTIVE.on_stage(stage)


def take_forced_gc() -> bool:
    return _ACTIVE is not None and _ACTIVE.take_forced_gc()


def take_unsound_reuse() -> bool:
    return _ACTIVE is not None and _ACTIVE.take_unsound_reuse()


def take_torn_write() -> bool:
    return _ACTIVE is not None and _ACTIVE.take_torn_write()


def take_worker_crash() -> bool:
    return _ACTIVE is not None and _ACTIVE.take_worker_crash()
