"""Abstract escape values: the domains ``D_e^τ`` of §3.4.

A value of ``D_e^τ`` is a pair ``⟨b, f⟩`` where ``b ∈ B_e`` describes how
much of the interesting object may be *contained* in the value, and ``f``
describes the value's behaviour *as a function* (``err`` for non-functions).

Under the abstraction of §3.4 the list subdomain collapses —
``D_e^{τ list} = D_e^τ`` — so a list's abstract value joins the abstract
values of all its elements, with spine bookkeeping carried by the ``B_e``
component.

``err`` ("a function weaker than all others that can never be applied") is
modelled by :class:`ErrFun`, whose application yields the bottom value; this
is exactly how the paper's fixpoint iterations treat it (``append⁽⁰⁾ x y =
⊥``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.escape.lattice import Escapement, NONE_ESCAPES


class AbsFun:
    """Base class of the function component of an abstract value."""

    def apply(self, arg: "EscapeValue") -> "EscapeValue":
        raise NotImplementedError

    def join(self, other: "AbsFun") -> "AbsFun":
        if isinstance(other, ErrFun):
            return self
        if self is other or self == other:
            return self
        left = self.funs if isinstance(self, JoinFun) else (self,)
        right = other.funs if isinstance(other, JoinFun) else (other,)
        merged = list(left)
        for fun in right:
            if not any(fun is existing or fun == existing for existing in merged):
                merged.append(fun)
        if len(merged) == 1:
            return merged[0]
        return JoinFun(tuple(merged))


class ErrFun(AbsFun):
    """``err``: the bottom function.  Applying it yields ⟨⟨0,0⟩, err⟩."""

    _instance: "ErrFun | None" = None

    def __new__(cls) -> "ErrFun":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def apply(self, arg: "EscapeValue") -> "EscapeValue":
        return BOTTOM

    def join(self, other: AbsFun) -> AbsFun:
        return other

    def __repr__(self) -> str:
        return "err"


ERR = ErrFun()


@dataclass(frozen=True)
class EscapeValue:
    """An element ``⟨b, f⟩`` of some ``D_e^τ``."""

    be: Escapement
    fn: AbsFun = ERR

    def apply(self, arg: "EscapeValue") -> "EscapeValue":
        """Use this value as a function (the ``(·)₍₂₎`` application)."""
        return self.fn.apply(arg)

    def join(self, other: "EscapeValue") -> "EscapeValue":
        return EscapeValue(self.be.join(other.be), self.fn.join(other.fn))

    def with_be(self, be: Escapement) -> "EscapeValue":
        return EscapeValue(be, self.fn)

    def __str__(self) -> str:
        suffix = "" if isinstance(self.fn, ErrFun) else f", {self.fn!r}"
        return f"<{self.be}{suffix}>"


#: ⟨⟨0,0⟩, err⟩ — the bottom abstract value (also the value of literals).
BOTTOM = EscapeValue(NONE_ESCAPES, ERR)


def join_values(values: list[EscapeValue]) -> EscapeValue:
    result = BOTTOM
    for value in values:
        result = result.join(value)
    return result


@dataclass(frozen=True, eq=False)
class PrimFun(AbsFun):
    """A primitive's abstract function, implemented by a Python callable.

    ``tag`` identifies the primitive (and any captured partial-application
    state) so structurally identical primitives compare equal.
    """

    tag: tuple
    run: Callable[[EscapeValue], EscapeValue]

    def apply(self, arg: EscapeValue) -> EscapeValue:
        return self.run(arg)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrimFun):
            return NotImplemented
        return self.tag == other.tag

    def __hash__(self) -> int:
        return hash(self.tag)

    def __repr__(self) -> str:
        return f"prim{self.tag!r}"


@dataclass(frozen=True)
class JoinFun(AbsFun):
    """Pointwise join of several abstract functions:
    ``(f ⊔ g)(x) = f(x) ⊔ g(x)``."""

    funs: tuple[AbsFun, ...]

    def apply(self, arg: EscapeValue) -> EscapeValue:
        result = BOTTOM
        for fun in self.funs:
            result = result.join(fun.apply(arg))
        return result

    def __repr__(self) -> str:
        return " ⊔ ".join(repr(fun) for fun in self.funs)


class ClosureFun(AbsFun):
    """The abstract function of a ``lambda``: evaluating the body in the
    captured abstract environment extended with the argument.

    Closures compare by identity; extensional comparison (fingerprints in
    :mod:`repro.escape.abstract`) is used wherever semantic equality is
    needed.
    """

    __slots__ = ("param", "body", "env", "evaluator")

    def __init__(self, param: str, body, env: dict, evaluator) -> None:
        self.param = param
        self.body = body
        self.env = env
        self.evaluator = evaluator

    def apply(self, arg: EscapeValue) -> EscapeValue:
        memo = getattr(self.evaluator, "memo", None)
        if memo is not None:
            key = (self, arg)
            hit = memo.get(key)
            if hit is not None:
                return hit
        extended = dict(self.env)
        extended[self.param] = arg
        result = self.evaluator.eval(self.body, extended)
        if memo is not None:
            memo[key] = result
        return result

    def __repr__(self) -> str:
        return f"closure({self.param})"
