"""Span propagation audit: every node of every resolved AST carries a real
:class:`~repro.lang.errors.SourceSpan`.

The checker's diagnostics are only as good as the spans the front end
threads through parsing, resolution and prelude expansion — a ``NO_SPAN``
node means some construction site dropped its token's location.  This test
sweeps every shipped ``.nml`` example, every prelude definition (alone and
as one combined program), and resolved inline expressions, and names the
offending node type when a span goes missing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lang.ast import walk
from repro.lang.errors import NO_SPAN
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import PRELUDE_DEFS, prelude_program, prelude_source

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.nml"))


def spanless(program) -> list[str]:
    """Human-readable descriptions of every NO_SPAN node in the program."""
    return [
        f"{type(node).__name__}({getattr(node, 'name', '')})"
        for node in walk(program.letrec)
        if node.span == NO_SPAN
    ]


class TestExampleSpans:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_every_node_has_a_span(self, path):
        program = parse_program(path.read_text())
        assert spanless(program) == []


class TestPreludeSpans:
    @pytest.mark.parametrize("name", sorted(PRELUDE_DEFS))
    def test_each_definition(self, name):
        assert spanless(prelude_program([name])) == []

    def test_whole_prelude_one_program(self):
        assert spanless(prelude_program(sorted(PRELUDE_DEFS))) == []

    def test_expanded_with_result_body(self):
        program = prelude_program(["ps"], "ps [5, 2, 7, 1, 3, 4]")
        assert spanless(program) == []


class TestConstructedSpans:
    def test_program_without_result_body(self):
        # The implicit nil body is synthesized at EOF; it must still carry
        # the EOF token's location, not NO_SPAN.
        program = parse_program("id x = x;")
        assert program.body.span != NO_SPAN
        assert spanless(program) == []

    def test_resolved_expression(self):
        expr = parse_expr("cons (car [1, 2]) (if (null nil) then nil else [3])")
        assert all(node.span != NO_SPAN for node in walk(expr))

    def test_span_formats_into_diagnostics(self):
        program = parse_program("id x = x;")
        binding = program.bindings[0]
        assert str(binding.expr.span).startswith("1:")
