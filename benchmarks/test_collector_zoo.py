"""GC1 — the collector zoo: liveness-directed reclamation vs. the baseline.

One corpus — the checked-in examples, a slice of the generated corpus, and
three crafted dead-data workloads (reachable-but-never-read bindings, the
Karkare-style case a reachability collector cannot reclaim) — executed
under every zoo member with the storage sanitizer armed and a small GC
threshold.

The acceptance gate, exported to ``BENCH_gc.json``:

* **bit-identical outputs** — every program computes the same value (or
  the same contained error) under mark-sweep, liveness-directed, and
  copying collection;
* **0 sanitizer findings** — no collector induces a use-after-free;
* **strict win** — the liveness-directed collector reclaims strictly more
  cells than mark-sweep over the corpus (or ties with strictly less mark
  work): budget-pruned spines are swept the reachability baseline must
  keep.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.heap_liveness import analyze_program
from repro.bench.tables import print_table
from repro.lang.parser import parse_program
from repro.semantics.gc import COLLECTORS
from repro.semantics.interp import Interpreter

REPO = Path(__file__).resolve().parent.parent
GC_THRESHOLD = 8
GENERATED_SLICE = 40

#: Dead-data workloads: each binds structure no use ever reads at depth,
#: so the liveness budgets prune what reachability must mark.
CRAFTED = {
    "dead-binding": (
        "junk = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];\n"
        "f l = if null l then 10 else 20;\nf junk"
    ),
    "null-only-walk": (
        "g l = if null l then 1 else 2;\n"
        "a = [1, 2, 3, 4, 5, 6];\nb = [7, 8, 9, 10, 11, 12];\n"
        "(g a) + (g b)"
    ),
    "spine-only-length": (
        "length l = if null l then 0 else 1 + length (cdr l);\n"
        "xs = [1, 2, 3, 4, 5, 6, 7, 8];\nlength xs"
    ),
}


def corpus() -> "list[tuple[str, str]]":
    files = sorted(REPO.glob("examples/*.nml"))
    files += sorted(REPO.glob("examples/generated/*.nml"))[:GENERATED_SLICE]
    entries = [(p.name, p.read_text()) for p in files]
    entries += list(CRAFTED.items())
    return entries


def run_under(program, collector: str):
    budgets = None
    if collector == "liveness":
        facts = analyze_program(program)
        budgets = None if facts.degraded else facts.budget_map()
    interp = Interpreter(
        auto_gc=True,
        gc_threshold=GC_THRESHOLD,
        sanitize=True,
        collector=collector,
        liveness=budgets,
    )
    try:
        result = repr(interp.to_python(interp.run(program)))
    except Exception as error:
        result = f"{type(error).__name__}"
    return result, interp.metrics, interp.heap.sanitizer


def test_gc1_collector_zoo(benchmark):
    entries = corpus()

    def run_corpus():
        totals = {c: {"marked": 0, "swept": 0, "runs": 0} for c in COLLECTORS}
        divergences, findings = [], 0
        per_file: dict[str, dict] = {}
        for label, source in entries:
            program = parse_program(source)
            outcomes = {}
            for collector in COLLECTORS:
                result, metrics, sanitizer = run_under(program, collector)
                outcomes[collector] = result
                findings += len(sanitizer.violations)
                totals[collector]["marked"] += metrics.gc_marked
                totals[collector]["swept"] += metrics.gc_swept
                totals[collector]["runs"] += metrics.gc_runs
            if len(set(outcomes.values())) != 1:
                divergences.append((label, outcomes))
            per_file[label] = outcomes
        return totals, divergences, findings, per_file

    totals, divergences, findings, per_file = benchmark.pedantic(
        run_corpus, rounds=1, iterations=1
    )

    # -- the acceptance gate ------------------------------------------------
    assert divergences == [], divergences  # bit-identical outputs
    assert findings == 0  # no collector induces a use-after-free
    ms, lv = totals["mark-sweep"], totals["liveness"]
    strict_win = lv["swept"] > ms["swept"] or (
        lv["swept"] == ms["swept"] and lv["marked"] < ms["marked"]
    )
    assert strict_win, (ms, lv)

    rows = [
        [name, t["runs"], t["marked"], t["swept"]]
        for name, t in totals.items()
    ]
    print_table(
        ["collector", "gc runs", "marked", "swept"],
        rows,
        title=(
            f"GC1: {len(entries)} programs, threshold {GC_THRESHOLD}, "
            "sanitizer armed"
        ),
    )

    out = REPO / "BENCH_gc.json"
    out.write_text(
        json.dumps(
            {
                "corpus_files": len(entries),
                "gc_threshold": GC_THRESHOLD,
                "totals": totals,
                "identical_outputs": not divergences,
                "sanitizer_findings": findings,
                "liveness_strict_win": strict_win,
                "extra_reclaimed_by_liveness": lv["swept"] - ms["swept"],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
