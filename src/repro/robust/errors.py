"""The structured error taxonomy of the hardened engine.

Every failure the engine can encounter is classified into one of three
severities, which fix the engine's response:

* **RETRYABLE** — transient conditions (an allocation failure, an injected
  transient fault).  The engine retries the operation a bounded number of
  times before falling through to the degradable handling.
* **DEGRADABLE** — the operation cannot complete, but a *sound* answer
  still exists: the worst-case functions ``W^τ`` (Definition 2) are valid
  for every application, so an escape query degrades to the
  ``W^τ``-derived maximal escapement and an optimization step is simply
  skipped.  Budget breaches and analysis/optimization failures land here.
* **FATAL** — no sound degradation exists (the program does not parse or
  type, so ``W^τ`` cannot even be formed) or degradation would mask a real
  defect (:class:`~repro.lang.errors.UseAfterFreeError` is the soundness
  tripwire itself and must never be swallowed).

A degradation is *recorded*, not silent: every degraded answer carries a
:class:`Degradation` with the reason, the stage that failed, the budget
spent, and the original exception.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang.errors import (
    AnalysisError,
    EvalError,
    HeapAllocationError,
    LexError,
    NmlError,
    OptimizationError,
    ParseError,
    ResolveError,
    StorageSafetyError,
    TypeInferenceError,
    UseAfterFreeError,
)


class Severity(enum.Enum):
    """How the hardened engine responds to a failure."""

    RETRYABLE = "retryable"
    DEGRADABLE = "degradable"
    FATAL = "fatal"


# -- budget breaches ---------------------------------------------------------


class BudgetExceeded(NmlError):
    """Base class of every budget breach.  Always degradable: the query
    falls back to the ``W^τ`` worst case instead of raising to the caller."""


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline of an :class:`~repro.robust.budget.AnalysisBudget`
    passed before the operation finished."""


class IterationBudgetExceeded(BudgetExceeded):
    """The fixpoint-iteration budget was exhausted before convergence."""


class WorkBudgetExceeded(BudgetExceeded):
    """The abstract-evaluation step budget was exhausted."""


# -- injected faults ---------------------------------------------------------


class InjectedFault(NmlError):
    """An exception forced by the fault-injection harness at a chosen
    stage.  Carries its own severity so tests can exercise each path."""

    def __init__(
        self,
        message: str,
        stage: str = "",
        severity: Severity = Severity.DEGRADABLE,
    ):
        super().__init__(message)
        self.stage = stage
        self.severity = severity


# -- classification ----------------------------------------------------------


def classify(error: BaseException) -> Severity:
    """Map an exception to the engine's response.

    The order matters: the soundness tripwires and the front-end errors are
    checked before the broad analysis/optimization buckets.
    """
    if isinstance(error, BudgetExceeded):
        return Severity.DEGRADABLE
    if isinstance(error, InjectedFault):
        return error.severity
    if isinstance(error, HeapAllocationError):
        return Severity.RETRYABLE
    if isinstance(error, (UseAfterFreeError, StorageSafetyError)):
        # Never mask the runtime tripwires: they signal a real soundness bug.
        return Severity.FATAL
    if isinstance(error, (LexError, ParseError, ResolveError, TypeInferenceError)):
        # Without a typed program there is no W^τ to degrade to.
        return Severity.FATAL
    if isinstance(error, (AnalysisError, OptimizationError)):
        return Severity.DEGRADABLE
    if isinstance(error, EvalError):
        return Severity.FATAL
    return Severity.FATAL


# -- degradation records -----------------------------------------------------


@dataclass(frozen=True)
class BudgetSpent:
    """What a query had consumed when it finished (or was cut off)."""

    wall_seconds: float = 0.0
    eval_steps: int = 0
    iterations: int = 0

    def __str__(self) -> str:
        return (
            f"{self.wall_seconds * 1000:.1f}ms, {self.eval_steps} eval step(s), "
            f"{self.iterations} fixpoint iteration(s)"
        )


@dataclass(frozen=True)
class Degradation:
    """One recorded degradation: why, where, and at what cost.

    ``reason`` is a stable machine-readable tag (``"deadline-exceeded"``,
    ``"iteration-budget-exceeded"``, ``"work-budget-exceeded"``,
    ``"analysis-failed"``, ``"optimization-skipped"``, ``"injected-fault"``,
    ``"allocation-failed"``, ``"validation-failed"``); ``stage`` names the
    engine stage that was cut short; ``error`` preserves the original
    exception for post-mortems.
    """

    reason: str
    stage: str
    message: str = ""
    spent: BudgetSpent = field(default_factory=BudgetSpent)
    error: BaseException | None = None

    def __str__(self) -> str:
        text = f"degraded [{self.reason}] at {self.stage}"
        if self.message:
            text += f": {self.message}"
        return f"{text} (spent {self.spent})"


def reason_for(error: BaseException) -> str:
    """The stable degradation tag for an exception."""
    if isinstance(error, DeadlineExceeded):
        return "deadline-exceeded"
    if isinstance(error, IterationBudgetExceeded):
        return "iteration-budget-exceeded"
    if isinstance(error, WorkBudgetExceeded):
        return "work-budget-exceeded"
    if isinstance(error, InjectedFault):
        return "injected-fault"
    if isinstance(error, HeapAllocationError):
        return "allocation-failed"
    if isinstance(error, OptimizationError):
        return "optimization-skipped"
    return "analysis-failed"
