"""Differential tests: every prelude function against a Python reference,
on fixed and hypothesis-generated inputs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workloads import literal
from repro.lang.prelude import prelude_program
from repro.semantics.interp import Interpreter

ints = st.integers(min_value=-99, max_value=99)
int_lists = st.lists(ints, max_size=10)


def run(names, expr):
    interp = Interpreter()
    return interp.to_python(interp.eval_in(prelude_program(names), expr))


class TestFixedCases:
    @pytest.mark.parametrize(
        "names,expr,expected",
        [
            (["append"], "append [1, 2] [3]", [1, 2, 3]),
            (["append"], "append nil [1]", [1]),
            (["append"], "append [1] nil", [1]),
            (["rev"], "rev [1, 2, 3]", [3, 2, 1]),
            (["rev"], "rev nil", []),
            (["length"], "length [1, 2, 3, 4]", 4),
            (["sum"], "sum [1, 2, 3]", 6),
            (["last"], "last [1, 2, 3]", 3),
            (["member"], "member 2 [1, 2]", True),
            (["member"], "member 9 [1, 2]", False),
            (["take"], "take 2 [1, 2, 3]", [1, 2]),
            (["take"], "take 9 [1, 2]", [1, 2]),
            (["drop"], "drop 2 [1, 2, 3]", [3]),
            (["drop"], "drop 9 [1, 2]", []),
            (["filter"], "filter (lambda x. x > 1) [0, 1, 2, 3]", [2, 3]),
            (["foldr"], "foldr (+) 0 [1, 2, 3]", 6),
            (["foldl"], "foldl (-) 10 [1, 2]", 7),
            (["rev_acc"], "rev_acc [1, 2] [9]", [2, 1, 9]),
            (["concat"], "concat [[1], [2, 3], []]", [1, 2, 3]),
            (["replicate"], "replicate 3 7", [7, 7, 7]),
            (["iota"], "iota 4", [4, 3, 2, 1]),
            (["copy"], "copy [1, 2]", [1, 2]),
            (["insert"], "insert 2 [1, 3]", [1, 2, 3]),
            (["isort"], "isort [3, 1, 2]", [1, 2, 3]),
            (["interleave"], "interleave [1, 3] [2, 4]", [1, 2, 3, 4]),
            (["nth"], "nth 1 [10, 20, 30]", 20),
            (["snoc"], "snoc [1, 2] 3", [1, 2, 3]),
            (["heads"], "heads [[1, 2], [3]]", [1, 3]),
            (["tails_tops"], "tails_tops [[1, 2], [3]]", [[2], []]),
            (["map"], "map (lambda x. x * 2) [1, 2]", [2, 4]),
            (["pair"], "pair [3, 4]", 7),
            (["pair"], "pair nil", 0),
            (["compose"], "compose (lambda x. x + 1) (lambda x. x * 2) 5", 11),
            (["twice"], "twice (lambda x. x + 3) 1", 7),
            (["id_fn"], "id_fn 9", 9),
            (["const_fn"], "const_fn 1 2", 1),
            (["create_list"], "create_list 3", [3, 2, 1]),
            (["ps"], "ps [3, 1, 2]", [1, 2, 3]),
            (["split"], "split 2 [3, 1, 0, 5] nil nil", [[0, 1], [5, 3]]),
        ],
    )
    def test_case(self, names, expr, expected):
        assert run(names, expr) == expected


class TestRandomized:
    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists, ys=int_lists)
    def test_append(self, xs, ys):
        assert run(["append"], f"append {literal(xs)} {literal(ys)}") == xs + ys

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists)
    def test_rev(self, xs):
        assert run(["rev"], f"rev {literal(xs)}") == list(reversed(xs))

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists)
    def test_ps_sorts(self, xs):
        assert run(["ps"], f"ps {literal(xs)}") == sorted(xs)

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists)
    def test_isort_sorts(self, xs):
        assert run(["isort"], f"isort {literal(xs)}") == sorted(xs)

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists, n=st.integers(min_value=0, max_value=12))
    def test_take_drop_partition(self, xs, n):
        taken = run(["take"], f"take {n} {literal(xs)}")
        dropped = run(["drop"], f"drop {n} {literal(xs)}")
        assert taken + dropped == xs

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists)
    def test_length(self, xs):
        assert run(["length"], f"length {literal(xs)}") == len(xs)

    @settings(max_examples=25, deadline=None)
    @given(xs=int_lists)
    def test_sum(self, xs):
        assert run(["sum"], f"sum {literal(xs)}") == sum(xs)

    @settings(max_examples=20, deadline=None)
    @given(xss=st.lists(int_lists, max_size=5))
    def test_concat(self, xss):
        expected = [x for xs in xss for x in xs]
        assert run(["concat"], f"concat {literal(xss)}") == expected

    @settings(max_examples=20, deadline=None)
    @given(xs=int_lists)
    def test_rev_is_involution(self, xs):
        assert run(["rev"], f"rev (rev {literal(xs)})") == xs
