"""Minimal fixed-width table rendering for the benchmark harness output.

The benches print paper-style tables (the Appendix A.1 global escape table,
allocation-count comparisons, ...) to stdout so ``pytest benchmarks/ -s``
reproduces the paper's presentation alongside the timing numbers.
"""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: list[str]) -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def print_table(headers: list[str], rows: list[list[object]], title: str = "") -> None:
    print()
    print(render_table(headers, rows, title))
