"""Compiler from nml ASTs to abstract-machine code.

The translation is the obvious one; the interesting cases are the storage
annotations: an expression annotated with a region compiles to
``RegionOpen … RegionClose`` around its code, and ``cons`` sites keep their
:class:`~repro.lang.ast.Prim` node so the machine's allocator can honour
``alloc = "region"`` hints exactly as the interpreter does.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
)
from repro.lang.errors import EvalError
from repro.machine.instructions import (
    Apply,
    Branch,
    Code,
    EnvRestore,
    Instr,
    LetrecEnter,
    Load,
    MakeClosure,
    PushBool,
    PushInt,
    PushNil,
    PushPrim,
    RegionClose,
    RegionOpen,
    Store,
)


def compile_expr(expr: Expr) -> Code:
    """Compile one expression to a code block."""
    instrs: list[Instr] = []
    _compile(expr, instrs)
    return tuple(instrs)


def compile_program(program: Program) -> Code:
    """Compile a whole program (its top-level letrec)."""
    return compile_expr(program.letrec)


def _compile(expr: Expr, out: list[Instr]) -> None:
    region = expr.annotations.get("region")
    if region is not None:
        out.append(RegionOpen(kind=region.get("kind", "block"), label=region.get("label", "")))
        _compile_core(expr, out)
        out.append(RegionClose())
        return
    _compile_core(expr, out)


def _compile_core(expr: Expr, out: list[Instr]) -> None:
    if isinstance(expr, IntLit):
        out.append(PushInt(expr.value))
        return
    if isinstance(expr, BoolLit):
        out.append(PushBool(expr.value))
        return
    if isinstance(expr, NilLit):
        out.append(PushNil())
        return
    if isinstance(expr, Prim):
        out.append(PushPrim(expr))
        return
    if isinstance(expr, Var):
        out.append(Load(expr.name))
        return
    if isinstance(expr, Lambda):
        out.append(MakeClosure(param=expr.param, body=compile_expr(expr.body)))
        return
    if isinstance(expr, App):
        _compile(expr.fn, out)
        _compile(expr.arg, out)
        out.append(Apply())
        return
    if isinstance(expr, If):
        _compile(expr.cond, out)
        out.append(
            Branch(
                then_code=compile_expr(expr.then),
                else_code=compile_expr(expr.otherwise),
            )
        )
        return
    if isinstance(expr, Letrec):
        out.append(LetrecEnter(expr.binding_names()))
        for binding in expr.bindings:
            if isinstance(binding.expr, Lambda):
                out.append(
                    MakeClosure(
                        param=binding.expr.param,
                        body=compile_expr(binding.expr.body),
                        name=binding.name,
                    )
                )
            else:
                _compile(binding.expr, out)
            out.append(Store(binding.name))
        _compile(expr.body, out)
        out.append(EnvRestore())
        return
    raise EvalError(f"cannot compile {type(expr).__name__}", expr.span)
