"""A2 — Appendix A.2: sharing information from escape analysis.

The paper's facts: the top spine of (PS e) is unshared for any one-spine e,
and the top spine of (SPLIT e1 e2 e3 e4) is unshared for any arguments.
Both are Theorem 2 clause 2; the bench also validates them against the
measured heap.
"""

from repro.analysis.sharing import (
    observed_unshared_spines,
    sharing_global,
    sharing_local,
)
from repro.bench.tables import print_table
from repro.bench.workloads import random_int_list
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import paper_partition_sort


def test_a2_sharing_facts(benchmark):
    program = paper_partition_sort()

    def facts():
        analysis = EscapeAnalysis(program)
        return {
            name: sharing_global(analysis, name)
            for name in ("ps", "split", "append")
        }

    infos = benchmark(facts)
    # The paper's two facts:
    assert infos["ps"].unshared_top_spines == 1
    assert infos["split"].unshared_top_spines == 1
    # append promises nothing (its second argument escapes fully):
    assert infos["append"].unshared_top_spines == 0

    print_table(
        ["function", "d_f", "esc_i", "unshared top spines"],
        [
            [name, info.result_spines, list(info.escaping), info.unshared_top_spines]
            for name, info in infos.items()
        ],
        title="Appendix A.2 sharing facts (Theorem 2, clause 2)",
    )


def test_a2_clause1_improves_with_unshared_args(benchmark):
    program = paper_partition_sort()
    analysis = EscapeAnalysis(program)

    def both():
        return (
            sharing_local(analysis, "append", [1, 1]).unshared_top_spines,
            sharing_global(analysis, "append").unshared_top_spines,
        )

    with_u, without_u = benchmark(both)
    assert with_u == 1 and without_u == 0  # clause 1 strictly refines clause 2


def test_a2_measured_validation(benchmark):
    program = paper_partition_sort()
    values = random_int_list(40, seed=11)

    measured = benchmark(observed_unshared_spines, program, "ps", [values])
    analysis = EscapeAnalysis(program)
    predicted = sharing_global(analysis, "ps").unshared_top_spines
    assert measured >= predicted

    split_measured = observed_unshared_spines(program, "split", [50, values, [], []])
    split_predicted = sharing_global(analysis, "split").unshared_top_spines
    assert split_measured >= split_predicted

    print_table(
        ["call", "Theorem 2 lower bound", "measured unshared spines"],
        [
            ["ps <random 40>", predicted, measured],
            ["split 50 <random 40> nil nil", split_predicted, split_measured],
        ],
        title="Theorem 2 vs the instrumented heap",
    )
