"""Trace sinks: where the tracer's events go.

* :class:`JsonlSink` — one JSON object per line, the interchange format
  (``repro trace``, ``--trace FILE``); readable back with
  :func:`read_trace` and replayable by :mod:`repro.obs.profile` without
  re-running the analysis;
* :class:`RingBufferSink` — an in-memory buffer for tests and for
  ``--profile`` (which needs the events after the command); bounded by
  default (:data:`DEFAULT_RING_CAPACITY`), keeping the *last* events and
  an exact ``total``;
* :class:`MetricsSink` — aggregates the stream into a
  :class:`~repro.obs.metrics.MetricsRegistry` as it flows, bounded memory
  regardless of trace length (the benchmark exporter uses this).

A sink is anything with ``write(event: dict)``; ``close()`` is optional.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable

from repro.obs.metrics import MetricsRegistry


class JsonlSink:
    """Writes each event as one JSON line to a stream.

    Lines are flushed every ``flush_every`` events (default: every line),
    so a crash mid-run loses at most ``flush_every - 1`` trailing events
    instead of everything since the last stdio buffer spill — a trace's
    tail is exactly the part a post-mortem needs.
    """

    def __init__(
        self, stream: IO[str], close_stream: bool = False, flush_every: int = 1
    ):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.stream = stream
        self.flush_every = flush_every
        self._close_stream = close_stream
        self._since_flush = 0

    @classmethod
    def open(cls, path: "str | Path", flush_every: int = 1) -> "JsonlSink":
        return cls(open(path, "w", encoding="utf-8"), close_stream=True, flush_every=flush_every)

    def write(self, event: dict) -> None:
        self.stream.write(json.dumps(event, separators=(",", ":"), default=str))
        self.stream.write("\n")
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self.stream.flush()
            self._since_flush = 0

    def close(self) -> None:
        self.stream.flush()
        self._since_flush = 0
        if self._close_stream:
            self.stream.close()


#: Default RingBufferSink bound: generous enough for any single CLI run's
#: profile, small enough that a long-lived traced process cannot grow
#: without limit.  ``total`` stays exact past the bound, so truncation is
#: always detectable (``total > len(events)``).
DEFAULT_RING_CAPACITY = 65_536

_UNBOUNDED = object()


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory.

    The default is :data:`DEFAULT_RING_CAPACITY`, not unlimited — the
    no-argument form used by the CLI/`observe` paths must not grow memory
    without bound on long runs.  Pass ``capacity=None`` explicitly to keep
    every event.
    """

    def __init__(self, capacity: "int | None" = _UNBOUNDED):  # type: ignore[assignment]
        if capacity is _UNBOUNDED:
            capacity = DEFAULT_RING_CAPACITY
        self.capacity = capacity
        self._events: "deque[dict] | list[dict]" = (
            deque(maxlen=capacity) if capacity is not None else []
        )
        self.total = 0

    def write(self, event: dict) -> None:
        self._events.append(event)
        self.total += 1

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.total = 0


class MetricsSink:
    """Folds the event stream into labelled counters as it flows.

    The mapping is the event vocabulary's natural aggregation: cell events
    count by placement kind, solves and SCC solves by cache outcome, escape
    tests by query kind, degradations by reason, query stats into the
    ``session.*`` namespace, span durations into per-name histograms.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()

    def write(self, event: dict) -> None:
        reg = self.registry
        etype = event["type"]
        if etype == "cell_alloc":
            reg.inc("cells_allocated", kind=event["kind"])
        elif etype == "cell_reuse":
            reg.inc("cells_reused")
        elif etype == "cell_reclaim":
            reg.inc("cells_reclaimed", event["count"], cause=event["cause"])
        elif etype == "region_push":
            reg.inc("regions_opened", kind=event["kind"])
        elif etype == "gc_run":
            reg.inc("gc.runs")
            reg.inc("gc.marked", event["marked"])
            reg.inc("gc.swept", event["swept"])
        elif etype == "solve":
            reg.inc("solves", cache=event["cache"])
        elif etype == "scc_solve_finish":
            reg.inc("scc_solves", cache=event["cache"])
            reg.inc("fixpoint_iterations", event["iterations"])
        elif etype == "escape_test":
            reg.inc("escape_tests", kind=event["kind"])
        elif etype == "query_stats":
            reg.inc("session.queries")
            for name in (
                "solve_hits",
                "solve_misses",
                "scc_hits",
                "scc_misses",
                "iterations",
                "eval_steps",
            ):
                reg.inc(f"session.{name}", event[name])
            for name in ("store_hits", "store_misses", "store_writes"):
                # Optional: pre-store traces don't carry these.
                reg.inc(f"session.{name}", event.get(name, 0))
        elif etype == "store_hit":
            reg.inc("store.reads", outcome="hit")
        elif etype == "store_miss":
            reg.inc("store.reads", outcome="miss")
        elif etype == "store_write":
            reg.inc("store.writes")
        elif etype == "budget_charge":
            reg.observe("budget.wall_s", event["wall_s"])
            reg.inc("budget.eval_steps", event["eval_steps"])
            reg.inc("budget.iterations", event["iterations"])
        elif etype == "degradation":
            reg.inc("degradations", reason=event["reason"])
        elif etype == "decision":
            reg.inc("decisions", kind=event["kind"])
        elif etype == "transform_applied":
            reg.inc("transforms", outcome="applied", kind=event["kind"])
        elif etype == "transform_skipped":
            reg.inc("transforms", outcome="skipped", kind=event["kind"])
        elif etype == "span_end":
            reg.observe("span_s", event["dur_s"], name=event["name"])


def read_trace(source: "str | Path | IO[str]") -> list[dict]:
    """Load a JSONL trace back into a list of event dicts."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as stream:
            return [json.loads(line) for line in stream if line.strip()]
    return [json.loads(line) for line in source if line.strip()]


def replay(events: Iterable[dict], *sinks) -> None:
    """Push recorded events through sinks (e.g. a fresh MetricsSink)."""
    for event in events:
        for sink in sinks:
            sink.write(event)
