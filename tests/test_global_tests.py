"""Global escape test results.

``TestPaperTable`` pins the exact Appendix A.1 values; ``TestPreludeGolden``
pins a broad golden table over the prelude so any regression in the
analysis is caught function by function.
"""

import pytest

from repro.escape.analyzer import EscapeAnalysis
from repro.lang.errors import AnalysisError
from repro.lang.prelude import prelude_program
from repro.types.types import INT, TFun, TList, list_of


class TestPaperTable:
    """The table computed in Appendix A.1 of the paper."""

    @pytest.mark.parametrize(
        "function,i,expected",
        [
            ("append", 1, "<1,0>"),
            ("append", 2, "<1,1>"),
            ("split", 1, "<0,0>"),
            ("split", 2, "<1,0>"),
            ("split", 3, "<1,1>"),
            ("split", 4, "<1,1>"),
            ("ps", 1, "<1,0>"),
        ],
    )
    def test_global_value(self, ps_analysis, function, i, expected):
        assert str(ps_analysis.global_test(function, i).result) == expected

    def test_append_conclusion_sentences(self, ps_analysis):
        # "APPEND returns all of its second argument y, and all but the top
        # spine of the first argument x."
        r1 = ps_analysis.global_test("append", 1)
        assert r1.non_escaping_spines == 1
        r2 = ps_analysis.global_test("append", 2)
        assert r2.non_escaping_spines == 0 and r2.escaping_spines == 1

    def test_ps_conclusion(self, ps_analysis):
        # "PS returns all but the top spine of its argument x."
        r = ps_analysis.global_test("ps", 1)
        assert r.param_spines == 1 and r.non_escaping_spines == 1

    def test_split_p_never_escapes(self, ps_analysis):
        assert ps_analysis.global_test("split", 1).nothing_escapes

    def test_fixpoints_converge_quickly(self, ps_analysis):
        ps_analysis.solve(None)
        for trace in ps_analysis.last_solved.traces:
            assert trace.converged and not trace.widened
            assert trace.iterations <= 4


#: Golden values over the whole prelude (simplest instances).
PRELUDE_GOLDEN = [
    ("append", ["<1,0>", "<1,1>"]),
    ("compose", ["<0,0>", "<0,0>", "<1,0>"]),
    ("concat", ["<1,0>"]),
    ("const_fn", ["<1,0>", "<0,0>"]),
    ("copy", ["<1,0>"]),
    ("create_list", ["<1,0>"]),
    ("drop", ["<0,0>", "<1,1>"]),
    ("filter", ["<0,0>", "<1,0>"]),
    ("foldl", ["<0,0>", "<1,0>", "<1,0>"]),
    ("foldr", ["<0,0>", "<1,0>", "<1,0>"]),
    ("heads", ["<1,0>"]),
    ("id_fn", ["<1,0>"]),
    ("insert", ["<1,0>", "<1,1>"]),
    ("interleave", ["<1,1>", "<1,1>"]),
    ("iota", ["<1,0>"]),
    ("isort", ["<1,0>"]),
    ("last", ["<1,0>"]),
    ("length", ["<0,0>"]),
    ("map", ["<0,0>", "<1,0>"]),
    ("member", ["<0,0>", "<0,0>"]),
    ("nth", ["<0,0>", "<1,0>"]),
    ("pair", ["<0,0>"]),
    ("ps", ["<1,0>"]),
    ("replicate", ["<0,0>", "<1,0>"]),
    ("rev", ["<1,0>"]),
    ("rev_acc", ["<1,0>", "<1,1>"]),
    ("snoc", ["<1,0>", "<1,0>"]),
    ("split", ["<0,0>", "<1,0>", "<1,1>", "<1,1>"]),
    ("sum", ["<0,0>"]),
    ("tails_tops", ["<1,1>"]),
    ("take", ["<0,0>", "<1,0>"]),
    ("twice", ["<0,0>", "<1,0>"]),
]


class TestPreludeGolden:
    @pytest.mark.parametrize("function,expected", PRELUDE_GOLDEN, ids=lambda v: v if isinstance(v, str) else "")
    def test_golden(self, function, expected):
        analysis = EscapeAnalysis(prelude_program([function]))
        rows = analysis.global_all(function)
        assert [str(r.result) for r in rows] == expected

    def test_interpretations_make_sense(self):
        # take's list argument never donates spine cells; drop's always does.
        take = EscapeAnalysis(prelude_program(["take"])).global_test("take", 2)
        drop = EscapeAnalysis(prelude_program(["drop"])).global_test("drop", 2)
        assert take.non_escaping_spines == 1
        assert drop.non_escaping_spines == 0


class TestInstances:
    def test_append_at_two_spines(self):
        analysis = EscapeAnalysis(prelude_program(["append"]))
        instance = TFun(list_of(INT, 2), TFun(list_of(INT, 2), list_of(INT, 2)))
        r1 = analysis.global_test("append", 1, instance=instance)
        # bottom 1 of 2 spines escape: still exactly one non-escaping spine
        assert str(r1.result) == "<1,1>"
        assert r1.non_escaping_spines == 1

    def test_map_elements_escape_with_worst_function(self):
        analysis = EscapeAnalysis(prelude_program(["map"]))
        r = analysis.global_test("map", 2)
        assert str(r.result) == "<1,0>"  # spine survives; elements may escape


class TestErrors:
    def test_unknown_function(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.global_test("nonexistent", 1)

    def test_index_out_of_range(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.global_test("ps", 2)

    def test_zero_index(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.global_test("ps", 0)

    def test_non_function_binding(self):
        from repro.lang.parser import parse_program

        analysis = EscapeAnalysis(parse_program("x = 1; x"))
        with pytest.raises(AnalysisError):
            analysis.global_all("x")

    def test_too_many_args_requested(self, ps_analysis):
        with pytest.raises(AnalysisError):
            ps_analysis.global_test("append", 1, n_args=3)
