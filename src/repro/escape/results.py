"""Result types shared by the global and local escape tests (§4), and the
:class:`EscapeResults` protocol every analysis consumer goes through."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.escape.lattice import Escapement
from repro.types.types import Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.lang.ast import Expr
    from repro.query import SessionStats, SolvedProgram


@dataclass(frozen=True)
class EscapeTestResult:
    """The outcome of one escape test for one parameter position.

    ``result`` is the paper's ``G(f, i, env_e)`` (or ``L(...)``) value:

    * ``⟨0,0⟩`` — no part of the ``i``-th argument escapes;
    * ``⟨1,k⟩`` with ``param_spines ≥ 1`` — the top ``param_spines − k``
      spines never escape; the bottom ``k`` spines may;
    * ``⟨1,0⟩`` with ``param_spines = 0`` — the (non-list) argument may
      escape.
    """

    function: str
    param_index: int  # 1-based, as in the paper
    param_spines: int  # s_i
    param_type: Type
    result: Escapement
    kind: str  # "global" or "local"

    @property
    def nothing_escapes(self) -> bool:
        return self.result.is_none

    @property
    def escaping_spines(self) -> int:
        """``esc_i``: how many bottom spines may escape (0 when nothing
        does).  For non-list parameters this is 0 even when the whole
        object may escape — check :attr:`nothing_escapes` instead."""
        return self.result.spines if self.result.escapes else 0

    @property
    def non_escaping_spines(self) -> int:
        """The top ``s_i − k`` spines that provably do not escape — the
        polymorphically invariant quantity of Theorem 1, and the prefix the
        optimizations may stack-allocate or reuse."""
        if self.result.is_none:
            return self.param_spines
        return self.param_spines - self.result.spines

    def describe(self) -> str:
        """A paper-style sentence summarizing the conclusion (§4.1)."""
        where = (
            "in any possible application" if self.kind == "global" else "in this call"
        )
        subject = f"parameter {self.param_index} of {self.function}"
        if self.result.is_none:
            return f"none of {subject} escapes {where}"
        if self.param_spines == 0:
            return f"{subject} (not a list) could escape {where}"
        top = self.non_escaping_spines
        bottom = self.result.spines
        if top == 0:
            return f"all {bottom} spine(s) of {subject} could escape {where}"
        return (
            f"the top {top} spine(s) of {subject} do not escape {where}; "
            f"the bottom {bottom} spine(s) could escape"
        )

    def __str__(self) -> str:
        return f"{self.kind[0].upper()}({self.function}, {self.param_index}) = {self.result}"


@runtime_checkable
class EscapeResults(Protocol):
    """What a consumer of the escape analysis may depend on.

    The optimizations (:mod:`repro.opt`), the static checker
    (:mod:`repro.check`), and the sharing analysis
    (:mod:`repro.analysis.sharing`) all take their facts through this
    surface, never through engine internals — which is what lets the
    legacy and worklist fixpoint engines stay interchangeable behind
    :class:`~repro.escape.analyzer.EscapeAnalysis`.
    """

    #: Which fixpoint engine answers queries ("legacy" or "worklist").
    engine: str

    def solve(self, pins: "dict[str, Type] | None" = None) -> "SolvedProgram": ...

    def global_test(
        self,
        function: str,
        i: int,
        instance: "Type | None" = None,
        n_args: "int | None" = None,
    ) -> EscapeTestResult: ...

    def global_all(
        self,
        function: str,
        instance: "Type | None" = None,
        n_args: "int | None" = None,
    ) -> "list[EscapeTestResult]": ...

    def local_test(self, call: "Expr | str", i: "int | None" = None): ...

    def binding_type(
        self, name: str, solved: "SolvedProgram | None" = None
    ) -> Type: ...

    def escaping_spines(self, function: str) -> "list[int]": ...

    def arg_spine_counts(self, function: str) -> "list[int]": ...

    @property
    def stats(self) -> "SessionStats": ...
