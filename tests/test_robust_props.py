"""Property tests for the hardened engine: over *generated* well-typed
programs and arbitrary budgets, a budget-degraded answer is always ⊒ the
unbudgeted exact answer in ``B_e`` — the engine never under-reports
escapement, no matter where the budget cuts the analysis off.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.escape.analyzer import EscapeAnalysis
from repro.robust.budget import AnalysisBudget
from repro.robust.engine import HardenedAnalysis

from .strategies import analysis_budget, list_function_program


@settings(max_examples=40, deadline=None)
@given(case=list_function_program(), budget=analysis_budget())
def test_budgeted_answers_dominate_exact(case, budget):
    program, _ = case
    exact = EscapeAnalysis(program).global_all("f")
    robust = HardenedAnalysis(program, budget=budget).global_all("f")
    assert len(robust) == len(exact)
    for e, r in zip(exact, robust):
        assert e.result.leq(r.result.result), (
            f"degraded answer {r.result.result} under budget [{budget}] "
            f"dropped below the exact {e.result}"
        )
        if r.degraded:
            assert r.degradation.reason
            assert r.degradation.error is not None


@settings(max_examples=25, deadline=None)
@given(case=list_function_program())
def test_unlimited_budget_is_exact(case):
    program, _ = case
    exact = EscapeAnalysis(program).global_all("f")
    robust = HardenedAnalysis(program, budget=AnalysisBudget()).global_all("f")
    for e, r in zip(exact, robust):
        assert r.exact
        assert e.result == r.result.result
