"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

* ``run``      — evaluate a program, print its result and storage metrics
* ``report``   — the full paper-style analysis report (A.1 + A.2)
* ``analyze``  — global escape tests for one function (or a local test)
* ``observe``  — ground-truth escapement of one call on the instrumented heap
* ``spines``   — the Figure 1 spine decomposition of a list literal
* ``optimize`` — apply an optimization and show the transformed program

Programs are read from a file path or, with ``-e``, from the argument
itself.  Observer arguments are Python literals (``'[1, 2, 3]'``) or nml
source prefixed with ``@`` for function arguments (``@pair``).
"""

from __future__ import annotations

import argparse
import ast as python_ast
import sys
from pathlib import Path

from repro.analysis.sharing import sharing_global
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import Source, observe_escape
from repro.escape.report import analysis_report
from repro.lang.ast import Program
from repro.lang.errors import NmlError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.semantics.interp import Interpreter


def _load_program(args: argparse.Namespace) -> Program:
    if args.expr:
        return parse_program(args.program)
    return parse_program(Path(args.program).read_text())


def _add_program_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="path to an nml file (or source with -e)")
    parser.add_argument(
        "-e", "--expr", action="store_true", help="treat PROGRAM as source text"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args)
    if args.machine:
        from repro.machine.machine import Machine

        runtime = Machine(auto_gc=args.gc, gc_threshold=args.gc_threshold)
    else:
        runtime = Interpreter(auto_gc=args.gc, gc_threshold=args.gc_threshold)
    value = runtime.run(program)
    print(runtime.to_python(value))
    if args.metrics:
        for key, count in runtime.metrics.snapshot().items():
            if count:
                print(f"  {key}: {count}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(analysis_report(_load_program(args)), end="")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    program = _load_program(args)
    analysis = EscapeAnalysis(program)
    if args.local:
        results = analysis.local_test(args.local)
        for result in results:
            print(f"{result}  —  {result.describe()}")
        return 0
    names = [args.function] if args.function else list(program.binding_names())
    for name in names:
        try:
            results = analysis.global_all(name)
        except NmlError as error:
            print(f"{name}: {error.message}")
            continue
        for result in results:
            print(f"{result}  —  {result.describe()}")
        if args.sharing:
            try:
                print(f"  {sharing_global(analysis, name).describe()}")
            except NmlError:
                pass
    return 0


def _parse_observer_arg(text: str):
    if text.startswith("@"):
        return Source(text[1:])
    return python_ast.literal_eval(text)


def _cmd_observe(args: argparse.Namespace) -> int:
    program = _load_program(args)
    call_args = [_parse_observer_arg(a) for a in args.args]
    observed = observe_escape(program, args.function, call_args, args.index)
    print(f"observed escapement: {observed.as_escapement()}")
    if observed.escaped:
        levels = ", ".join(str(l) for l in sorted(observed.escaped_levels))
        print(f"  spine level(s) {levels} reached the result")
    else:
        print("  no cell of the argument is reachable from the result")
    return 0


def _cmd_spines(args: argparse.Namespace) -> int:
    from repro.bench.figures import spine_figure

    print(spine_figure(python_ast.literal_eval(args.list)))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program(args)
    if args.reuse:
        from repro.opt.reuse import make_reuse_specialization

        function, _, index = args.reuse.partition(":")
        result = make_reuse_specialization(program, function, int(index or "1"))
        print(
            f"-- reuse: {result.new_name} recycles parameter "
            f"{result.param_index} ({result.rewritten_sites} DCONS site(s))"
        )
        program = result.program
    if args.stack:
        from repro.opt.stack_alloc import stack_allocate_body

        result = stack_allocate_body(program)
        print(f"-- stack: {result.annotated_sites} cons site(s) moved to the activation")
        program = result.program
    if args.block:
        from repro.opt.block_alloc import block_allocate_producer

        result = block_allocate_producer(program, args.block)
        print(
            f"-- block: {result.new_name} allocates {result.annotated_sites} "
            "site(s) into a block freed when the consumer returns"
        )
        program = result.program
    print(pretty_program(program), end="")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.machine.compiler import compile_program
    from repro.machine.instructions import disassemble

    program = _load_program(args)
    print(disassemble(compile_program(program)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Escape Analysis on Lists (Park & Goldberg, PLDI 1992)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="evaluate a program")
    _add_program_arg(run_parser)
    run_parser.add_argument("--metrics", action="store_true", help="print storage counters")
    run_parser.add_argument("--gc", action="store_true", help="enable the mark-sweep GC")
    run_parser.add_argument("--gc-threshold", type=int, default=10_000)
    run_parser.add_argument(
        "--machine", action="store_true", help="run on the compiled abstract machine"
    )
    run_parser.set_defaults(handler=_cmd_run)

    report_parser = commands.add_parser("report", help="full analysis report")
    _add_program_arg(report_parser)
    report_parser.set_defaults(handler=_cmd_report)

    analyze_parser = commands.add_parser("analyze", help="escape tests")
    _add_program_arg(analyze_parser)
    analyze_parser.add_argument("--function", help="only this top-level function")
    analyze_parser.add_argument("--local", help="a call expression for the local test")
    analyze_parser.add_argument("--sharing", action="store_true", help="add Theorem 2 facts")
    analyze_parser.set_defaults(handler=_cmd_analyze)

    observe_parser = commands.add_parser("observe", help="ground-truth escapement")
    _add_program_arg(observe_parser)
    observe_parser.add_argument("function")
    observe_parser.add_argument("args", nargs="+", help="Python literals; @src for nml")
    observe_parser.add_argument("--index", "-i", type=int, default=1)
    observe_parser.set_defaults(handler=_cmd_observe)

    spines_parser = commands.add_parser("spines", help="Figure 1 for a list literal")
    spines_parser.add_argument("list", help="a Python list literal, e.g. '[[1,2],[3]]'")
    spines_parser.set_defaults(handler=_cmd_spines)

    disasm_parser = commands.add_parser("disasm", help="compiled machine code listing")
    _add_program_arg(disasm_parser)
    disasm_parser.set_defaults(handler=_cmd_disasm)

    optimize_parser = commands.add_parser("optimize", help="apply optimizations")
    _add_program_arg(optimize_parser)
    optimize_parser.add_argument("--reuse", metavar="F:I", help="reuse-specialize F's param I")
    optimize_parser.add_argument("--stack", action="store_true", help="stack-allocate the body call")
    optimize_parser.add_argument("--block", metavar="PRODUCER", help="block-allocate PRODUCER")
    optimize_parser.set_defaults(handler=_cmd_optimize)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except NmlError as error:
        print(f"error: {error.format()}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): exit quietly
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
