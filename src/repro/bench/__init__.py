"""Benchmark-harness support: workload generators, table rendering, and the
Figure 1 spine renderer."""

from repro.bench.figures import render_spines, spine_census, spine_figure, spine_figure_of_expr
from repro.bench.tables import print_table, render_table
from repro.bench.workloads import (
    literal,
    ps_create_list_program,
    ps_program,
    random_int_list,
    random_nested_list,
    reference_ps,
    reference_rev,
    rev_program,
)

__all__ = [
    "render_spines", "spine_census", "spine_figure", "spine_figure_of_expr",
    "print_table", "render_table", "literal", "ps_create_list_program",
    "ps_program", "random_int_list", "random_nested_list", "reference_ps",
    "reference_rev", "rev_program",
]
