"""Figure 1 regeneration: the spine decomposition of a list.

Renders an ASCII picture of which cons cells sit on which spine (Definition
1: the top i-th spine is every cell reachable with exactly i−1 ``car``
operations), computed from a *live heap structure* rather than from syntax —
so sharing introduced by evaluation is represented faithfully.
"""

from __future__ import annotations

from repro.lang.ast import Program
from repro.semantics.interp import Interpreter
from repro.semantics.values import Value


def spine_figure(values) -> str:
    """Build the nested list on a fresh heap and render its spines."""
    interp = Interpreter()
    value = interp.from_python(values)
    return render_spines(interp, value, caption=repr(values))


def spine_figure_of_expr(program: Program, expr: str) -> str:
    """Evaluate ``expr`` in the program's scope and render its spines."""
    interp = Interpreter()
    value = interp.eval_in(program, expr)
    return render_spines(interp, value, caption=expr)


def render_spines(interp: Interpreter, value: Value, caption: str = "") -> str:
    by_level = interp.heap.spine_levels(value)
    lines: list[str] = []
    if caption:
        lines.append(f"spines of {caption}")
    if not by_level:
        lines.append("  (no spine: nil or a non-list object)")
        return "\n".join(lines)
    depth = max(by_level)
    lines.append(f"  {depth} spine(s), {sum(len(c) for c in by_level.values())} cell(s)")
    for level in range(1, depth + 1):
        cells = by_level.get(level, [])
        cell_text = " -> ".join(f"[#{cell.id}]" for cell in cells) or "(empty)"
        bottom = depth - level + 1
        lines.append(f"  top spine {level} (= bottom spine {bottom}): {cell_text}")
    return "\n".join(lines)


def spine_census(interp: Interpreter, value: Value) -> dict[int, int]:
    """level -> cell count, the quantitative form of Figure 1."""
    return {
        level: len(cells) for level, cells in interp.heap.spine_levels(value).items()
    }
