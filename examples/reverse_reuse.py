"""REV' (§A.3.2): in-place reuse turns quadratic allocation into linear.

The naive reverse appends a singleton per element — Θ(n²) cons cells.  The
escape analysis proves APPEND's first argument and REV's own argument
donate their spine cells safely; the transformed REV' recycles them,
leaving only Θ(n) fresh cells.

Run with:  python examples/reverse_reuse.py
"""

from repro import prelude_program, run_program
from repro.bench.tables import render_table
from repro.bench.workloads import literal
from repro.opt.pipeline import paper_rev_prime


def main() -> None:
    rows = []
    for n in (4, 8, 16, 32, 64):
        values = list(range(n))
        source = f"rev {literal(values)}"

        _, baseline = run_program(prelude_program(["rev"], source))
        optimized = paper_rev_prime(source)
        result, metrics = run_program(optimized.program)
        assert result == list(reversed(values))

        rows.append(
            [
                n,
                baseline.heap_allocs,
                metrics.heap_allocs,
                metrics.reused,
                f"{baseline.heap_allocs / max(1, metrics.heap_allocs):.1f}x",
            ]
        )

    print(
        render_table(
            ["n", "REV heap cells", "REV' heap cells", "REV' reused", "reduction"],
            rows,
            title="naive reverse vs REV' (in-place reuse)",
        )
    )
    print()
    print("The transformed program (REV' and APPEND'):")
    from repro.lang.pretty import pretty_program

    print(pretty_program(paper_rev_prime("rev [1, 2, 3]").program))


if __name__ == "__main__":
    main()
