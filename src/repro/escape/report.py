"""Human-readable analysis reports, in the style of Appendix A.

``analysis_report`` renders, for one program: the source, the spine bound
``d``, the fixpoint iteration summary (A.1), the global escape table (A.1),
and the sharing facts (A.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeTestResult
from repro.lang.ast import Program
from repro.lang.errors import AnalysisError
from repro.lang.pretty import pretty_program
from repro.types.types import arity


@dataclass
class FunctionReport:
    name: str
    scheme: str
    results: list[EscapeTestResult]
    iterations: int
    converged: bool

    def lines(self) -> list[str]:
        out = [f"{self.name} : {self.scheme}"]
        status = "converged" if self.converged else "WIDENED"
        out.append(f"  fixpoint: {self.iterations} iteration(s), {status}")
        for result in self.results:
            out.append(f"  G({self.name}, {result.param_index}) = {result.result}")
            out.append(f"    {result.describe()}")
        return out


def analysis_report(
    program: Program,
    include_sharing: bool = True,
    include_stats: bool = False,
) -> str:
    """A full paper-style report for every top-level function.

    ``include_stats`` appends the query-session accounting (cache hits and
    misses, fixpoint iterations, eval steps) — the report asks one global
    question per function, so the session's solve cache serves every
    question after the first from the same fixpoint.
    """
    analysis = EscapeAnalysis(program)
    sections: list[str] = []

    sections.append("=== program ===")
    sections.append(pretty_program(program).rstrip())

    solved = analysis.solve(None)
    sections.append("")
    sections.append(f"=== escape analysis (B_e chain: d = {solved.d}) ===")

    for name in program.binding_names():
        scheme = analysis.scheme(name)
        if arity(scheme.body) == 0:
            sections.append(f"{name} : {scheme} (not a function; skipped)")
            continue
        results = analysis.global_all(name)
        assert analysis.last_solved is not None
        trace = analysis.last_solved.trace(name)
        report = FunctionReport(
            name=name,
            scheme=str(scheme),
            results=results,
            iterations=trace.iterations,
            converged=trace.converged,
        )
        sections.extend(report.lines())

    if include_sharing:
        # Imported here: repro.analysis depends on repro.escape, so a
        # module-level import would be circular.
        from repro.analysis.sharing import sharing_global

        sections.append("")
        sections.append("=== sharing (Theorem 2, clause 2) ===")
        for name in program.binding_names():
            try:
                info = sharing_global(analysis, name)
            except AnalysisError:
                continue
            sections.append(f"  {info.describe()}")

    if include_stats:
        sections.append("")
        sections.append("=== query session ===")
        sections.append(f"  {analysis.stats.summary()}")

    return "\n".join(sections) + "\n"


def result_dict(result: EscapeTestResult) -> dict:
    """A machine-readable form of one escape-test result (``--json``)."""
    return {
        "kind": result.kind,
        "function": result.function,
        "param_index": result.param_index,
        "param_spines": result.param_spines,
        "result": str(result.result),
        "escaping_spines": result.escaping_spines,
        "non_escaping_spines": result.non_escaping_spines,
        "description": result.describe(),
    }


def stats_dict(stats) -> dict:
    """Query-session accounting as a plain dict (``--json``)."""
    doc = {
        "solve_hits": stats.solve_hits,
        "solve_misses": stats.solve_misses,
        "scc_hits": stats.scc_hits,
        "scc_misses": stats.scc_misses,
        "iterations": stats.iterations,
        "eval_steps": stats.eval_steps,
        "worklist_evals": getattr(stats, "worklist_evals", 0),
        "store": {
            "hits": getattr(stats, "store_hits", 0),
            "misses": getattr(stats, "store_misses", 0),
            "writes": getattr(stats, "store_writes", 0),
        },
    }
    queries = getattr(stats, "queries", None)
    if queries is not None:
        doc["queries"] = queries
    return doc


def report_json(
    program: Program,
    include_sharing: bool = True,
    include_stats: bool = False,
) -> dict:
    """The full analysis report as a JSON-serializable document: the same
    content as :func:`analysis_report`, structured for machines."""
    analysis = EscapeAnalysis(program)
    solved = analysis.solve(None)
    doc: dict = {"d": solved.d, "functions": []}

    for name in program.binding_names():
        scheme = analysis.scheme(name)
        if arity(scheme.body) == 0:
            doc["functions"].append(
                {"name": name, "scheme": str(scheme), "is_function": False}
            )
            continue
        results = analysis.global_all(name)
        assert analysis.last_solved is not None
        trace = analysis.last_solved.trace(name)
        doc["functions"].append(
            {
                "name": name,
                "scheme": str(scheme),
                "is_function": True,
                "iterations": trace.iterations,
                "converged": trace.converged,
                "results": [result_dict(r) for r in results],
            }
        )

    if include_sharing:
        from repro.analysis.sharing import sharing_global

        sharing = []
        for name in program.binding_names():
            try:
                info = sharing_global(analysis, name)
            except AnalysisError:
                continue
            sharing.append({"function": name, "description": info.describe()})
        doc["sharing"] = sharing

    if include_stats:
        doc["stats"] = stats_dict(analysis.stats)
    return doc


def fixpoint_derivation(program: Program, function: str, i: int) -> list[str]:
    """Replay Appendix A.1's derivation: the value ``G(function, i)`` would
    take at each fixpoint iterate ``f⁽⁰⁾, f⁽¹⁾, ...``.

    Returns lines like ``G(append, 1) @ append^(1) = <1,0>``.  The value at
    the final iterate is the analysis' answer; earlier iterates show the
    ascent from bottom exactly as the paper writes it out.
    """
    from repro.escape.global_test import run_global_test

    analysis = EscapeAnalysis(program)
    solved = analysis.solve(None)
    fn_type = analysis._binding_type(solved, function)

    lines: list[str] = []
    for k, iterate in enumerate(solved.iterates_for(function)):
        env = dict(iterate)
        result = run_global_test(solved.evaluator, env, function, fn_type, i)
        lines.append(f"G({function}, {i}) @ {function}^({k}) = {result.result}")
    return lines


def global_table(program: Program) -> list[EscapeTestResult]:
    """Every global escape result of the program, flattened — the rows of
    the Appendix A.1 table."""
    analysis = EscapeAnalysis(program)
    rows: list[EscapeTestResult] = []
    for name in program.binding_names():
        if arity(analysis.scheme(name).body) == 0:
            continue
        rows.extend(analysis.global_all(name))
    return rows
